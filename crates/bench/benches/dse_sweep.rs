//! Criterion bench: throughput of the `rt-dse` sweep engine (scenarios per
//! second), serial vs multi-threaded, the buffered-vs-streaming output path,
//! plus the marginal cost of the memoization layer's sharing across the
//! allocator axis.
//!
//! The final group is the **CI bench gate**: a quick fixed-size sweep over
//! the full axis set (allocators × period policies) whose throughput is
//! written to a machine-readable `BENCH_sweep.json` (scenarios/sec, peak
//! RSS, grid size, git SHA) and compared against the checked-in baseline in
//! `crates/bench/bench_baselines/dse_sweep.json`. A >25 % regression fails
//! the bench run (and therefore CI). Environment knobs:
//!
//! * `BENCH_SWEEP_JSON` — output path (default `<workspace>/BENCH_sweep.json`),
//! * `BENCH_GATE_SKIP=1` — emit the JSON but skip the regression assertion
//!   (for debugging on known-slow machines).

// Benches own the wall clock (lint rule D002 boundary).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_dse::prelude::*;

/// A mid-sized allocate-only sweep: 2 core counts × 6 utilization points ×
/// 3 trials × 2 allocators = 72 scenarios per iteration.
fn sweep_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::synthetic("bench");
    spec.cores = vec![2, 4];
    spec.utilizations = UtilizationGrid::NormalizedSteps(6);
    spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::SingleCore];
    spec.trials = 3;
    spec
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("dse_sweep_72_scenarios");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let spec = sweep_spec();
                let executor = Executor::with_threads(threads);
                b.iter(|| executor.run(std::hint::black_box(&spec)));
            },
        );
    }
    group.finish();
}

fn bench_streaming_vs_buffered(c: &mut Criterion) {
    // The gate for the streaming refactor: rendering the sweep through the
    // incremental sinks (reorder buffer + per-record serialization, bounded
    // memory) must not lose throughput against the legacy buffer-everything-
    // then-render path. Both arms produce the complete JSONL and CSV bytes.
    let mut group = c.benchmark_group("dse_output_path");
    group.sample_size(10);
    group.bench_function("buffered_then_rendered", |b| {
        let spec = sweep_spec();
        let executor = Executor::with_threads(2);
        b.iter(|| {
            let result = executor.run(std::hint::black_box(&spec));
            let jsonl = to_jsonl(&result.outcomes);
            let csv = to_csv(&result.outcomes);
            std::hint::black_box((jsonl.len(), csv.len()))
        });
    });
    group.bench_function("streaming_sinks", |b| {
        let spec = sweep_spec();
        let executor = Executor::with_threads(2);
        b.iter(|| {
            let mut jsonl = JsonlSink::new(Vec::new());
            let mut csv = CsvSink::new(Vec::new(), true);
            let mut tee = rt_dse::TeeSink::new().with(&mut jsonl).with(&mut csv);
            executor
                .run_streaming(std::hint::black_box(&spec), &mut tee)
                .expect("in-memory sinks never fail");
            std::hint::black_box((jsonl.bytes_written(), csv.bytes_written()))
        });
    });
    group.finish();
}

fn bench_grid_expansion(c: &mut Criterion) {
    // Expansion alone: the full paper-scale grid (3 cores × 39 utils × 250
    // trials × 2 allocators = 58 500 points) must expand in microseconds.
    let mut spec = ScenarioSpec::synthetic("expand");
    spec.trials = 250;
    c.bench_function("dse_grid_expand_58500_points", |b| {
        b.iter(|| ScenarioGrid::expand(std::hint::black_box(&spec)));
    });
}

fn bench_memoized_vs_fresh_generation(c: &mut Criterion) {
    // One allocator vs three on the same grid: the extra allocators reuse
    // every generated problem, so the marginal cost per extra scheme is the
    // allocation alone, not generation + allocation.
    let mut group = c.benchmark_group("dse_allocator_axis");
    group.sample_size(10);
    for &(label, n) in &[("one_scheme", 1usize), ("three_schemes", 3)] {
        group.bench_with_input(BenchmarkId::new("allocators", label), &n, |b, &n| {
            let mut spec = sweep_spec();
            spec.allocators = vec![
                AllocatorKind::Hydra,
                AllocatorKind::SingleCore,
                AllocatorKind::NpHydra,
            ][..n]
                .to_vec();
            let executor = Executor::serial();
            b.iter(|| executor.run(std::hint::black_box(&spec)));
        });
    }
    group.finish();
}

/// The fixed workload the CI gate times: the mid-sized sweep extended with
/// the full period-policy axis, so a regression on any axis of the engine
/// (generation, allocation, policy passes, sinks) moves the number.
fn gate_spec() -> ScenarioSpec {
    let mut spec = sweep_spec();
    spec.period_policies = vec![
        PeriodPolicy::Fixed,
        PeriodPolicy::Adapt,
        PeriodPolicy::Joint,
    ];
    spec
}

use hydra_bench::gate::json_number;
use hydra_bench::record::BenchRecord;
use rt_dse::SweepObs;

/// The CI throughput gate. Times the fixed gate workload **with
/// observability fully enabled** (metrics + tracing — the overhead contract
/// says instrumentation must be nearly free, so the gated number covers
/// it), emits `BENCH_sweep.json` with the run's metrics snapshot embedded,
/// and fails on a >25 % scenarios/sec regression against the checked-in
/// baseline.
fn bench_gate(_c: &mut Criterion) {
    let workspace = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let spec = gate_spec();
    let grid_size = ScenarioGrid::expand(&spec).len();
    let threads = 2usize;
    let obs = SweepObs::enabled();
    let executor = Executor::with_threads(threads).with_observability(obs.clone());

    // Warm-up once (page in, prime allocator), then time whole-sweep
    // repetitions until at least ~0.6 s of work has been measured.
    let _ = executor.run(std::hint::black_box(&spec));
    let mut evaluated = 0usize;
    let started = Instant::now();
    while started.elapsed() < Duration::from_millis(600) {
        let result = executor.run(std::hint::black_box(&spec));
        evaluated += result.outcomes.len();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let scenarios_per_sec = evaluated as f64 / elapsed;

    let baseline_path = format!("{workspace}/crates/bench/bench_baselines/dse_sweep.json");
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|text| json_number(&text, "scenarios_per_sec"));
    let floor = baseline.map(|b| b * 0.75);
    let ratio = baseline.map(|b| scenarios_per_sec / b);
    let pass = floor.is_none_or(|f| scenarios_per_sec >= f);

    // Batch-kernel lane occupancy from the instrumented run: the
    // core-count-bucketed feasibility prefetch exists to keep these lanes
    // full, so the gate record surfaces the mean occupancy and the scalar
    // fallback count as first-class fields (the full histogram stays inside
    // the embedded metrics document).
    let snapshot = obs.registry().snapshot();
    let mean_lanes_filled = snapshot
        .histograms
        .get("batch.lanes_filled")
        .and_then(|h| h.mean());
    let scalar_fallbacks = snapshot.counter("batch.scalar_fallbacks");

    let json = BenchRecord::new("dse_sweep")
        .int("grid_size", grid_size as u128)
        .int("threads", threads as u128)
        .int("scenarios_evaluated", evaluated as u128)
        .num("elapsed_secs", elapsed, 3)
        .num("scenarios_per_sec", scenarios_per_sec, 1)
        .opt("baseline_scenarios_per_sec", baseline, 1)
        .opt("gate_floor_scenarios_per_sec", floor, 1)
        .opt("measured_vs_baseline_ratio", ratio, 3)
        .opt("batch_mean_lanes_filled", mean_lanes_filled, 3)
        .int("batch_scalar_fallbacks", u128::from(scalar_fallbacks))
        .metrics(&obs.metrics_json())
        .finish(pass);
    let out_path = std::env::var("BENCH_SWEEP_JSON")
        .unwrap_or_else(|_| format!("{workspace}/BENCH_sweep.json"));
    std::fs::write(&out_path, &json).expect("write BENCH_sweep.json");
    println!(
        "bench_gate: {scenarios_per_sec:.0} scenarios/s over {grid_size}-point grid \
         ({} of baseline) -> {out_path}",
        ratio.map_or_else(|| "no baseline".to_owned(), |r| format!("{r:.2}x")),
    );

    if std::env::var("BENCH_GATE_SKIP").is_ok() {
        println!("bench_gate: BENCH_GATE_SKIP set, not enforcing the baseline");
        return;
    }
    match (baseline, floor) {
        (Some(baseline), Some(floor)) => {
            assert!(
                pass,
                "dse_sweep throughput regressed by more than 25 %: \
                 {scenarios_per_sec:.0} scenarios/s vs baseline {baseline:.0} \
                 (floor {floor:.0}); see {out_path}"
            );
        }
        _ => println!("bench_gate: no baseline at {baseline_path}, gate not enforced"),
    }
}

criterion_group!(
    benches,
    // The gate runs first so its VmHWM peak-RSS record reflects the gate
    // workload, not the buffered outcome vectors of the groups below.
    bench_gate,
    bench_sweep_throughput,
    bench_streaming_vs_buffered,
    bench_grid_expansion,
    bench_memoized_vs_fresh_generation
);
criterion_main!(benches);
