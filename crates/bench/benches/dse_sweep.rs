//! Criterion bench: throughput of the `rt-dse` sweep engine (scenarios per
//! second), serial vs multi-threaded, the buffered-vs-streaming output path,
//! plus the marginal cost of the memoization layer's sharing across the
//! allocator axis. This seeds the performance trajectory for the sweep
//! engine (`BENCH_*.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_dse::prelude::*;

/// A mid-sized allocate-only sweep: 2 core counts × 6 utilization points ×
/// 3 trials × 2 allocators = 72 scenarios per iteration.
fn sweep_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::synthetic("bench");
    spec.cores = vec![2, 4];
    spec.utilizations = UtilizationGrid::NormalizedSteps(6);
    spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::SingleCore];
    spec.trials = 3;
    spec
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("dse_sweep_72_scenarios");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let spec = sweep_spec();
                let executor = Executor::with_threads(threads);
                b.iter(|| executor.run(std::hint::black_box(&spec)));
            },
        );
    }
    group.finish();
}

fn bench_streaming_vs_buffered(c: &mut Criterion) {
    // The gate for the streaming refactor: rendering the sweep through the
    // incremental sinks (reorder buffer + per-record serialization, bounded
    // memory) must not lose throughput against the legacy buffer-everything-
    // then-render path. Both arms produce the complete JSONL and CSV bytes.
    let mut group = c.benchmark_group("dse_output_path");
    group.sample_size(10);
    group.bench_function("buffered_then_rendered", |b| {
        let spec = sweep_spec();
        let executor = Executor::with_threads(2);
        b.iter(|| {
            let result = executor.run(std::hint::black_box(&spec));
            let jsonl = to_jsonl(&result.outcomes);
            let csv = to_csv(&result.outcomes);
            std::hint::black_box((jsonl.len(), csv.len()))
        });
    });
    group.bench_function("streaming_sinks", |b| {
        let spec = sweep_spec();
        let executor = Executor::with_threads(2);
        b.iter(|| {
            let mut jsonl = JsonlSink::new(Vec::new());
            let mut csv = CsvSink::new(Vec::new(), true);
            let mut tee = rt_dse::TeeSink::new().with(&mut jsonl).with(&mut csv);
            executor
                .run_streaming(std::hint::black_box(&spec), &mut tee)
                .expect("in-memory sinks never fail");
            std::hint::black_box((jsonl.bytes_written(), csv.bytes_written()))
        });
    });
    group.finish();
}

fn bench_grid_expansion(c: &mut Criterion) {
    // Expansion alone: the full paper-scale grid (3 cores × 39 utils × 250
    // trials × 2 allocators = 58 500 points) must expand in microseconds.
    let mut spec = ScenarioSpec::synthetic("expand");
    spec.trials = 250;
    c.bench_function("dse_grid_expand_58500_points", |b| {
        b.iter(|| ScenarioGrid::expand(std::hint::black_box(&spec)));
    });
}

fn bench_memoized_vs_fresh_generation(c: &mut Criterion) {
    // One allocator vs three on the same grid: the extra allocators reuse
    // every generated problem, so the marginal cost per extra scheme is the
    // allocation alone, not generation + allocation.
    let mut group = c.benchmark_group("dse_allocator_axis");
    group.sample_size(10);
    for &(label, n) in &[("one_scheme", 1usize), ("three_schemes", 3)] {
        group.bench_with_input(BenchmarkId::new("allocators", label), &n, |b, &n| {
            let mut spec = sweep_spec();
            spec.allocators = vec![
                AllocatorKind::Hydra,
                AllocatorKind::SingleCore,
                AllocatorKind::NpHydra,
            ][..n]
                .to_vec();
            let executor = Executor::serial();
            b.iter(|| executor.run(std::hint::black_box(&spec)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sweep_throughput,
    bench_streaming_vs_buffered,
    bench_grid_expansion,
    bench_memoized_vs_fresh_generation
);
criterion_main!(benches);
