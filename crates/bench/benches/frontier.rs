//! CI bench gate for frontier exploration: every cliff bracket the adaptive
//! search reports must be a true adjacent crossing of a dense exhaustive
//! reference sweep (acceptance ≥ 0.5 at the bracket's low edge, < 0.5 at
//! its high edge, one grid step apart — exact, because frontier probes
//! reuse the exhaustive grid's positional problem streams), while spending
//! at least 10× fewer scenario evaluations, and repeat runs must be
//! byte-identical. Both evaluation counts land in a machine-readable
//! `BENCH_frontier.json`.
//!
//! Environment knobs:
//!
//! * `BENCH_FRONTIER_JSON` — output path (default
//!   `<workspace>/BENCH_frontier.json`),
//! * `BENCH_GATE_SKIP=1` — emit the JSON but skip the assertions.

// Benches own the wall clock (lint rule D002 boundary).
#![allow(clippy::disallowed_methods)]

use hydra_bench::record::BenchRecord;
use rt_dse::prelude::*;
use rt_dse::JsonlSink;

/// Reference-grid resolution per core count. Dense enough that "within one
/// grid step" is a tight localization claim and the ≥10× evaluation saving
/// has room to show.
const GRID_POINTS: usize = 320;
const TRIALS: usize = 6;
const REFINE_BUDGET: usize = 4;

/// Per-core utilization fractions reaching 2.0 — far past every scheme's
/// breakdown, so each slice's cliff is interior to the grid.
fn fractions() -> Vec<f64> {
    (1..=GRID_POINTS)
        .map(|i| 2.0 * i as f64 / GRID_POINTS as f64)
        .collect()
}

fn gate_spec(explore: ExploreMode) -> ScenarioSpec {
    let mut spec = ScenarioSpec::synthetic("frontier-gate");
    spec.cores = vec![2, 4];
    spec.utilizations = UtilizationGrid::Fractions(fractions());
    spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::SingleCore];
    spec.trials = TRIALS;
    spec.explore = explore;
    spec
}

/// Acceptance ratio per grid point of one (cores, allocator) slice, in
/// ascending utilization order (0 where the aggregate has no row).
fn slice_acceptance(
    rows: &[rt_dse::AggregateRow],
    cores: usize,
    allocator: AllocatorKind,
    utils: &[f64],
) -> Vec<f64> {
    utils
        .iter()
        .map(|u| {
            rows.iter()
                .find(|r| {
                    r.cores == cores
                        && r.allocator == allocator
                        && r.utilization.map(f64::to_bits) == Some(u.to_bits())
                })
                .map_or(0.0, |r| r.acceptance_ratio)
        })
        .collect()
}

fn main() {
    let workspace = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

    // The exhaustive reference: every grid point, buffered, folded into the
    // same aggregates the sweep outputs use.
    let exhaustive_spec = gate_spec(ExploreMode::Exhaustive);
    let exhaustive_evals = ScenarioGrid::expand(&exhaustive_spec).len();
    let result = Executor::with_threads(2).run(&exhaustive_spec);
    let mut acc = SweepAccumulator::new();
    for outcome in &result.outcomes {
        acc.record(outcome);
    }
    let reference_rows = acc.rows();

    // The adaptive run — twice, because cheap repeat-run byte-identity here
    // catches nondeterminism before the longer CI jobs do.
    let frontier_spec = gate_spec(ExploreMode::Frontier(FrontierConfig {
        refine_budget: REFINE_BUDGET,
    }));
    let run = || {
        let mut sink = JsonlSink::new(Vec::new());
        let (plan, _summary) = FrontierRunner::new(SweepSession::new(frontier_spec.clone()))
            .explore(&mut sink)
            .expect("in-memory sink is infallible");
        (plan, sink.into_inner())
    };
    let (plan, first_bytes) = run();
    let (_, second_bytes) = run();
    let repeat_identical = first_bytes == second_bytes;
    let adaptive_evals = plan.probe_evals + plan.len();

    // Cliff verification. Frontier streams are the exhaustive grid's
    // positional streams, so the probed acceptance curve is a pointwise
    // sample of the dense reference — the bracket must therefore be a
    // *true adjacent crossing* of the reference curve: one grid step wide,
    // at-or-above threshold on its low edge and below on its high edge.
    // The reference's own transition band (first below-threshold index to
    // last at-or-above index) can span several steps of sampling noise;
    // its width and the bracket's distance from the first crossing are
    // reported as context, not gated.
    let mut brackets_verified = true;
    let mut max_band_steps: usize = 0;
    let mut max_first_crossing_distance: usize = 0;
    for slice in &plan.slices {
        let utils = exhaustive_spec.utilizations.points(slice.cores);
        let acceptance = slice_acceptance(&reference_rows, slice.cores, slice.allocator, &utils);
        let idx_of = |value: f64| {
            utils
                .iter()
                .position(|u| u.to_bits() == value.to_bits())
                .expect("adaptive cliff values lie on the reference grid")
        };
        let (Some(lo), Some(hi)) = (slice.cliff_lo.map(idx_of), slice.cliff_hi.map(idx_of)) else {
            println!(
                "frontier gate: {}c/{} cliff one-sided (the grid was built interior)",
                slice.cores,
                slice.allocator.label()
            );
            brackets_verified = false;
            continue;
        };
        let exact = hi == lo + 1 && acceptance[lo] >= 0.5 && acceptance[hi] < 0.5;
        brackets_verified &= exact;
        let first_reject = acceptance.iter().position(|&a| a < 0.5);
        let last_accept = acceptance.iter().rposition(|&a| a >= 0.5);
        if let (Some(first), Some(last)) = (first_reject, last_accept) {
            max_band_steps = max_band_steps.max((last + 1).saturating_sub(first));
            max_first_crossing_distance = max_first_crossing_distance.max(hi.abs_diff(first));
        }
        println!(
            "frontier gate: {}c/{} bracket [{lo}, {hi}] {} on the reference curve \
             (transition band {:?}..{:?})",
            slice.cores,
            slice.allocator.label(),
            if exact { "verified" } else { "REFUTED" },
            first_reject,
            last_accept.map(|i| i + 1),
        );
    }

    let ratio = exhaustive_evals as f64 / adaptive_evals as f64;
    let pass = repeat_identical && ratio >= 10.0 && brackets_verified;
    let json = BenchRecord::new("frontier")
        .int("grid_points_per_slice", GRID_POINTS as u128)
        .int("trials", TRIALS as u128)
        .int("refine_budget", REFINE_BUDGET as u128)
        .int("slices", plan.slices.len() as u128)
        .int("exhaustive_evals", exhaustive_evals as u128)
        .int("probe_evals", plan.probe_evals as u128)
        .int("emitted_evals", plan.len() as u128)
        .int("adaptive_evals", adaptive_evals as u128)
        .num("eval_ratio", ratio, 2)
        .raw("brackets_verified", brackets_verified.to_string())
        .int("max_transition_band_steps", max_band_steps as u128)
        .int(
            "max_first_crossing_distance_steps",
            max_first_crossing_distance as u128,
        )
        .raw("repeat_identical", repeat_identical.to_string())
        .finish(pass);
    let out_path = std::env::var("BENCH_FRONTIER_JSON")
        .unwrap_or_else(|_| format!("{workspace}/BENCH_frontier.json"));
    std::fs::write(&out_path, &json).expect("write BENCH_frontier.json");
    println!(
        "frontier gate: {exhaustive_evals} exhaustive vs {adaptive_evals} adaptive \
         evaluations ({ratio:.1}x), brackets verified: {brackets_verified} -> {out_path}"
    );

    if std::env::var("BENCH_GATE_SKIP").is_ok() {
        println!("frontier gate: BENCH_GATE_SKIP set, not enforcing");
        return;
    }
    assert!(
        repeat_identical,
        "frontier emission must be byte-identical across repeat runs"
    );
    assert!(
        brackets_verified,
        "every adaptive cliff bracket must be a true adjacent crossing of the \
         exhaustive reference curve (acceptance >= 0.5 on the low edge, < 0.5 on \
         the high edge, one grid step apart); see {out_path}"
    );
    assert!(
        ratio >= 10.0,
        "adaptive search must spend >= 10x fewer evaluations than the exhaustive grid \
         (measured {ratio:.1}x); see {out_path}"
    );
}
