//! Criterion bench: HYDRA allocation time as a function of platform size and
//! workload size (the algorithmic-cost side of the design-space exploration;
//! not a paper figure but the runtime claim behind the paper's "polynomial
//! time" argument).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_core::allocator::{Allocator, HydraAllocator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use taskgen::synthetic::{generate_problem, SyntheticConfig};

fn bench_hydra_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hydra_allocation");
    group.sample_size(20);
    for &cores in &[2usize, 4, 8] {
        let config = SyntheticConfig::paper_default(cores);
        let mut rng = StdRng::seed_from_u64(7);
        let problem = generate_problem(&config, 0.5 * cores as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("cores", cores), &problem, |b, problem| {
            let allocator = HydraAllocator::default();
            b.iter(|| allocator.allocate(std::hint::black_box(problem)));
        });
    }
    group.finish();
}

fn bench_hydra_case_study(c: &mut Criterion) {
    let problem = hydra_core::AllocationProblem::new(
        hydra_core::casestudy::uav_rt_tasks(),
        hydra_core::catalog::table1_tasks(),
        4,
    );
    c.bench_function("hydra_uav_case_study_4_cores", |b| {
        let allocator = HydraAllocator::default();
        b.iter(|| allocator.allocate(std::hint::black_box(&problem)));
    });
}

criterion_group!(benches, bench_hydra_allocation, bench_hydra_case_study);
criterion_main!(benches);
