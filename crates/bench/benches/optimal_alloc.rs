//! Criterion bench: cost of the Optimal allocator (branch-and-bound over the
//! `M^{N_S}` assignment space, identical result to plain enumeration) vs
//! HYDRA on the small instances of the Figure 3 setup — the "exponential
//! computational complexity" the paper cites as the reason HYDRA's ≤ 22 %
//! tightness gap is an acceptable trade. The `sim_kernel` bench additionally
//! gates the search's prune ratio in CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_core::allocator::{Allocator, HydraAllocator, OptimalAllocator};
use hydra_core::{AllocationProblem, SecurityTask, SecurityTaskSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt_core::{RtTask, TaskSet, Time};
use taskgen::randfixedsum::randfixedsum;

fn small_problem(security_tasks: usize, seed: u64) -> AllocationProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let rt_utils = randfixedsum(6, 0.8, &mut rng);
    let rt: TaskSet = rt_utils
        .iter()
        .map(|u| {
            let period = Time::from_millis(100);
            let wcet = Time::from_ticks(((u * period.as_ticks() as f64) as u64).max(100));
            RtTask::implicit_deadline(wcet, period).unwrap()
        })
        .collect();
    let sec_utils = randfixedsum(security_tasks, 0.3, &mut rng);
    let sec: SecurityTaskSet = sec_utils
        .iter()
        .map(|u| {
            let desired = Time::from_millis(1500);
            let wcet = Time::from_ticks(((u * desired.as_ticks() as f64) as u64).max(100));
            SecurityTask::new(wcet, desired, desired * 10).unwrap()
        })
        .collect();
    AllocationProblem::new(rt, sec, 2)
}

fn bench_optimal_vs_hydra(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_vs_hydra_m2");
    group.sample_size(10);
    for &n_sec in &[2usize, 4, 6] {
        let problem = small_problem(n_sec, 42);
        group.bench_with_input(BenchmarkId::new("optimal", n_sec), &problem, |b, p| {
            let allocator = OptimalAllocator::default();
            b.iter(|| allocator.allocate(std::hint::black_box(p)));
        });
        group.bench_with_input(BenchmarkId::new("hydra", n_sec), &problem, |b, p| {
            let allocator = HydraAllocator::default();
            b.iter(|| allocator.allocate(std::hint::black_box(p)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimal_vs_hydra);
criterion_main!(benches);
