//! Criterion bench / ablation: the real-time partitioning heuristics
//! (first/best/worst-fit) used as the substrate below HYDRA — DESIGN.md
//! names the choice of best-fit as a design decision worth quantifying.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt_partition::{partition_tasks, AdmissionTest, Heuristic, PartitionConfig};
use taskgen::synthetic::{generate_problem, SyntheticConfig};

fn bench_partitioning(c: &mut Criterion) {
    let config = SyntheticConfig::paper_default(8);
    let mut rng = StdRng::seed_from_u64(13);
    let problem = generate_problem(&config, 4.0, &mut rng);
    let mut group = c.benchmark_group("rt_partitioning_8_cores");
    group.sample_size(20);
    for heuristic in [Heuristic::FirstFit, Heuristic::BestFit, Heuristic::WorstFit] {
        group.bench_with_input(
            BenchmarkId::new("heuristic", format!("{heuristic:?}")),
            &heuristic,
            |b, &h| {
                let cfg = PartitionConfig::new(h, AdmissionTest::ResponseTime);
                b.iter(|| partition_tasks(std::hint::black_box(&problem.rt_tasks), 8, &cfg));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
