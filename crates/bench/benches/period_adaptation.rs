//! Criterion bench / ablation: the closed-form period adaptation vs the
//! iterative GP solver on the same Eq. (7) instances (the paper solves these
//! with GPkit + CVXOPT; the closed form is what makes HYDRA cheap here).

use criterion::{criterion_group, criterion_main, Criterion};
use gp_solver::SolverOptions;
use hydra_core::interference::InterferenceBound;
use hydra_core::period::{adapt_period, adapt_period_gp};
use hydra_core::SecurityTask;
use rt_core::Time;

fn instance() -> (SecurityTask, InterferenceBound) {
    let task = SecurityTask::new(
        Time::from_millis(375),
        Time::from_millis(5_000),
        Time::from_millis(50_000),
    )
    .unwrap();
    let bound = InterferenceBound {
        constant: 800_000.0,
        slope: 0.55,
    };
    (task, bound)
}

fn bench_period_adaptation(c: &mut Criterion) {
    let (task, bound) = instance();
    c.bench_function("period_adaptation_closed_form", |b| {
        b.iter(|| adapt_period(std::hint::black_box(&task), std::hint::black_box(&bound)));
    });
    let mut group = c.benchmark_group("period_adaptation_gp");
    group.sample_size(10);
    group.bench_function("gp_solver", |b| {
        let options = SolverOptions::fast();
        b.iter(|| {
            adapt_period_gp(
                std::hint::black_box(&task),
                std::hint::black_box(&bound),
                &options,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_period_adaptation);
criterion_main!(benches);
