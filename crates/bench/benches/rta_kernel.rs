//! Criterion bench: the scalar response-time / demand analyses vs the
//! 8-lane structure-of-arrays batch kernels of `rt-core::batch`, on the
//! task-set shapes the sweep engine actually feeds them (synthetic
//! workloads at the paper's utilization band, small per-core lists through
//! full platform-sized sets).
//!
//! Besides the criterion groups, a hand-timed section emits a
//! machine-readable `BENCH_rta.json` (scalar and batch task-sets/sec, the
//! speedup ratio, git SHA, peak RSS) through the shared [`BenchRecord`]
//! envelope so CI can archive the kernel comparison next to the sweep
//! gate's document. The record's `gate` verdict asserts the oracle
//! contract — every batch verdict must equal its scalar counterpart —
//! not a throughput floor. Environment knobs:
//!
//! * `BENCH_RTA_JSON` — output path (default `<workspace>/BENCH_rta.json`).

// Benches own the wall clock (lint rule D002 boundary).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_bench::record::BenchRecord;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt_core::batch::{BatchDemandKernel, BatchRtaKernel, LANES};
use rt_core::dbf::necessary_condition_default_horizon;
use rt_core::rta::{response_times_into, ResponseTime};
use rt_core::{PriorityAssignment, PriorityPolicy, TaskId, TaskSet};
use taskgen::synthetic::{generate_problem, SyntheticConfig};

/// One task set prepared for both arms: the set itself, its rate-monotonic
/// priority assignment, and its rows (wcet, period, deadline ticks) in
/// priority order — the shape the partition heuristics hand the kernel.
struct Prepared {
    set: TaskSet,
    priorities: PriorityAssignment,
    rows: Vec<(u64, u64, u64)>,
}

/// Generates `count` synthetic task sets sized for `cores` (the `3m..10m`
/// task counts of the paper's workloads) at a total utilization of 0.65 —
/// mostly single-lane-feasible, so the recurrences run to convergence
/// instead of failing at the first row.
fn prepare(cores: usize, count: usize, seed: u64) -> Vec<Prepared> {
    let config = SyntheticConfig::paper_default(cores);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let set = generate_problem(&config, 0.65, &mut rng).rt_tasks;
            let priorities = PriorityAssignment::assign(&set, PriorityPolicy::RateMonotonic);
            let mut order: Vec<usize> = (0..set.len()).collect();
            order.sort_by_key(|&i| priorities.priority(TaskId(i)));
            let rows = order
                .iter()
                .map(|&i| {
                    let t = &set[TaskId(i)];
                    (
                        t.wcet().as_ticks(),
                        t.period().as_ticks(),
                        t.deadline().as_ticks(),
                    )
                })
                .collect();
            Prepared {
                set,
                priorities,
                rows,
            }
        })
        .collect()
}

/// Scalar arm: full response-time vectors through the allocation-free
/// entry point, one set at a time.
fn scalar_rta(sets: &[Prepared], scratch: &mut Vec<ResponseTime>) -> usize {
    let mut schedulable = 0usize;
    for p in sets {
        response_times_into(&p.set, &p.priorities, scratch);
        schedulable += usize::from(scratch.iter().all(|r| r.is_schedulable()));
    }
    schedulable
}

/// Batch arm: the same verdicts through the 8-lane kernel, loading rows
/// inside the timed region (loading is part of the kernel's real cost).
fn batch_rta(sets: &[Prepared], kernel: &mut BatchRtaKernel) -> usize {
    let mut schedulable = 0usize;
    for chunk in sets.chunks(LANES) {
        kernel.begin(chunk.len());
        for (lane, p) in chunk.iter().enumerate() {
            for &(w, t, d) in &p.rows {
                kernel.push(lane, w, t, d);
            }
        }
        let ok = kernel.solve(false, |_, _, _| ());
        schedulable += ok[..chunk.len()].iter().filter(|&&v| v).count();
    }
    schedulable
}

fn bench_rta_kernel(c: &mut Criterion) {
    // Shapes: 2-core sets (6..20 tasks, the per-core admission scale),
    // 4-core sets (the sweep's default platform), 8-core sets (the largest
    // Fig. 2 platform — 24..80 tasks per set).
    let mut group = c.benchmark_group("rta_kernel_64_sets");
    group.sample_size(20);
    for &cores in &[2usize, 4, 8] {
        let sets = prepare(cores, 64, 7 + cores as u64);
        group.bench_with_input(BenchmarkId::new("scalar", cores), &sets, |b, sets| {
            let mut scratch = Vec::new();
            b.iter(|| scalar_rta(std::hint::black_box(sets), &mut scratch));
        });
        group.bench_with_input(BenchmarkId::new("batch", cores), &sets, |b, sets| {
            let mut kernel = BatchRtaKernel::new();
            b.iter(|| batch_rta(std::hint::black_box(sets), &mut kernel));
        });
    }
    group.finish();
}

fn bench_demand_kernel(c: &mut Criterion) {
    // The Eq. (1) necessary condition: scalar per-set demand sums vs the
    // lockstep 8-lane kernel over the same default horizon.
    let mut group = c.benchmark_group("demand_kernel_64_sets");
    group.sample_size(20);
    for &cores in &[2usize, 8] {
        let sets = prepare(cores, 64, 31 + cores as u64);
        group.bench_with_input(BenchmarkId::new("scalar", cores), &sets, |b, sets| {
            b.iter(|| {
                sets.iter()
                    .filter(|p| {
                        necessary_condition_default_horizon(std::hint::black_box(&p.set), cores)
                    })
                    .count()
            });
        });
        group.bench_with_input(BenchmarkId::new("batch", cores), &sets, |b, sets| {
            let mut kernel = BatchDemandKernel::new();
            b.iter(|| {
                let mut feasible = 0usize;
                for chunk in sets.chunks(LANES) {
                    kernel.begin(chunk.len());
                    for (lane, p) in chunk.iter().enumerate() {
                        kernel.load_default_horizon(lane, std::hint::black_box(&p.set), cores);
                    }
                    let ok = kernel.check(cores);
                    feasible += ok[..chunk.len()].iter().filter(|&&v| v).count();
                }
                feasible
            });
        });
    }
    group.finish();
}

/// Times `run` in whole-workload repetitions for at least ~0.4 s and
/// returns (sets/sec, the last repetition's verdict count).
fn throughput(sets_per_pass: usize, mut run: impl FnMut() -> usize) -> (f64, usize) {
    let mut verdict = run(); // warm-up
    let mut passes = 0usize;
    let started = Instant::now();
    while started.elapsed() < Duration::from_millis(400) {
        verdict = run();
        passes += 1;
    }
    let elapsed = started.elapsed().as_secs_f64();
    ((passes * sets_per_pass) as f64 / elapsed, verdict)
}

/// The machine-readable record: scalar vs batch RTA throughput on the
/// 4-core shape, plus the oracle-contract verdict check.
fn bench_record(_c: &mut Criterion) {
    let workspace = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let cores = 4usize;
    let sets = prepare(cores, 256, 2018);
    let tasks_total: usize = sets.iter().map(|p| p.set.len()).sum();

    let mut scratch = Vec::new();
    let (scalar_rate, scalar_verdicts) = throughput(sets.len(), || scalar_rta(&sets, &mut scratch));
    let mut kernel = BatchRtaKernel::new();
    let (batch_rate, batch_verdicts) = throughput(sets.len(), || batch_rta(&sets, &mut kernel));
    let pass = scalar_verdicts == batch_verdicts;
    let speedup = batch_rate / scalar_rate;

    let json = BenchRecord::new("rta_kernel")
        .int("cores", cores as u128)
        .int("task_sets", sets.len() as u128)
        .int("tasks_total", tasks_total as u128)
        .num("scalar_sets_per_sec", scalar_rate, 1)
        .num("batch_sets_per_sec", batch_rate, 1)
        .num("batch_vs_scalar_speedup", speedup, 3)
        .int("schedulable_sets", batch_verdicts as u128)
        .finish(pass);
    let out_path =
        std::env::var("BENCH_RTA_JSON").unwrap_or_else(|_| format!("{workspace}/BENCH_rta.json"));
    std::fs::write(&out_path, &json).expect("write BENCH_rta.json");
    println!(
        "rta_kernel: scalar {scalar_rate:.0} sets/s, batch {batch_rate:.0} sets/s \
         ({speedup:.2}x) -> {out_path}"
    );
    assert!(
        pass,
        "batch kernel verdicts diverged from the scalar oracle: \
         {batch_verdicts} vs {scalar_verdicts} schedulable sets"
    );
}

criterion_group!(benches, bench_record, bench_rta_kernel, bench_demand_kernel);
criterion_main!(benches);
