//! Criterion bench + CI gate for the event-driven evaluation kernel: raw
//! simulator throughput (jobs/sec), the detection-mode quick-gate sweep
//! (scenarios/sec through the streaming `OnlineDetector` path), and the
//! branch-and-bound Optimal search (visited/pruned assignments, instances/sec
//! against the recorded pre-branch-and-bound exhaustive rate).
//!
//! The gate group writes a machine-readable `BENCH_sim.json` next to
//! `BENCH_sweep.json` and enforces two assertions:
//!
//! * detection-sweep throughput must stay above 75 % of the checked-in
//!   baseline in `crates/bench/bench_baselines/sim_kernel.json` (the verdict
//!   line prints the measured/baseline ratio);
//! * the branch-and-bound Optimal must prune at least `min_prune_ratio`
//!   (50 %) of the assignment space on the Fig. 3-style instance grid.
//!
//! The baseline file also records the throughput of the *pre-rewrite* kernel
//! on the identical workloads (`pre_pr_*` keys, measured at the parent
//! commit), so the JSON is self-contained evidence of the speedup.
//! Environment knobs mirror the sweep gate: `BENCH_SIM_JSON` overrides the
//! output path, `BENCH_GATE_SKIP=1` emits the JSON but skips the assertions.

// Benches own the wall clock (lint rule D002 boundary).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_core::allocator::{Allocator, HydraAllocator, OptimalAllocator, SearchStats};
use hydra_core::{casestudy, catalog, AllocationProblem};
use rt_core::Time;
use rt_dse::prelude::*;
use rt_sim::engine::{simulate, SimConfig};
use rt_sim::workload::simulation_tasks;
use taskgen::generate_problem_seeded;

/// The fixed detection-mode quick-gate sweep: 2 core counts × 4 utilization
/// points × 3 trials × 2 allocators = 48 scenarios, each allocating and then
/// simulating a 30 s schedule with 100 injected attacks (the Figure 1
/// measurement pipeline at sweep scale).
fn detection_gate_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::synthetic("sim_gate");
    spec.cores = vec![2, 4];
    spec.utilizations = UtilizationGrid::NormalizedSteps(4);
    spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::SingleCore];
    spec.trials = 3;
    spec.evaluation = Evaluation::Detection {
        horizon: Time::from_secs(30),
        attacks: 100,
    };
    spec
}

/// The Fig. 3-style Optimal instance grid: security sets of 2–6 tasks at
/// half-load on 2 and 4 cores, 6 seeded trials each.
fn optimal_instances() -> Vec<AllocationProblem> {
    let mut instances = Vec::new();
    for cores in [2usize, 4] {
        let mut config = taskgen::SyntheticConfig::paper_default(cores);
        config.security_tasks = (2, 6);
        for trial in 0..6u64 {
            let util = 0.5 * cores as f64;
            instances.push(generate_problem_seeded(
                &config,
                util,
                2018,
                trial * 7 + cores as u64,
            ));
        }
    }
    instances
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernel_uav");
    group.sample_size(10);
    for &cores in &[2usize, 8] {
        let problem =
            AllocationProblem::new(casestudy::uav_rt_tasks(), catalog::table1_tasks(), cores);
        let allocation = HydraAllocator::default().allocate(&problem).unwrap();
        let tasks = simulation_tasks(&problem, &allocation);
        group.bench_with_input(BenchmarkId::new("cores", cores), &tasks, |b, tasks| {
            let config = SimConfig::new(Time::from_secs(30));
            b.iter(|| simulate(std::hint::black_box(tasks), &config));
        });
    }
    group.finish();
}

fn bench_detection_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernel_detection_sweep");
    group.sample_size(10);
    let spec = detection_gate_spec();
    let executor = Executor::with_threads(2);
    group.bench_function("48_scenarios", |b| {
        b.iter(|| executor.run(std::hint::black_box(&spec)));
    });
    group.finish();
}

fn bench_optimal_bnb(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_bnb");
    group.sample_size(10);
    let instances = optimal_instances();
    let allocator = OptimalAllocator::default();
    group.bench_function("fig3_grid_12_instances", |b| {
        b.iter(|| {
            for problem in &instances {
                let _ = allocator.allocate_with_stats(std::hint::black_box(problem));
            }
        });
    });
    group.finish();
}

use hydra_bench::gate::json_number;
use hydra_bench::record::BenchRecord;
use rt_dse::SweepObs;

/// The CI kernel gate: times the detection quick-gate sweep (with
/// observability fully enabled, per the overhead contract) and the
/// branch-and-bound Optimal grid, emits `BENCH_sim.json` with the sweep's
/// metrics snapshot embedded, and fails on a >25 % detection-throughput
/// regression or a prune ratio below the floor.
fn bench_gate(_c: &mut Criterion) {
    let workspace = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

    // --- Raw simulator throughput (informational): UAV case study, 2 cores.
    let problem = AllocationProblem::new(casestudy::uav_rt_tasks(), catalog::table1_tasks(), 2);
    let allocation = HydraAllocator::default().allocate(&problem).unwrap();
    let tasks = simulation_tasks(&problem, &allocation);
    let config = SimConfig::new(Time::from_secs(30));
    let _ = simulate(&tasks, &config);
    let started = Instant::now();
    let mut jobs = 0usize;
    while started.elapsed() < Duration::from_millis(300) {
        jobs += simulate(std::hint::black_box(&tasks), &config).jobs().len();
    }
    let sim_jobs_per_sec = jobs as f64 / started.elapsed().as_secs_f64();

    // --- Detection-mode quick-gate sweep (gated).
    let spec = detection_gate_spec();
    let grid_size = ScenarioGrid::expand(&spec).len();
    let threads = 2usize;
    let obs = SweepObs::enabled();
    let executor = Executor::with_threads(threads).with_observability(obs.clone());
    let _ = executor.run(std::hint::black_box(&spec));
    let mut evaluated = 0usize;
    let started = Instant::now();
    while started.elapsed() < Duration::from_millis(600) {
        evaluated += executor.run(std::hint::black_box(&spec)).outcomes.len();
    }
    let detection_scenarios_per_sec = evaluated as f64 / started.elapsed().as_secs_f64();

    // --- Branch-and-bound Optimal on the Fig. 3-style grid (gated on
    // pruning). One warm pass collects the visited/pruned counts, then the
    // timing loop measures instances/sec.
    let instances = optimal_instances();
    let mut stats = SearchStats::default();
    let allocator = OptimalAllocator::default();
    for problem in &instances {
        if let Ok((_, s)) = allocator.allocate_with_stats(problem) {
            stats.visited += s.visited;
            stats.pruned += s.pruned;
            stats.total += s.total;
        }
    }
    let started = Instant::now();
    let mut optimal_runs = 0usize;
    while started.elapsed() < Duration::from_millis(300) {
        for problem in &instances {
            let _ = allocator.allocate_with_stats(std::hint::black_box(problem));
            optimal_runs += 1;
        }
    }
    let optimal_instances_per_sec = optimal_runs as f64 / started.elapsed().as_secs_f64();
    let prune_ratio = stats.prune_ratio();

    // --- Baselines.
    let baseline_path = format!("{workspace}/crates/bench/bench_baselines/sim_kernel.json");
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let baseline = json_number(&baseline_text, "detection_scenarios_per_sec");
    let pre_pr_detection = json_number(&baseline_text, "pre_pr_detection_scenarios_per_sec");
    let pre_pr_optimal = json_number(&baseline_text, "pre_pr_optimal_instances_per_sec");
    let min_prune_ratio = json_number(&baseline_text, "min_prune_ratio").unwrap_or(0.5);
    let floor = baseline.map(|b| b * 0.75);
    let ratio = baseline.map(|b| detection_scenarios_per_sec / b);
    let speedup_vs_pre_pr = pre_pr_detection.map(|b| detection_scenarios_per_sec / b);
    let optimal_speedup = pre_pr_optimal.map(|b| optimal_instances_per_sec / b);
    let throughput_pass = floor.is_none_or(|f| detection_scenarios_per_sec >= f);
    let prune_pass = prune_ratio >= min_prune_ratio;
    let pass = throughput_pass && prune_pass;

    let json = BenchRecord::new("sim_kernel")
        .num("sim_jobs_per_sec", sim_jobs_per_sec, 0)
        .int("detection_grid_size", grid_size as u128)
        .int("threads", threads as u128)
        .num(
            "detection_scenarios_per_sec",
            detection_scenarios_per_sec,
            1,
        )
        .opt("baseline_detection_scenarios_per_sec", baseline, 1)
        .opt("gate_floor_detection_scenarios_per_sec", floor, 1)
        .opt("detection_vs_baseline_ratio", ratio, 3)
        .opt("pre_pr_detection_scenarios_per_sec", pre_pr_detection, 1)
        .opt("detection_speedup_vs_pre_pr", speedup_vs_pre_pr, 2)
        .int("optimal_instances", instances.len() as u128)
        .num("optimal_instances_per_sec", optimal_instances_per_sec, 1)
        .int("optimal_visited", stats.visited)
        .int("optimal_pruned", stats.pruned)
        .int("optimal_total_assignments", stats.total)
        .num("optimal_prune_ratio", prune_ratio, 4)
        .num("min_prune_ratio", min_prune_ratio, 2)
        .opt("pre_pr_optimal_instances_per_sec", pre_pr_optimal, 1)
        .opt("optimal_speedup_vs_pre_pr", optimal_speedup, 2)
        .metrics(&obs.metrics_json())
        .finish(pass);
    let out_path =
        std::env::var("BENCH_SIM_JSON").unwrap_or_else(|_| format!("{workspace}/BENCH_sim.json"));
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    println!(
        "sim_kernel gate: {detection_scenarios_per_sec:.0} detection scenarios/s \
         ({} baseline ratio), {:.1} % of Optimal assignments pruned -> {out_path}",
        ratio.map_or_else(|| "no".to_owned(), |r| format!("{r:.2}x")),
        prune_ratio * 100.0,
    );

    if std::env::var("BENCH_GATE_SKIP").is_ok() {
        println!("sim_kernel gate: BENCH_GATE_SKIP set, not enforcing baselines");
        return;
    }
    if let (Some(baseline), Some(floor)) = (baseline, floor) {
        assert!(
            throughput_pass,
            "detection-sweep throughput regressed by more than 25 %: \
             {detection_scenarios_per_sec:.0} scenarios/s vs baseline {baseline:.0} \
             (floor {floor:.0}); see {out_path}"
        );
    } else {
        println!("sim_kernel gate: no baseline at {baseline_path}, throughput not enforced");
    }
    assert!(
        prune_pass,
        "branch-and-bound pruned only {:.1} % of the Fig. 3 assignment space \
         (floor {:.0} %); see {out_path}",
        prune_ratio * 100.0,
        min_prune_ratio * 100.0,
    );
}

criterion_group!(
    benches,
    // The gate runs first so its VmHWM peak-RSS record reflects the gate
    // workload, not the buffered outcomes of the groups below.
    bench_gate,
    bench_sim_throughput,
    bench_detection_sweep,
    bench_optimal_bnb
);
criterion_main!(benches);
