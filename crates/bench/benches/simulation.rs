//! Criterion bench: throughput of the discrete-event simulator on the
//! Figure 1 case study (how much simulated time per second of wall clock the
//! detection-latency experiment can sustain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_core::allocator::{Allocator, HydraAllocator};
use hydra_core::{casestudy, catalog, AllocationProblem};
use rt_core::Time;
use rt_sim::engine::{simulate, SimConfig};
use rt_sim::workload::simulation_tasks;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("uav_case_study_simulation");
    group.sample_size(10);
    for &cores in &[2usize, 8] {
        let problem =
            AllocationProblem::new(casestudy::uav_rt_tasks(), catalog::table1_tasks(), cores);
        let allocation = HydraAllocator::default().allocate(&problem).unwrap();
        let tasks = simulation_tasks(&problem, &allocation);
        group.bench_with_input(BenchmarkId::new("cores", cores), &tasks, |b, tasks| {
            let config = SimConfig::new(Time::from_secs(30));
            b.iter(|| simulate(std::hint::black_box(tasks), &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
