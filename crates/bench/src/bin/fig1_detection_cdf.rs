//! Reproduces Figure 1: the empirical CDF of intrusion-detection time for
//! HYDRA vs SingleCore on the UAV case study with 2, 4 and 8 cores.
//!
//! Usage: `cargo run --release -p hydra-bench --bin fig1_detection_cdf
//! [--quick] [--attacks-per-config via --trials N] [--cores 2,4,8]
//! [--seed S] [--out DIR]`

use hydra_bench::fig1::{cdf_table, improvement_table, run, summary_table, Fig1Config};
use hydra_bench::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    let mut config = if options.quick {
        Fig1Config::quick()
    } else {
        Fig1Config::default()
    };
    if let Some(trials) = options.trials {
        config.attacks = trials;
    }
    if let Some(seed) = options.seed {
        config.seed = seed;
    }
    if let Some(cores) = options.cores.clone().filter(|c| !c.is_empty()) {
        config.cores = cores;
    }

    let result = match run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("case study could not be allocated: {e}");
            std::process::exit(1);
        }
    };

    let summary = summary_table(&result);
    let cdf = cdf_table(&result, &config);
    let improvement = improvement_table(&result);
    print!("{}", summary.to_console());
    println!();
    print!("{}", improvement.to_console());

    let dir = options.output_dir.unwrap_or_else(|| "results".to_owned());
    for (table, name) in [
        (&summary, "fig1_summary"),
        (&cdf, "fig1_cdf"),
        (&improvement, "fig1_improvement"),
    ] {
        match table.write_csv(&dir, name) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {name}: {e}"),
        }
    }
}
