//! Reproduces Figure 2: the improvement in acceptance ratio of HYDRA over
//! SingleCore on synthetic task sets, swept over total utilisation for 2, 4
//! and 8 cores.
//!
//! Usage: `cargo run --release -p hydra-bench --bin fig2_acceptance
//! [--quick] [--trials N] [--cores 2,4,8] [--seed S] [--out DIR]`

use hydra_bench::fig2::{acceptance_table, run, Fig2Config};
use hydra_bench::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    let mut config = if options.quick {
        Fig2Config::quick()
    } else {
        Fig2Config::default()
    };
    if let Some(trials) = options.trials {
        config.trials = trials;
    }
    if let Some(seed) = options.seed {
        config.seed = seed;
    }
    if let Some(cores) = options.cores.clone().filter(|c| !c.is_empty()) {
        config.cores = cores;
    }

    let points = run(&config);
    let table = acceptance_table(&points);
    print!("{}", table.to_console());

    let dir = options.output_dir.unwrap_or_else(|| "results".to_owned());
    match table.write_csv(&dir, "fig2_acceptance") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
