//! Reproduces Figure 3: the difference in cumulative tightness between HYDRA
//! and the optimal (exhaustive) allocation on a 2-core platform with up to 6
//! security tasks.
//!
//! Usage: `cargo run --release -p hydra-bench --bin fig3_optimality_gap
//! [--quick] [--trials N] [--seed S] [--out DIR]`

use hydra_bench::fig3::{run, tightness_table, Fig3Config};
use hydra_bench::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    let mut config = if options.quick {
        Fig3Config::quick()
    } else {
        Fig3Config::default()
    };
    if let Some(trials) = options.trials {
        config.trials = trials;
    }
    if let Some(seed) = options.seed {
        config.seed = seed;
    }

    let points = run(&config);
    let table = tightness_table(&points);
    print!("{}", table.to_console());

    let dir = options.output_dir.unwrap_or_else(|| "results".to_owned());
    match table.write_csv(&dir, "fig3_optimality_gap") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
