//! Compares the fixed / adapt / joint period policies on paired HYDRA
//! allocations and prints the cumulative-tightness CDF per policy (the
//! period-adaptation comparison of the 2019 follow-up paper).
//!
//! Usage: `cargo run --release -p hydra-bench --bin period_policy_cdf
//! [--quick] [--trials N] [--seed S] [--cores A,B] [--out DIR]`

use hydra_bench::period_policy::{cdf_table, run, PeriodPolicyConfig};
use hydra_bench::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    let mut config = if options.quick {
        PeriodPolicyConfig::quick()
    } else {
        PeriodPolicyConfig::default()
    };
    if let Some(trials) = options.trials {
        config.trials = trials;
    }
    if let Some(seed) = options.seed {
        config.seed = seed;
    }
    if let Some(cores) = options.cores {
        config.cores = cores;
    }

    let cdfs = run(&config);
    let table = cdf_table(&cdfs);
    print!("{}", table.to_console());

    let dir = options.output_dir.unwrap_or_else(|| "results".to_owned());
    match table.write_csv(&dir, "period_policy_cdf") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
