//! Prints Table I (the security-task catalogue) and writes it to
//! `results/table1.csv`.

use hydra_bench::report::ResultTable;
use hydra_bench::table1::build_table;
use hydra_bench::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    let table: ResultTable = build_table();
    print!("{}", table.to_console());
    let dir = options.output_dir.unwrap_or_else(|| "results".to_owned());
    match table.write_csv(&dir, "table1") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
