//! Figure 1: empirical CDF of intrusion-detection time, HYDRA vs SingleCore,
//! on the UAV control system with the Table I security tasks.
//!
//! The experiment is a declarative [`ScenarioSpec`] executed on the `rt-dse`
//! engine's detection pipeline. For each core count `M ∈ {2, 4, 8}` the
//! engine
//!
//! 1. builds the UAV + Table I workload (real-time tasks spread across all
//!    available cores with a worst-fit partition, as the paper assumes for
//!    HYDRA — Section IV states "the real-time tasks are distributed across
//!    all available cores"),
//! 2. allocates the security tasks with HYDRA and with SingleCore,
//! 3. simulates the resulting schedules for the configured horizon,
//! 4. injects synthetic attacks at uniformly random instants — the **same**
//!    instants for both schemes, thanks to the engine's shared seed
//!    addresses — and measures the time until the responsible security task
//!    next completes a full check,
//! 5. reports the empirical CDF and summary statistics of those detection
//!    times, plus the mean-detection-time improvement of HYDRA over
//!    SingleCore.

use rt_core::Time;
use rt_dse::prelude::*;
use rt_partition::PartitionConfig;
use rt_sim::cdf::EmpiricalCdf;

use crate::report::{fmt3, fmt_pct, ResultTable};

/// Parameters of the Figure 1 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Config {
    /// Core counts to evaluate (the paper uses 2, 4 and 8).
    pub cores: Vec<usize>,
    /// Simulated observation window (the paper observes 500 s per trial).
    pub horizon: Time,
    /// Number of injected attacks per scheme and core count.
    pub attacks: usize,
    /// RNG seed for the attack-injection times.
    pub seed: u64,
    /// Number of points of the reported CDF series.
    pub cdf_points: usize,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Fig1Config {
            cores: vec![2, 4, 8],
            horizon: Time::from_secs(500),
            attacks: 400,
            seed: 2018,
            cdf_points: 26,
        }
    }
}

impl Fig1Config {
    /// A reduced configuration for smoke tests and `--quick` runs.
    #[must_use]
    pub fn quick() -> Self {
        Fig1Config {
            horizon: Time::from_secs(60),
            attacks: 60,
            ..Fig1Config::default()
        }
    }

    /// The declarative sweep this experiment runs on the engine.
    #[must_use]
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            name: "fig1_detection_cdf".to_owned(),
            workload: Workload::CaseStudyUav,
            evaluation: Evaluation::Detection {
                horizon: self.horizon,
                attacks: self.attacks,
            },
            cores: self.cores.clone(),
            utilizations: UtilizationGrid::NotApplicable,
            allocators: vec![AllocatorKind::Hydra, AllocatorKind::SingleCore],
            period_policies: vec![PeriodPolicy::Fixed],
            trials: 1,
            base_seed: self.seed,
            expansion: Expansion::Cartesian,
            explore: ExploreMode::Exhaustive,
        }
    }
}

/// Detection-time statistics of one scheme on one platform size.
///
/// The latency summaries mirror the engine's [`rt_dse::DetectionStats`]:
/// `None` when the scheme detected nothing within the horizon, so a silent
/// configuration can never masquerade as an instantly-detecting one.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionSummary {
    /// Scheme name (`"HYDRA"` or `"SingleCore"`).
    pub scheme: &'static str,
    /// Number of cores.
    pub cores: usize,
    /// Number of detected attacks.
    pub detected: usize,
    /// Number of attacks not detected before the horizon.
    pub undetected: usize,
    /// Mean detection latency in milliseconds (`None` when nothing was
    /// detected).
    pub mean_ms: Option<f64>,
    /// Median detection latency in milliseconds (`None` when nothing was
    /// detected).
    pub median_ms: Option<f64>,
    /// 95th-percentile detection latency in milliseconds (`None` when
    /// nothing was detected).
    pub p95_ms: Option<f64>,
    /// Worst observed detection latency in milliseconds (`None` when nothing
    /// was detected).
    pub max_ms: Option<f64>,
    /// The empirical CDF of the detection latencies.
    pub cdf: EmpiricalCdf,
}

/// The complete result of the Figure 1 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// One summary per (scheme, core count) pair.
    pub summaries: Vec<DetectionSummary>,
    /// Mean-detection improvement of HYDRA over SingleCore per core count,
    /// in percent (positive means HYDRA detects faster).
    pub improvement_percent: Vec<(usize, f64)>,
}

/// The partitioning policy used for the real-time tasks in this experiment,
/// re-exported from the engine's single source of truth
/// ([`Workload::uav_partition_config`]): worst-fit (load balancing), so the
/// real-time tasks are spread across all cores as the paper assumes for the
/// HYDRA configuration.
#[must_use]
pub fn case_study_partition_config() -> PartitionConfig {
    Workload::uav_partition_config()
}

fn scheme_name(kind: AllocatorKind) -> &'static str {
    match kind {
        AllocatorKind::Hydra => "HYDRA",
        AllocatorKind::SingleCore => "SingleCore",
        other => other.label(),
    }
}

fn summarize(outcome: &ScenarioOutcome) -> Option<DetectionSummary> {
    let detection = outcome.detection.as_ref()?;
    Some(DetectionSummary {
        scheme: scheme_name(outcome.scenario.allocator),
        cores: outcome.scenario.cores,
        detected: detection.detected,
        undetected: detection.missed,
        mean_ms: detection.mean_ms,
        median_ms: detection.median_ms,
        p95_ms: detection.p95_ms,
        max_ms: detection.max_ms,
        cdf: EmpiricalCdf::new(detection.latencies_ms.iter().copied()),
    })
}

/// The Figure 1 experiment failed: a scheme could not schedule the case
/// study on some core count. Carries the engine's rendered allocation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig1Error {
    /// The scheme that failed.
    pub scheme: &'static str,
    /// The core count it failed on.
    pub cores: usize,
    /// The underlying allocation error, as rendered by the engine.
    pub error: String,
}

impl std::fmt::Display for Fig1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} could not schedule the case study on {} cores: {}",
            self.scheme, self.cores, self.error
        )
    }
}

impl std::error::Error for Fig1Error {}

/// Runs the Figure 1 experiment on the parallel sweep engine.
///
/// # Errors
///
/// Returns a [`Fig1Error`] naming the scheme, core count and underlying
/// allocation error if either scheme cannot schedule the case study (does
/// not happen for the built-in workload on 2–8 cores).
pub fn run(config: &Fig1Config) -> Result<Fig1Result, Fig1Error> {
    let result = Executor::parallel().run(&config.spec());
    let mut summaries = Vec::new();
    for outcome in &result.outcomes {
        let Some(summary) = summarize(outcome) else {
            return Err(Fig1Error {
                scheme: scheme_name(outcome.scenario.allocator),
                cores: outcome.scenario.cores,
                error: outcome
                    .error
                    .clone()
                    .unwrap_or_else(|| "allocation succeeded but no detection data".to_owned()),
            });
        };
        summaries.push(summary);
    }
    // Grid order is (cores × allocators) with the allocator axis innermost,
    // so summaries arrive as [HYDRA@M, SingleCore@M] per core count.
    let improvement_percent = summaries
        .chunks(2)
        .map(|pair| {
            let (hydra, single) = (&pair[0], &pair[1]);
            let improvement = match (hydra.mean_ms, single.mean_ms) {
                (Some(hydra_mean), Some(single_mean)) if single_mean > 0.0 => {
                    (single_mean - hydra_mean) / single_mean * 100.0
                }
                // Either scheme detecting nothing makes the ratio undefined;
                // report no improvement rather than a fabricated number.
                _ => 0.0,
            };
            (hydra.cores, improvement)
        })
        .collect();
    Ok(Fig1Result {
        summaries,
        improvement_percent,
    })
}

/// Renders the summary statistics as a table (one row per scheme × cores).
#[must_use]
pub fn summary_table(result: &Fig1Result) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 1 — intrusion-detection time, HYDRA vs SingleCore (UAV case study)",
        &[
            "cores",
            "scheme",
            "detected",
            "undetected",
            "mean_ms",
            "median_ms",
            "p95_ms",
            "max_ms",
        ],
    );
    let fmt3_opt = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), fmt3);
    for s in &result.summaries {
        table.push_row(vec![
            s.cores.to_string(),
            s.scheme.to_owned(),
            s.detected.to_string(),
            s.undetected.to_string(),
            fmt3_opt(s.mean_ms),
            fmt3_opt(s.median_ms),
            fmt3_opt(s.p95_ms),
            fmt3_opt(s.max_ms),
        ]);
    }
    table
}

/// Renders the detection-time CDF series (the curves of Figure 1) as a table
/// with one row per x-axis point and one column per scheme × cores.
#[must_use]
pub fn cdf_table(result: &Fig1Result, config: &Fig1Config) -> ResultTable {
    let max_x = result
        .summaries
        .iter()
        .filter_map(|s| s.max_ms)
        .fold(1.0f64, f64::max);
    let mut header: Vec<String> = vec!["detection_time_ms".to_owned()];
    for s in &result.summaries {
        header.push(format!("{}_{}cores", s.scheme, s.cores));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = ResultTable::new("Figure 1 — empirical CDF series", &header_refs);
    for i in 0..config.cdf_points {
        let x = max_x * i as f64 / (config.cdf_points - 1) as f64;
        let mut row = vec![fmt3(x)];
        for s in &result.summaries {
            row.push(fmt3(s.cdf.eval(x)));
        }
        table.push_row(row);
    }
    table
}

/// Renders the per-core-count improvement in mean detection time.
#[must_use]
pub fn improvement_table(result: &Fig1Result) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 1 — improvement in mean detection time, HYDRA vs SingleCore",
        &["cores", "improvement_percent"],
    );
    for (cores, imp) in &result.improvement_percent {
        table.push_row(vec![cores.to_string(), fmt_pct(*imp)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_summaries_for_every_configuration() {
        let config = Fig1Config {
            cores: vec![2, 4],
            ..Fig1Config::quick()
        };
        let result = run(&config).unwrap();
        assert_eq!(result.summaries.len(), 4);
        assert_eq!(result.improvement_percent.len(), 2);
        for s in &result.summaries {
            assert!(
                s.detected > 0,
                "{} on {} cores detected nothing",
                s.scheme,
                s.cores
            );
            assert!(s.mean_ms.unwrap() > 0.0);
            assert!(s.max_ms >= s.p95_ms && s.p95_ms >= s.median_ms);
        }
    }

    #[test]
    fn hydra_detects_no_slower_than_single_core_on_average() {
        let config = Fig1Config {
            cores: vec![4],
            ..Fig1Config::quick()
        };
        let result = run(&config).unwrap();
        let hydra = result
            .summaries
            .iter()
            .find(|s| s.scheme == "HYDRA")
            .unwrap();
        let single = result
            .summaries
            .iter()
            .find(|s| s.scheme == "SingleCore")
            .unwrap();
        // The paper reports ~27% faster detection on 4 cores; the exact number
        // depends on the substituted WCETs, but HYDRA must not be slower.
        let (hydra_mean, single_mean) = (hydra.mean_ms.unwrap(), single.mean_ms.unwrap());
        assert!(
            hydra_mean <= single_mean * 1.02,
            "HYDRA mean {hydra_mean} vs SingleCore mean {single_mean}"
        );
    }

    #[test]
    fn tables_render() {
        let config = Fig1Config {
            cores: vec![2],
            ..Fig1Config::quick()
        };
        let result = run(&config).unwrap();
        assert_eq!(summary_table(&result).len(), 2);
        assert_eq!(cdf_table(&result, &config).len(), config.cdf_points);
        assert_eq!(improvement_table(&result).len(), 1);
    }

    #[test]
    fn both_schemes_face_identical_attack_times() {
        // The engine derives the attack seed from the problem address, which
        // the allocator axis shares — pinned here because the paired CDF
        // comparison is meaningless otherwise.
        let spec = Fig1Config::quick().spec();
        let grid = rt_dse::ScenarioGrid::expand(&spec);
        for pair in grid.scenarios().chunks(2) {
            assert_eq!(pair[0].problem_stream, pair[1].problem_stream);
        }
    }
}
