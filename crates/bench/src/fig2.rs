//! Figure 2: improvement in acceptance ratio of HYDRA over SingleCore on
//! synthetic task sets, swept over total system utilisation for 2, 4 and 8
//! cores.
//!
//! For every utilisation point the harness generates `trials` random task
//! sets with the Section IV-B parameters, discards those failing the
//! necessary condition of Eq. (1), runs both schemes on the survivors and
//! records the fraction each scheme schedules. The reported series is the
//! improvement `(δ_single_fail − δ_hydra_fail)/δ_single_fail × 100 %`
//! together with the raw acceptance ratios (so the figure can be re-plotted
//! either way).

use hydra_core::allocator::{Allocator, HydraAllocator, SingleCoreAllocator};
use hydra_core::metrics::{acceptance_improvement_percent, AcceptanceCounter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt_core::dbf::necessary_condition_default_horizon;
use taskgen::synthetic::{generate_problem, SyntheticConfig};

use crate::report::{fmt3, fmt_pct, ResultTable};

/// Parameters of the Figure 2 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Config {
    /// Core counts to evaluate.
    pub cores: Vec<usize>,
    /// Random task sets generated per utilisation point (the paper uses 250).
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional cap on the number of utilisation points (`None` = the full
    /// 39-point sweep). Points are taken evenly from the full sweep.
    pub max_points: Option<usize>,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            cores: vec![2, 4, 8],
            trials: 250,
            seed: 2018,
            max_points: None,
        }
    }
}

impl Fig2Config {
    /// A reduced configuration for smoke tests and `--quick` runs.
    #[must_use]
    pub fn quick() -> Self {
        Fig2Config {
            cores: vec![2],
            trials: 20,
            max_points: Some(8),
            ..Fig2Config::default()
        }
    }
}

/// One point of the Figure 2 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptancePoint {
    /// Number of cores.
    pub cores: usize,
    /// Total system utilisation of the generated task sets.
    pub utilization: f64,
    /// Number of generated task sets that passed the Eq. (1) filter.
    pub evaluated: usize,
    /// Acceptance ratio of HYDRA.
    pub hydra: f64,
    /// Acceptance ratio of SingleCore.
    pub single_core: f64,
    /// Improvement metric plotted in Figure 2.
    pub improvement_percent: f64,
}

fn sweep_points(config: &SyntheticConfig, max_points: Option<usize>) -> Vec<f64> {
    let all = config.utilization_sweep();
    match max_points {
        Some(k) if k < all.len() && k >= 2 => {
            let step = (all.len() - 1) as f64 / (k - 1) as f64;
            (0..k).map(|i| all[(i as f64 * step).round() as usize]).collect()
        }
        _ => all,
    }
}

/// Runs the Figure 2 experiment and returns one [`AcceptancePoint`] per
/// `(cores, utilisation)` pair.
#[must_use]
pub fn run(config: &Fig2Config) -> Vec<AcceptancePoint> {
    let hydra = HydraAllocator::default();
    let single = SingleCoreAllocator::default();
    let mut points = Vec::new();
    for &cores in &config.cores {
        let synth = SyntheticConfig::paper_default(cores);
        for utilization in sweep_points(&synth, config.max_points) {
            let mut rng = StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_add(cores as u64)
                    .wrapping_add((utilization * 1000.0) as u64),
            );
            let mut hydra_counter = AcceptanceCounter::new();
            let mut single_counter = AcceptanceCounter::new();
            let mut evaluated = 0;
            for _ in 0..config.trials {
                let problem = generate_problem(&synth, utilization, &mut rng);
                // Discard task sets that are trivially unschedulable on the
                // platform (Eq. 1 applied to the whole workload with the
                // security tasks at their desired periods).
                if !necessary_condition_default_horizon(&problem.rt_tasks, cores) {
                    continue;
                }
                evaluated += 1;
                hydra_counter.record(hydra.allocate(&problem).is_ok());
                single_counter.record(single.allocate(&problem).is_ok());
            }
            points.push(AcceptancePoint {
                cores,
                utilization,
                evaluated,
                hydra: hydra_counter.ratio(),
                single_core: single_counter.ratio(),
                improvement_percent: acceptance_improvement_percent(
                    hydra_counter.ratio(),
                    single_counter.ratio(),
                ),
            });
        }
    }
    points
}

/// Renders the Figure 2 series as a table.
#[must_use]
pub fn acceptance_table(points: &[AcceptancePoint]) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 2 — acceptance ratio and improvement, HYDRA vs SingleCore",
        &[
            "cores",
            "total_utilization",
            "evaluated",
            "hydra_acceptance",
            "single_core_acceptance",
            "improvement_percent",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.cores.to_string(),
            fmt3(p.utilization),
            p.evaluated.to_string(),
            fmt3(p.hydra),
            fmt3(p.single_core),
            fmt_pct(p.improvement_percent),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_the_requested_points() {
        let config = Fig2Config {
            trials: 6,
            max_points: Some(5),
            cores: vec![2],
            ..Fig2Config::quick()
        };
        let points = run(&config);
        assert_eq!(points.len(), 5);
        for p in &points {
            assert_eq!(p.cores, 2);
            assert!(p.hydra >= 0.0 && p.hydra <= 1.0);
            assert!(p.single_core >= 0.0 && p.single_core <= 1.0);
        }
        assert_eq!(acceptance_table(&points).len(), 5);
    }

    #[test]
    fn low_utilization_is_accepted_by_both_schemes() {
        let config = Fig2Config {
            trials: 10,
            max_points: Some(2),
            cores: vec![2],
            ..Fig2Config::quick()
        };
        let points = run(&config);
        let low = &points[0];
        assert!(low.utilization < 0.3);
        assert!(low.hydra > 0.9, "HYDRA acceptance {} at U = {}", low.hydra, low.utilization);
        assert!((low.improvement_percent).abs() < 50.0);
    }

    #[test]
    fn hydra_accepts_at_least_as_many_tasksets_at_high_utilization() {
        let config = Fig2Config {
            trials: 15,
            max_points: Some(2),
            cores: vec![2],
            ..Fig2Config::quick()
        };
        let points = run(&config);
        let high = points.last().unwrap();
        assert!(high.utilization > 1.5);
        assert!(
            high.hydra >= high.single_core,
            "HYDRA {} vs SingleCore {} at U = {}",
            high.hydra,
            high.single_core,
            high.utilization
        );
    }

    #[test]
    fn full_sweep_has_39_points_per_core_count() {
        let synth = SyntheticConfig::paper_default(8);
        assert_eq!(sweep_points(&synth, None).len(), 39);
        assert_eq!(sweep_points(&synth, Some(10)).len(), 10);
    }
}
