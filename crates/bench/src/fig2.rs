//! Figure 2: improvement in acceptance ratio of HYDRA over SingleCore on
//! synthetic task sets, swept over total system utilisation for 2, 4 and 8
//! cores.
//!
//! The experiment is a declarative [`ScenarioSpec`] executed on the `rt-dse`
//! engine: the engine generates `trials` task sets per `(cores, utilisation)`
//! point (Section IV-B parameters), discards those failing the necessary
//! condition of Eq. (1), offers the survivors to both schemes — **the same
//! task-set instance to each**, thanks to the engine's shared seed
//! addresses — and aggregates acceptance ratios. The reported series is the
//! improvement `(δ_single_fail − δ_hydra_fail)/δ_single_fail × 100 %`
//! together with the raw acceptance ratios (so the figure can be re-plotted
//! either way).

use hydra_core::metrics::acceptance_improvement_percent;
use rt_dse::prelude::*;

use crate::report::{fmt3, fmt_pct, ResultTable};

/// Parameters of the Figure 2 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Config {
    /// Core counts to evaluate.
    pub cores: Vec<usize>,
    /// Random task sets generated per utilisation point (the paper uses 250).
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional cap on the number of utilisation points (`None` = the full
    /// 39-point sweep). Points are taken evenly from the full sweep.
    pub max_points: Option<usize>,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            cores: vec![2, 4, 8],
            trials: 250,
            seed: 2018,
            max_points: None,
        }
    }
}

impl Fig2Config {
    /// A reduced configuration for smoke tests and `--quick` runs.
    #[must_use]
    pub fn quick() -> Self {
        Fig2Config {
            cores: vec![2],
            trials: 20,
            max_points: Some(8),
            ..Fig2Config::default()
        }
    }

    /// The declarative sweep this experiment runs on the engine.
    #[must_use]
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            name: "fig2_acceptance".to_owned(),
            workload: Workload::Synthetic(SyntheticOverrides::default()),
            evaluation: Evaluation::Allocate,
            cores: self.cores.clone(),
            utilizations: UtilizationGrid::Fractions(crate::capped_paper_fractions(
                self.max_points,
            )),
            allocators: vec![AllocatorKind::Hydra, AllocatorKind::SingleCore],
            period_policies: vec![PeriodPolicy::Fixed],
            trials: self.trials,
            base_seed: self.seed,
            expansion: Expansion::Cartesian,
            explore: ExploreMode::Exhaustive,
        }
    }
}

/// One point of the Figure 2 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptancePoint {
    /// Number of cores.
    pub cores: usize,
    /// Total system utilisation of the generated task sets.
    pub utilization: f64,
    /// Number of generated task sets that passed the Eq. (1) filter.
    pub evaluated: usize,
    /// Acceptance ratio of HYDRA.
    pub hydra: f64,
    /// Acceptance ratio of SingleCore.
    pub single_core: f64,
    /// Improvement metric plotted in Figure 2.
    pub improvement_percent: f64,
}

/// Runs the Figure 2 experiment on the parallel sweep engine and returns one
/// [`AcceptancePoint`] per `(cores, utilisation)` pair.
///
/// Streams: the engine folds per-worker partial aggregates online and never
/// retains the per-scenario outcomes, so paper-scale trial counts run in
/// bounded memory.
#[must_use]
pub fn run(config: &Fig2Config) -> Vec<AcceptancePoint> {
    let summary = Executor::parallel()
        .run_streaming(&config.spec(), &mut NullSink)
        .expect("a NullSink never raises I/O errors");
    points_from(&summary.partial.rows())
}

/// Builds the Figure 2 series from the engine's aggregate rows.
#[must_use]
pub fn points_from(rows: &[rt_dse::AggregateRow]) -> Vec<AcceptancePoint> {
    let row_for = |cores: usize, utilization: Option<f64>, kind: AllocatorKind| {
        rows.iter()
            .find(|r| r.cores == cores && r.utilization == utilization && r.allocator == kind)
    };
    rows.iter()
        .filter(|r| r.allocator == AllocatorKind::Hydra)
        .map(|hydra| {
            let single = row_for(hydra.cores, hydra.utilization, AllocatorKind::SingleCore)
                .expect("the spec runs SingleCore at every point HYDRA runs");
            AcceptancePoint {
                cores: hydra.cores,
                utilization: hydra.utilization.unwrap_or(0.0),
                evaluated: hydra.feasible,
                hydra: hydra.acceptance_ratio,
                single_core: single.acceptance_ratio,
                improvement_percent: acceptance_improvement_percent(
                    hydra.acceptance_ratio,
                    single.acceptance_ratio,
                ),
            }
        })
        .collect()
}

/// Renders the Figure 2 series as a table.
#[must_use]
pub fn acceptance_table(points: &[AcceptancePoint]) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 2 — acceptance ratio and improvement, HYDRA vs SingleCore",
        &[
            "cores",
            "total_utilization",
            "evaluated",
            "hydra_acceptance",
            "single_core_acceptance",
            "improvement_percent",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.cores.to_string(),
            fmt3(p.utilization),
            p.evaluated.to_string(),
            fmt3(p.hydra),
            fmt3(p.single_core),
            fmt_pct(p.improvement_percent),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_the_requested_points() {
        let config = Fig2Config {
            trials: 6,
            max_points: Some(5),
            cores: vec![2],
            ..Fig2Config::quick()
        };
        let points = run(&config);
        assert_eq!(points.len(), 5);
        for p in &points {
            assert_eq!(p.cores, 2);
            assert!(p.hydra >= 0.0 && p.hydra <= 1.0);
            assert!(p.single_core >= 0.0 && p.single_core <= 1.0);
        }
        assert_eq!(acceptance_table(&points).len(), 5);
    }

    #[test]
    fn low_utilization_is_accepted_by_both_schemes() {
        let config = Fig2Config {
            trials: 10,
            max_points: Some(2),
            cores: vec![2],
            ..Fig2Config::quick()
        };
        let points = run(&config);
        let low = &points[0];
        assert!(low.utilization < 0.3);
        assert!(
            low.hydra > 0.9,
            "HYDRA acceptance {} at U = {}",
            low.hydra,
            low.utilization
        );
        assert!((low.improvement_percent).abs() < 50.0);
    }

    #[test]
    fn hydra_accepts_at_least_as_many_tasksets_at_high_utilization() {
        let config = Fig2Config {
            trials: 15,
            max_points: Some(2),
            cores: vec![2],
            ..Fig2Config::quick()
        };
        let points = run(&config);
        let high = points.last().unwrap();
        assert!(high.utilization > 1.5);
        assert!(
            high.hydra >= high.single_core,
            "HYDRA {} vs SingleCore {} at U = {}",
            high.hydra,
            high.single_core,
            high.utilization
        );
    }

    #[test]
    fn full_sweep_has_39_points_per_core_count() {
        assert_eq!(crate::capped_paper_fractions(None).len(), 39);
        assert_eq!(crate::capped_paper_fractions(Some(10)).len(), 10);
        let spec = Fig2Config::default().spec();
        assert_eq!(spec.utilizations.points(8).len(), 39);
    }

    #[test]
    fn the_spec_pairs_both_schemes_on_shared_task_sets() {
        let spec = Fig2Config::quick().spec();
        let grid = rt_dse::ScenarioGrid::expand(&spec);
        for pair in grid.scenarios().chunks(2) {
            assert_eq!(pair[0].problem_stream, pair[1].problem_stream);
            assert_ne!(pair[0].allocator, pair[1].allocator);
        }
    }
}
