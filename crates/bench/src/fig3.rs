//! Figure 3: difference in cumulative tightness between HYDRA and the optimal
//! (exhaustive) allocation, for a small platform (M = 2, N_S ∈ [2, 6]).
//!
//! For every utilisation point the harness generates random task sets with
//! the Section IV-B parameters restricted to at most six security tasks,
//! allocates with HYDRA and with the exhaustive Optimal scheme, and reports
//! the mean relative gap `Δη = (η_OPT − η_HYDRA)/η_OPT × 100 %` over the task
//! sets both schemes schedule.

use hydra_core::allocator::{Allocator, HydraAllocator, OptimalAllocator};
use hydra_core::metrics::{mean, tightness_gap_percent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use taskgen::synthetic::{generate_problem, SyntheticConfig};

use crate::report::{fmt3, fmt_pct, ResultTable};

/// Parameters of the Figure 3 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Config {
    /// Number of cores (the paper uses 2 so the exhaustive search stays
    /// tractable).
    pub cores: usize,
    /// Range (inclusive) of the number of security tasks (the paper uses
    /// `[2, 6]`).
    pub security_tasks: (usize, usize),
    /// Random task sets per utilisation point.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional cap on the number of utilisation points.
    pub max_points: Option<usize>,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            cores: 2,
            security_tasks: (2, 6),
            trials: 100,
            seed: 2018,
            max_points: None,
        }
    }
}

impl Fig3Config {
    /// A reduced configuration for smoke tests and `--quick` runs.
    #[must_use]
    pub fn quick() -> Self {
        Fig3Config {
            trials: 10,
            max_points: Some(8),
            ..Fig3Config::default()
        }
    }

    fn synthetic(&self) -> SyntheticConfig {
        let mut synth = SyntheticConfig::paper_default(self.cores);
        synth.security_tasks = self.security_tasks;
        synth
    }
}

/// One point of the Figure 3 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TightnessPoint {
    /// Total system utilisation of the generated task sets.
    pub utilization: f64,
    /// Number of task sets both schemes scheduled (the gap is averaged over
    /// these).
    pub compared: usize,
    /// Mean cumulative tightness achieved by HYDRA.
    pub hydra_tightness: f64,
    /// Mean cumulative tightness achieved by the optimal scheme.
    pub optimal_tightness: f64,
    /// Mean relative gap in percent (the Figure 3 y-axis).
    pub gap_percent: f64,
    /// Largest observed gap in percent.
    pub max_gap_percent: f64,
}

fn sweep_points(config: &SyntheticConfig, max_points: Option<usize>) -> Vec<f64> {
    let all = config.utilization_sweep();
    match max_points {
        Some(k) if k < all.len() && k >= 2 => {
            let step = (all.len() - 1) as f64 / (k - 1) as f64;
            (0..k).map(|i| all[(i as f64 * step).round() as usize]).collect()
        }
        _ => all,
    }
}

/// Runs the Figure 3 experiment.
#[must_use]
pub fn run(config: &Fig3Config) -> Vec<TightnessPoint> {
    let hydra = HydraAllocator::default();
    let optimal = OptimalAllocator::default();
    let synth = config.synthetic();
    let mut points = Vec::new();
    for utilization in sweep_points(&synth, config.max_points) {
        let mut rng = StdRng::seed_from_u64(
            config.seed.wrapping_add((utilization * 1000.0) as u64),
        );
        let mut gaps = Vec::new();
        let mut hydra_values = Vec::new();
        let mut optimal_values = Vec::new();
        for _ in 0..config.trials {
            let problem = generate_problem(&synth, utilization, &mut rng);
            let (Ok(h), Ok(o)) = (hydra.allocate(&problem), optimal.allocate(&problem)) else {
                continue;
            };
            let sec = &problem.security_tasks;
            let eta_h = h.cumulative_tightness(sec);
            let eta_o = o.cumulative_tightness(sec);
            hydra_values.push(eta_h);
            optimal_values.push(eta_o);
            gaps.push(tightness_gap_percent(eta_o, eta_h));
        }
        points.push(TightnessPoint {
            utilization,
            compared: gaps.len(),
            hydra_tightness: mean(&hydra_values),
            optimal_tightness: mean(&optimal_values),
            gap_percent: mean(&gaps),
            max_gap_percent: gaps.iter().copied().fold(0.0, f64::max),
        });
    }
    points
}

/// Renders the Figure 3 series as a table.
#[must_use]
pub fn tightness_table(points: &[TightnessPoint]) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 3 — cumulative-tightness gap, HYDRA vs Optimal (M = 2, Ns ≤ 6)",
        &[
            "total_utilization",
            "compared",
            "hydra_tightness",
            "optimal_tightness",
            "mean_gap_percent",
            "max_gap_percent",
        ],
    );
    for p in points {
        table.push_row(vec![
            fmt3(p.utilization),
            p.compared.to_string(),
            fmt3(p.hydra_tightness),
            fmt3(p.optimal_tightness),
            fmt_pct(p.gap_percent),
            fmt_pct(p.max_gap_percent),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_points_with_sound_gaps() {
        let config = Fig3Config {
            trials: 5,
            max_points: Some(4),
            ..Fig3Config::quick()
        };
        let points = run(&config);
        assert_eq!(points.len(), 4);
        for p in &points {
            // Optimal never loses to HYDRA, so the gap is non-negative and
            // the mean optimal tightness is at least the mean HYDRA tightness
            // over the compared task sets.
            assert!(p.gap_percent >= 0.0);
            assert!(p.max_gap_percent >= p.gap_percent);
            if p.compared > 0 {
                assert!(p.optimal_tightness + 1e-9 >= p.hydra_tightness);
            }
        }
        assert_eq!(tightness_table(&points).len(), 4);
    }

    #[test]
    fn low_utilization_gap_is_negligible() {
        let config = Fig3Config {
            trials: 8,
            max_points: Some(2),
            ..Fig3Config::quick()
        };
        let points = run(&config);
        let low = &points[0];
        assert!(low.utilization < 0.3);
        assert!(low.compared > 0);
        assert!(
            low.gap_percent < 1.0,
            "gap {} % at utilisation {}",
            low.gap_percent,
            low.utilization
        );
    }
}
