//! Figure 3: difference in cumulative tightness between HYDRA and the optimal
//! (exhaustive) allocation, for a small platform (M = 2, N_S ∈ [2, 6]).
//!
//! The experiment is a declarative [`ScenarioSpec`] executed on the `rt-dse`
//! engine with the security task-count range restricted so the exhaustive
//! scheme stays tractable. Both schemes receive the **identical task-set
//! instance** at every trial (shared seed addresses), and the engine's
//! paired-comparison aggregation reports the mean relative gap
//! `Δη = (η_OPT − η_HYDRA)/η_OPT × 100 %` over the task sets both schemes
//! schedule — exactly the Figure 3 y-axis.

use rt_dse::prelude::*;

use crate::report::{fmt3, fmt_pct, ResultTable};

/// Parameters of the Figure 3 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Config {
    /// Number of cores (the paper uses 2 so the exhaustive search stays
    /// tractable).
    pub cores: usize,
    /// Range (inclusive) of the number of security tasks (the paper uses
    /// `[2, 6]`).
    pub security_tasks: (usize, usize),
    /// Random task sets per utilisation point.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional cap on the number of utilisation points.
    pub max_points: Option<usize>,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            cores: 2,
            security_tasks: (2, 6),
            trials: 100,
            seed: 2018,
            max_points: None,
        }
    }
}

impl Fig3Config {
    /// A reduced configuration for smoke tests and `--quick` runs.
    #[must_use]
    pub fn quick() -> Self {
        Fig3Config {
            trials: 10,
            max_points: Some(8),
            ..Fig3Config::default()
        }
    }

    /// The declarative sweep this experiment runs on the engine.
    #[must_use]
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            name: "fig3_optimality_gap".to_owned(),
            workload: Workload::Synthetic(SyntheticOverrides {
                rt_tasks: None,
                security_tasks: Some(self.security_tasks),
            }),
            evaluation: Evaluation::Allocate,
            cores: vec![self.cores],
            utilizations: UtilizationGrid::Fractions(crate::capped_paper_fractions(
                self.max_points,
            )),
            allocators: vec![AllocatorKind::Hydra, AllocatorKind::Optimal],
            period_policies: vec![PeriodPolicy::Fixed],
            trials: self.trials,
            base_seed: self.seed,
            expansion: Expansion::Cartesian,
            explore: ExploreMode::Exhaustive,
        }
    }
}

/// One point of the Figure 3 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TightnessPoint {
    /// Total system utilisation of the generated task sets.
    pub utilization: f64,
    /// Number of task sets both schemes scheduled (the gap is averaged over
    /// these).
    pub compared: usize,
    /// Mean cumulative tightness achieved by HYDRA.
    pub hydra_tightness: f64,
    /// Mean cumulative tightness achieved by the optimal scheme.
    pub optimal_tightness: f64,
    /// Mean relative gap in percent (the Figure 3 y-axis).
    pub gap_percent: f64,
    /// Largest observed gap in percent.
    pub max_gap_percent: f64,
}

/// Runs the Figure 3 experiment on the parallel sweep engine.
///
/// Streams: the paired join folds outcome by outcome in a [`PairedSink`], so
/// no per-scenario outcome vector is ever retained.
#[must_use]
pub fn run(config: &Fig3Config) -> Vec<TightnessPoint> {
    let mut paired = PairedSink::new(AllocatorKind::Hydra, AllocatorKind::Optimal);
    Executor::parallel()
        .run_streaming(&config.spec(), &mut paired)
        .expect("a PairedSink never raises I/O errors");
    paired
        .into_points()
        .into_iter()
        .map(|p| TightnessPoint {
            utilization: p.utilization.unwrap_or(0.0),
            compared: p.compared,
            hydra_tightness: p.a_tightness,
            optimal_tightness: p.b_tightness,
            // Optimal dominates HYDRA by construction; the clamp only absorbs
            // floating-point noise on equal allocations (matching
            // `hydra_core::metrics::tightness_gap_percent`).
            gap_percent: p.mean_gap_percent.max(0.0),
            max_gap_percent: p.max_gap_percent.max(0.0),
        })
        .collect()
}

/// Renders the Figure 3 series as a table.
#[must_use]
pub fn tightness_table(points: &[TightnessPoint]) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 3 — cumulative-tightness gap, HYDRA vs Optimal (M = 2, Ns ≤ 6)",
        &[
            "total_utilization",
            "compared",
            "hydra_tightness",
            "optimal_tightness",
            "mean_gap_percent",
            "max_gap_percent",
        ],
    );
    for p in points {
        table.push_row(vec![
            fmt3(p.utilization),
            p.compared.to_string(),
            fmt3(p.hydra_tightness),
            fmt3(p.optimal_tightness),
            fmt_pct(p.gap_percent),
            fmt_pct(p.max_gap_percent),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_points_with_sound_gaps() {
        let config = Fig3Config {
            trials: 5,
            max_points: Some(4),
            ..Fig3Config::quick()
        };
        let points = run(&config);
        assert_eq!(points.len(), 4);
        for p in &points {
            // Optimal never loses to HYDRA, so the gap is non-negative and
            // the mean optimal tightness is at least the mean HYDRA tightness
            // over the compared task sets.
            assert!(p.gap_percent >= 0.0);
            assert!(p.max_gap_percent >= p.gap_percent);
            if p.compared > 0 {
                assert!(p.optimal_tightness + 1e-9 >= p.hydra_tightness);
            }
        }
        assert_eq!(tightness_table(&points).len(), 4);
    }

    #[test]
    fn low_utilization_gap_is_negligible() {
        let config = Fig3Config {
            trials: 8,
            max_points: Some(2),
            ..Fig3Config::quick()
        };
        let points = run(&config);
        let low = &points[0];
        assert!(low.utilization < 0.3);
        assert!(low.compared > 0);
        assert!(
            low.gap_percent < 1.0,
            "gap {} % at utilisation {}",
            low.gap_percent,
            low.utilization
        );
    }

    #[test]
    fn the_spec_restricts_the_security_task_range() {
        let spec = Fig3Config::default().spec();
        let Workload::Synthetic(overrides) = spec.workload else {
            panic!("Figure 3 runs on synthetic workloads");
        };
        assert_eq!(overrides.security_tasks, Some((2, 6)));
        assert_eq!(spec.cores, vec![2]);
        assert_eq!(
            spec.allocators,
            vec![AllocatorKind::Hydra, AllocatorKind::Optimal]
        );
    }
}
