//! Shared plumbing of the CI bench gates (`dse_sweep`, `sim_kernel`): the
//! machine-readable `BENCH_*.json` records need the commit under test, the
//! process's peak RSS, and a way to read numbers out of the checked-in
//! baseline files without pulling in a JSON dependency.

/// Peak resident-set size of this process in bytes (Linux `VmHWM`), or
/// `None` where `/proc` is unavailable.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The commit under test: `GITHUB_SHA` in CI, `git rev-parse HEAD` locally.
#[must_use]
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        return sha;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Extracts `"key": <number>` from a flat JSON document — enough to read a
/// checked-in baseline without a JSON dependency.
#[must_use]
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_reads_flat_documents() {
        let doc = r#"{ "a": 4000.0, "nested": -1.5e3, "int": 7 }"#;
        assert_eq!(json_number(doc, "a"), Some(4000.0));
        assert_eq!(json_number(doc, "nested"), Some(-1500.0));
        assert_eq!(json_number(doc, "int"), Some(7.0));
        assert_eq!(json_number(doc, "missing"), None);
    }

    #[test]
    fn git_sha_is_never_empty() {
        assert!(!git_sha().is_empty());
    }
}
