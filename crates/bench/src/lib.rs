//! # hydra-bench — experiment harness for the HYDRA reproduction
//!
//! One module per paper artefact plus shared plumbing:
//!
//! * [`fig1`] — the UAV case study: allocate with HYDRA and SingleCore,
//!   simulate, inject attacks, report the detection-time CDF (Figure 1),
//! * [`fig2`] — the synthetic acceptance-ratio sweep (Figure 2),
//! * [`fig3`] — the HYDRA vs Optimal cumulative-tightness gap (Figure 3),
//! * [`period_policy`] — the fixed/adapt/joint period-policy tightness CDFs
//!   (the follow-up period-adaptation comparison),
//! * [`table1`] — the security-task catalogue (Table I),
//! * [`report`] — small CSV/console reporting helpers shared by the binaries,
//! * [`gate`] — shared plumbing of the CI bench gates (peak RSS, git SHA,
//!   baseline parsing for the `BENCH_*.json` records),
//! * [`record`] — the ordered `BENCH_*.json` record builder shared by the
//!   gates (common envelope + embedded `rt-obs` metrics snapshot).
//!
//! Each binary in `src/bin/` is a thin wrapper over the corresponding module
//! so the same experiment code is reachable from integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod gate;
pub mod period_policy;
pub mod record;
pub mod report;
pub mod table1;

/// The paper's 39 per-core utilization fractions (`0.025, 0.05, …, 0.975`),
/// optionally capped to `max_points` values taken evenly across the sweep —
/// the utilization axis shared by the Figure 2 and Figure 3 specs.
#[must_use]
pub(crate) fn capped_paper_fractions(max_points: Option<usize>) -> Vec<f64> {
    let all: Vec<f64> = (1..=39).map(|i| 0.025 * i as f64).collect();
    match max_points {
        Some(k) if k < all.len() && k >= 2 => {
            let step = (all.len() - 1) as f64 / (k - 1) as f64;
            (0..k)
                .map(|i| all[(i as f64 * step).round() as usize])
                .collect()
        }
        _ => all,
    }
}

/// Parses `--key value` style command-line options shared by the experiment
/// binaries. Unknown keys are ignored so each binary can pick what it needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Number of random trials (task sets per utilisation point, or attacks
    /// per configuration).
    pub trials: Option<usize>,
    /// RNG seed.
    pub seed: Option<u64>,
    /// Core counts to evaluate.
    pub cores: Option<Vec<usize>>,
    /// Output directory for CSV files.
    pub output_dir: Option<String>,
    /// Quick mode: drastically reduced trial counts for smoke runs.
    pub quick: bool,
}

impl CliOptions {
    /// Parses options from an iterator of argument strings (excluding the
    /// program name).
    #[must_use]
    pub fn parse<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_owned()).collect();
        let mut options = CliOptions {
            trials: None,
            seed: None,
            cores: None,
            output_dir: None,
            quick: false,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    options.quick = true;
                    i += 1;
                }
                "--trials" if i + 1 < args.len() => {
                    options.trials = args[i + 1].parse().ok();
                    i += 2;
                }
                "--seed" if i + 1 < args.len() => {
                    options.seed = args[i + 1].parse().ok();
                    i += 2;
                }
                "--cores" if i + 1 < args.len() => {
                    options.cores = Some(
                        args[i + 1]
                            .split(',')
                            .filter_map(|c| c.trim().parse().ok())
                            .collect(),
                    );
                    i += 2;
                }
                "--out" if i + 1 < args.len() => {
                    options.output_dir = Some(args[i + 1].clone());
                    i += 2;
                }
                _ => i += 1,
            }
        }
        options
    }

    /// Parses the options of the current process.
    #[must_use]
    pub fn from_env() -> Self {
        CliOptions::parse(std::env::args().skip(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_flags_and_ignores_unknown() {
        let opts = CliOptions::parse([
            "--trials", "50", "--seed", "7", "--cores", "2,4,8", "--quick", "--out", "results",
            "--bogus", "x",
        ]);
        assert_eq!(opts.trials, Some(50));
        assert_eq!(opts.seed, Some(7));
        assert_eq!(opts.cores, Some(vec![2, 4, 8]));
        assert!(opts.quick);
        assert_eq!(opts.output_dir.as_deref(), Some("results"));
    }

    #[test]
    fn defaults_when_no_flags() {
        let opts = CliOptions::parse(Vec::<String>::new());
        assert_eq!(opts.trials, None);
        assert!(!opts.quick);
    }

    #[test]
    fn malformed_values_fall_back_to_none() {
        let opts = CliOptions::parse(["--trials", "abc", "--cores", "x,y"]);
        assert_eq!(opts.trials, None);
        assert_eq!(opts.cores, Some(vec![]));
    }
}
