//! Period-policy comparison: the tightness CDF per post-allocation period
//! policy (fixed / adapt / joint), in the spirit of the follow-up paper
//! "Period Adaptation for Continuous Security Monitoring in Multicore
//! Real-Time Systems" (Hasan et al., 2019).
//!
//! The experiment is a thin declarative [`ScenarioSpec`] on the `rt-dse`
//! engine: one allocator (HYDRA), the full three-policy axis, and a
//! synthetic utilization sweep. Policy variants of every point share the
//! identical task-set instance (same seed address, same allocator), so the
//! per-policy CDFs are paired sample for sample — the difference between two
//! curves is purely the policy.

use rt_dse::prelude::*;
use rt_dse::OutcomeSink;
use rt_dse::ScenarioOutcome;

use crate::report::{fmt3, ResultTable};

/// Parameters of the period-policy comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodPolicyConfig {
    /// Core counts to sweep.
    pub cores: Vec<usize>,
    /// Random task sets per utilisation point.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional cap on the number of utilisation points.
    pub max_points: Option<usize>,
}

impl Default for PeriodPolicyConfig {
    fn default() -> Self {
        PeriodPolicyConfig {
            cores: vec![2, 4],
            trials: 100,
            seed: 2019,
            max_points: None,
        }
    }
}

impl PeriodPolicyConfig {
    /// A reduced configuration for smoke tests and `--quick` runs.
    #[must_use]
    pub fn quick() -> Self {
        PeriodPolicyConfig {
            cores: vec![2],
            trials: 10,
            max_points: Some(8),
            ..PeriodPolicyConfig::default()
        }
    }

    /// The declarative sweep this experiment runs on the engine.
    #[must_use]
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            name: "period_policy_cdf".to_owned(),
            workload: Workload::Synthetic(SyntheticOverrides::default()),
            evaluation: Evaluation::Allocate,
            cores: self.cores.clone(),
            utilizations: UtilizationGrid::Fractions(crate::capped_paper_fractions(
                self.max_points,
            )),
            allocators: vec![AllocatorKind::Hydra],
            period_policies: vec![
                PeriodPolicy::Fixed,
                PeriodPolicy::Adapt,
                PeriodPolicy::Joint,
            ],
            trials: self.trials,
            base_seed: self.seed,
            expansion: Expansion::Cartesian,
            explore: ExploreMode::Exhaustive,
        }
    }
}

/// The empirical tightness distribution of one period policy over every
/// scheduled scenario of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCdf {
    /// The policy this curve belongs to.
    pub policy: PeriodPolicy,
    /// Cumulative-tightness samples, sorted ascending (the CDF support).
    pub samples: Vec<f64>,
    /// Mean of the samples.
    pub mean: f64,
    /// Mean achieved-vs-desired frequency ratio over the same scenarios.
    pub mean_freq_ratio: f64,
    /// Mean normalised period slack over the same scenarios.
    pub mean_period_slack: f64,
}

impl PolicyCdf {
    /// The p-th percentile of the tightness samples (`0` when empty).
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        hydra_core::metrics::percentile_sorted(&self.samples, p)
    }

    /// Empirical CDF at tightness `x`: the fraction of scheduled scenarios
    /// with cumulative tightness ≤ `x`.
    #[must_use]
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let below = self.samples.partition_point(|&s| s <= x);
        below as f64 / self.samples.len() as f64
    }
}

/// Streaming sink folding scheduled outcomes into per-policy sample sets.
#[derive(Debug, Default)]
struct PolicyCdfSink {
    tightness: [Vec<f64>; 3],
    freq: [Vec<f64>; 3],
    slack: [Vec<f64>; 3],
}

fn policy_slot(policy: PeriodPolicy) -> usize {
    match policy {
        PeriodPolicy::Fixed => 0,
        PeriodPolicy::Adapt => 1,
        PeriodPolicy::Joint => 2,
    }
}

impl OutcomeSink for PolicyCdfSink {
    fn record(&mut self, outcome: &ScenarioOutcome) -> std::io::Result<()> {
        let slot = policy_slot(outcome.scenario.policy);
        if let Some(t) = outcome.cumulative_tightness {
            self.tightness[slot].push(t);
        }
        if let Some(f) = outcome.freq_ratio {
            self.freq[slot].push(f);
        }
        if let Some(s) = outcome.period_slack {
            self.slack[slot].push(s);
        }
        Ok(())
    }
}

/// Runs the period-policy comparison on the parallel sweep engine and
/// returns one CDF per policy, in [`PeriodPolicy::ALL`] order.
#[must_use]
pub fn run(config: &PeriodPolicyConfig) -> Vec<PolicyCdf> {
    let mut sink = PolicyCdfSink::default();
    Executor::parallel()
        .run_streaming(&config.spec(), &mut sink)
        .expect("an in-memory sink never raises I/O errors");
    PeriodPolicy::ALL
        .into_iter()
        .map(|policy| {
            let slot = policy_slot(policy);
            let mut samples = std::mem::take(&mut sink.tightness[slot]);
            samples.sort_by(f64::total_cmp);
            PolicyCdf {
                policy,
                mean: hydra_core::metrics::mean(&samples),
                mean_freq_ratio: hydra_core::metrics::mean(&sink.freq[slot]),
                mean_period_slack: hydra_core::metrics::mean(&sink.slack[slot]),
                samples,
            }
        })
        .collect()
}

/// Renders the per-policy tightness CDFs as a decile table (one row per
/// policy, columns p10 … p90 plus the summary means).
#[must_use]
pub fn cdf_table(cdfs: &[PolicyCdf]) -> ResultTable {
    let mut table = ResultTable::new(
        "Period-policy comparison — cumulative-tightness CDF per policy (HYDRA)",
        &[
            "policy",
            "scheduled",
            "p10",
            "p25",
            "p50",
            "p75",
            "p90",
            "mean",
            "mean_freq_ratio",
            "mean_period_slack",
        ],
    );
    for cdf in cdfs {
        table.push_row(vec![
            cdf.policy.label().to_owned(),
            cdf.samples.len().to_string(),
            fmt3(cdf.percentile(10.0)),
            fmt3(cdf.percentile(25.0)),
            fmt3(cdf.percentile(50.0)),
            fmt3(cdf.percentile(75.0)),
            fmt3(cdf.percentile(90.0)),
            fmt3(cdf.mean),
            fmt3(cdf.mean_freq_ratio),
            fmt3(cdf.mean_period_slack),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PeriodPolicyConfig {
        PeriodPolicyConfig {
            cores: vec![2],
            trials: 6,
            max_points: Some(4),
            ..PeriodPolicyConfig::quick()
        }
    }

    #[test]
    fn policies_are_paired_and_joint_dominates_fixed() {
        let cdfs = run(&tiny());
        assert_eq!(cdfs.len(), 3);
        let [fixed, adapt, joint] = &cdfs[..] else {
            panic!("one CDF per policy");
        };
        // Paired sampling: every policy schedules the identical scenarios.
        assert_eq!(fixed.samples.len(), adapt.samples.len());
        assert_eq!(fixed.samples.len(), joint.samples.len());
        assert!(!fixed.samples.is_empty());
        // HYDRA's grants are already greedy-minimal, so adapt matches fixed
        // and joint never does worse on the mean.
        assert_eq!(fixed.samples, adapt.samples);
        assert!(joint.mean >= fixed.mean - 1e-12);
        // The secondary metrics are *not* monotonic across policies
        // (stretching a high-priority period can let the tasks below it run
        // faster), but they stay within their defined ranges.
        for cdf in [fixed, adapt, joint] {
            assert!((0.0..=1.0 + 1e-12).contains(&cdf.mean_freq_ratio));
            assert!((0.0..=1.0).contains(&cdf.mean_period_slack));
        }
    }

    #[test]
    fn cdf_queries_are_consistent() {
        let cdfs = run(&tiny());
        for cdf in &cdfs {
            assert!(cdf.samples.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(cdf.cdf_at(f64::INFINITY), 1.0);
            assert_eq!(cdf.cdf_at(-1.0), 0.0);
            let median = cdf.percentile(50.0);
            let at_median = cdf.cdf_at(median);
            assert!(
                (0.4..=1.0).contains(&at_median),
                "CDF({median}) = {at_median}"
            );
        }
        assert_eq!(cdf_table(&cdfs).len(), 3);
    }

    #[test]
    fn the_spec_carries_the_full_policy_axis() {
        let spec = PeriodPolicyConfig::default().spec();
        assert_eq!(spec.allocators, vec![AllocatorKind::Hydra]);
        assert_eq!(
            spec.period_policies,
            vec![
                PeriodPolicy::Fixed,
                PeriodPolicy::Adapt,
                PeriodPolicy::Joint
            ]
        );
    }
}
