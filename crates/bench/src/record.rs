//! The shared `BENCH_*.json` record builder: every CI bench gate emits the
//! same envelope (bench name, commit under test, host parallelism, peak
//! RSS, pass/fail verdict) around its own measurements, and can embed the
//! `rt-obs` metrics snapshot of an instrumented run. Factoring the
//! envelope here keeps the gates' documents consistent and spares each
//! bench the hand-rolled JSON assembly that `dse_sweep` and `sim_kernel`
//! used to duplicate.
//!
//! Keys render in insertion order, so existing baseline readers (the
//! [`json_number`](crate::gate::json_number) scraper, CI scripts) keep
//! working as fields are appended.

use crate::gate::{git_sha, peak_rss_bytes};

/// An ordered key/value JSON document under construction. Build with
/// [`BenchRecord::new`], append measurements with the typed methods, and
/// render with [`BenchRecord::finish`].
#[derive(Debug)]
pub struct BenchRecord {
    fields: Vec<(String, String)>,
}

impl BenchRecord {
    /// Starts a record for `bench`, seeded with the shared environment
    /// fields: the commit under test (`git_sha`) and the host's available
    /// parallelism (`host_cpus`).
    #[must_use]
    pub fn new(bench: &str) -> Self {
        let mut record = BenchRecord { fields: Vec::new() };
        record.push("bench", format!("\"{bench}\""));
        record.push("git_sha", format!("\"{}\"", git_sha()));
        let cpus = std::thread::available_parallelism().map_or(0, usize::from);
        record.push("host_cpus", cpus.to_string());
        record
    }

    fn push(&mut self, key: &str, value: String) {
        self.fields.push((key.to_owned(), value));
    }

    /// An unsigned integer field.
    #[must_use]
    pub fn int(mut self, key: &str, value: u128) -> Self {
        self.push(key, value.to_string());
        self
    }

    /// A float field rendered with `decimals` fractional digits.
    #[must_use]
    pub fn num(mut self, key: &str, value: f64, decimals: usize) -> Self {
        self.push(key, format!("{value:.decimals$}"));
        self
    }

    /// An optional float field (`null` when absent).
    #[must_use]
    pub fn opt(mut self, key: &str, value: Option<f64>, decimals: usize) -> Self {
        let rendered = value.map_or_else(|| "null".to_owned(), |v| format!("{v:.decimals$}"));
        self.push(key, rendered);
        self
    }

    /// A pre-rendered JSON value (an embedded object, `null`, a quoted
    /// string the caller already escaped).
    #[must_use]
    pub fn raw(mut self, key: &str, rendered: String) -> Self {
        self.push(key, rendered);
        self
    }

    /// Embeds a full `rt-obs` metrics document (the output of
    /// [`SweepObs::metrics_json`](rt_dse::SweepObs::metrics_json)) as a
    /// nested `metrics` object, so the gate record carries the counters and
    /// per-phase times of the instrumented run it timed.
    #[must_use]
    pub fn metrics(self, metrics_json: &str) -> Self {
        self.raw("metrics", metrics_json.trim_end().to_owned())
    }

    /// Appends the shared trailer (`peak_rss_bytes`, the `gate` verdict)
    /// and renders the document.
    #[must_use]
    pub fn finish(mut self, pass: bool) -> String {
        let rss = peak_rss_bytes().map_or_else(|| "null".to_owned(), |b| b.to_string());
        self.push("peak_rss_bytes", rss);
        self.push(
            "gate",
            format!("\"{}\"", if pass { "pass" } else { "fail" }),
        );
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(key);
            out.push_str("\": ");
            out.push_str(value);
            out.push_str(if i + 1 == self.fields.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::json_number;

    #[test]
    fn record_renders_ordered_fields_with_shared_envelope() {
        let json = BenchRecord::new("demo")
            .int("grid_size", 72)
            .num("scenarios_per_sec", 1234.5678, 1)
            .opt("baseline", None, 1)
            .raw("label", "\"quick\"".to_owned())
            .finish(true);
        assert!(json.starts_with("{\n  \"bench\": \"demo\",\n  \"git_sha\": \""));
        assert!(json.ends_with("\"gate\": \"pass\"\n}\n"));
        assert_eq!(json_number(&json, "grid_size"), Some(72.0));
        assert_eq!(json_number(&json, "scenarios_per_sec"), Some(1234.6));
        assert!(json.contains("\"baseline\": null"));
        let bench_pos = json.find("\"bench\"").unwrap();
        let grid_pos = json.find("\"grid_size\"").unwrap();
        let gate_pos = json.find("\"gate\"").unwrap();
        assert!(bench_pos < grid_pos && grid_pos < gate_pos);
    }

    #[test]
    fn embedded_metrics_document_stays_valid_json() {
        let obs = rt_dse::SweepObs::enabled();
        obs.worker(0).record_scenario(None);
        let json = BenchRecord::new("demo")
            .metrics(&obs.metrics_json())
            .finish(false);
        assert!(json.contains("\"metrics\": {"));
        assert!(json.contains("\"sweep.scenarios_done\": 1"));
        assert!(json.contains("\"gate\": \"fail\""));
        // Brace balance is a cheap structural check without a JSON parser.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
