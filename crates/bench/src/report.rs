//! CSV and console reporting helpers shared by the experiment binaries.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A rectangular result table: a header row and data rows, writable as CSV
/// and printable as an aligned console table.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table with the given title and column names.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as CSV (header + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as an aligned console listing with its title.
    #[must_use]
    pub fn to_console(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = format!("# {}\n", self.title);
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `dir/name.csv`, creating the directory if
    /// needed, and returns the path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing the file.
    pub fn write_csv(&self, dir: impl AsRef<Path>, name: &str) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut file = fs::File::create(&path)?;
        file.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Formats a float with three decimal places (the precision used in the
/// experiment outputs).
#[must_use]
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a float as a percentage with one decimal place.
#[must_use]
pub fn fmt_pct(value: f64) -> String {
    format!("{value:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultTable {
        let mut t = ResultTable::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["30".into(), "4".into()]);
        t
    }

    #[test]
    fn csv_rendering() {
        let t = sample();
        assert_eq!(t.to_csv(), "a,b\n1,2\n30,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "demo");
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn console_rendering_is_aligned() {
        let t = sample();
        let text = t.to_console();
        assert!(text.starts_with("# demo\n"));
        assert!(text.contains(" a  b"));
        assert!(text.contains("30  4"));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_length_panics() {
        let mut t = ResultTable::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("hydra_bench_test_report");
        let path = sample().write_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("a,b"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_pct(19.812), "19.8");
    }
}
