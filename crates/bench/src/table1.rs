//! Table I: the security-task catalogue used in the case study.

use hydra_core::catalog::table1_entries;

use crate::report::{fmt3, ResultTable};

/// Builds the Table I listing: one row per security task with its
/// application, function and timing parameters.
#[must_use]
pub fn build_table() -> ResultTable {
    let mut table = ResultTable::new(
        "Table I — security tasks (Tripwire + Bro) with timing parameters",
        &[
            "task",
            "application",
            "function",
            "wcet_ms",
            "desired_period_ms",
            "max_period_ms",
            "utilization_at_desired",
        ],
    );
    for entry in table1_entries() {
        let task = entry.to_task();
        table.push_row(vec![
            entry.name.to_owned(),
            entry.application.to_string(),
            entry.function.replace(',', ";"),
            entry.wcet.as_millis().to_string(),
            entry.desired_period.as_millis().to_string(),
            entry.max_period.as_millis().to_string(),
            fmt3(task.max_utilization()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_catalogue_entry() {
        let table = build_table();
        assert_eq!(table.len(), table1_entries().len());
        assert_eq!(table.len(), 6);
    }

    #[test]
    fn csv_round_trips_the_parameters() {
        let csv = build_table().to_csv();
        assert!(csv.contains("bro_network_monitor"));
        assert!(csv.contains("Tripwire"));
        // No stray commas from the function text (they would corrupt the CSV).
        for line in csv.lines() {
            assert_eq!(line.matches(',').count(), 6, "line {line}");
        }
    }
}
