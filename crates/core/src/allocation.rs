//! Allocation problems, results and errors shared by all allocation schemes.

use core::fmt;

use rt_core::{TaskId, TaskSet, Time};
use rt_partition::{CoreId, Partition, PartitionConfig};

use crate::security::{SecurityTaskId, SecurityTaskSet};

/// The input to an allocation scheme: the real-time workload, the security
/// workload, the platform size and the policy used to partition the
/// real-time tasks when the scheme has to do so itself.
#[derive(Debug, Clone)]
pub struct AllocationProblem {
    /// Real-time tasks (already schedulable as a set; the scheme partitions
    /// them).
    pub rt_tasks: TaskSet,
    /// Security tasks to place.
    pub security_tasks: SecurityTaskSet,
    /// Number of identical cores `M`.
    pub cores: usize,
    /// How real-time tasks are partitioned (best-fit with exact RTA admission
    /// by default, as in the paper's experiments).
    pub partition_config: PartitionConfig,
}

impl AllocationProblem {
    /// Creates a problem with the paper's default partitioning policy.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn new(rt_tasks: TaskSet, security_tasks: SecurityTaskSet, cores: usize) -> Self {
        assert!(cores > 0, "a platform needs at least one core");
        AllocationProblem {
            rt_tasks,
            security_tasks,
            cores,
            partition_config: PartitionConfig::paper_default(),
        }
    }

    /// Overrides the real-time partitioning policy.
    #[must_use]
    pub fn with_partition_config(mut self, config: PartitionConfig) -> Self {
        self.partition_config = config;
        self
    }

    /// Total utilisation of the real-time tasks plus the security tasks at
    /// their desired periods — the "total utilisation" swept on the x-axis of
    /// Figures 2 and 3.
    #[must_use]
    pub fn total_utilization(&self) -> f64 {
        self.rt_tasks.total_utilization() + self.security_tasks.max_total_utilization()
    }
}

/// Where one security task ended up: its core, granted period and resulting
/// tightness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecurityPlacement {
    /// Core hosting the security task.
    pub core: CoreId,
    /// Granted period `T_s`.
    pub period: Time,
    /// Tightness `η_s = T_s^des / T_s`.
    pub tightness: f64,
}

/// The output of an allocation scheme: the real-time partition it used and
/// one [`SecurityPlacement`] per security task.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    rt_partition: Partition,
    placements: Vec<SecurityPlacement>,
}

impl Allocation {
    /// Builds an allocation from its parts. `placements[i]` must correspond
    /// to `SecurityTaskId(i)`.
    #[must_use]
    pub fn new(rt_partition: Partition, placements: Vec<SecurityPlacement>) -> Self {
        Allocation {
            rt_partition,
            placements,
        }
    }

    /// The real-time partition used by the scheme.
    #[must_use]
    pub fn rt_partition(&self) -> &Partition {
        &self.rt_partition
    }

    /// Number of placed security tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// Whether no security tasks were placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Placement of one security task.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    #[must_use]
    pub fn placement(&self, id: SecurityTaskId) -> &SecurityPlacement {
        &self.placements[id.0]
    }

    /// Iterates over `(SecurityTaskId, &SecurityPlacement)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SecurityTaskId, &SecurityPlacement)> + '_ {
        self.placements
            .iter()
            .enumerate()
            .map(|(i, p)| (SecurityTaskId(i), p))
    }

    /// Ids of the security tasks placed on `core`.
    #[must_use]
    pub fn security_tasks_on(&self, core: CoreId) -> Vec<SecurityTaskId> {
        self.iter()
            .filter_map(|(id, p)| (p.core == core).then_some(id))
            .collect()
    }

    /// Cumulative weighted tightness `Σ ω_s · η_s` (the objective of Eq. 3).
    #[must_use]
    pub fn cumulative_tightness(&self, tasks: &SecurityTaskSet) -> f64 {
        self.iter()
            .map(|(id, p)| tasks[id].weight() * p.tightness)
            .sum()
    }

    /// Unweighted mean tightness across all placed security tasks
    /// (`0` for an empty allocation).
    #[must_use]
    pub fn mean_tightness(&self) -> f64 {
        if self.placements.is_empty() {
            0.0
        } else {
            self.placements.iter().map(|p| p.tightness).sum::<f64>() / self.placements.len() as f64
        }
    }

    /// Mean normalised period slack `(T^max − T)/T^max` over the placed
    /// security tasks — how far the granted periods stay, on average, from
    /// the point where monitoring becomes ineffective. `None` for an empty
    /// allocation.
    #[must_use]
    pub fn mean_period_slack(&self, tasks: &SecurityTaskSet) -> Option<f64> {
        if self.placements.is_empty() {
            return None;
        }
        let total: f64 = self
            .iter()
            .map(|(id, placement)| {
                let max = tasks[id].max_period().as_ticks() as f64;
                let granted = placement.period.as_ticks() as f64;
                (max - granted).max(0.0) / max
            })
            .sum();
        Some(total / self.placements.len() as f64)
    }

    /// Achieved-vs-desired monitoring frequency ratio
    /// `Σ 1/T_s / Σ 1/T_s^des ∈ (0, 1]` — `1` means every check runs at the
    /// rate the designer asked for. `None` for an empty allocation.
    #[must_use]
    pub fn frequency_ratio(&self, tasks: &SecurityTaskSet) -> Option<f64> {
        if self.placements.is_empty() {
            return None;
        }
        let (achieved, desired) = self.iter().fold((0.0, 0.0), |(a, d), (id, p)| {
            (
                a + 1.0 / p.period.as_ticks() as f64,
                d + 1.0 / tasks[id].desired_period().as_ticks() as f64,
            )
        });
        Some(achieved / desired)
    }

    /// The granted period of one security task.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    #[must_use]
    pub fn period_of(&self, id: SecurityTaskId) -> Time {
        self.placements[id.0].period
    }

    /// The hosting core of one security task.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    #[must_use]
    pub fn core_of(&self, id: SecurityTaskId) -> CoreId {
        self.placements[id.0].core
    }
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, p) in self.iter() {
            writeln!(
                f,
                "{id} -> {} (T = {}, η = {:.3})",
                p.core, p.period, p.tightness
            )?;
        }
        Ok(())
    }
}

/// Errors produced by allocation schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocationError {
    /// The real-time tasks themselves could not be partitioned onto the
    /// available cores.
    RtPartitionFailed {
        /// The real-time task that could not be placed.
        task: TaskId,
        /// Number of cores that were available to the real-time workload.
        cores: usize,
    },
    /// A security task could not be placed on any core with a feasible
    /// period — the combined workload is unschedulable under this scheme
    /// (Algorithm 1, line 9).
    SecurityUnschedulable {
        /// The offending security task, when the scheme can identify one.
        task: Option<SecurityTaskId>,
    },
    /// The scheme requires more cores than the platform provides (e.g.
    /// SingleCore needs at least two: one dedicated to security, one for the
    /// real-time tasks).
    InsufficientCores {
        /// Cores available.
        available: usize,
        /// Cores required by the scheme.
        required: usize,
    },
    /// The exhaustive scheme was asked to enumerate more assignments than its
    /// safety limit allows.
    ProblemTooLarge {
        /// Number of assignments that enumeration would require.
        assignments: u128,
        /// The enumeration limit.
        limit: u128,
    },
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::RtPartitionFailed { task, cores } => write!(
                f,
                "real-time task {task} cannot be partitioned onto {cores} core(s)"
            ),
            AllocationError::SecurityUnschedulable { task: Some(id) } => {
                write!(f, "security task {id} cannot be scheduled on any core")
            }
            AllocationError::SecurityUnschedulable { task: None } => {
                write!(f, "no feasible allocation exists for the security tasks")
            }
            AllocationError::InsufficientCores {
                available,
                required,
            } => write!(
                f,
                "scheme requires at least {required} cores but only {available} are available"
            ),
            AllocationError::ProblemTooLarge { assignments, limit } => write!(
                f,
                "exhaustive search over {assignments} assignments exceeds the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for AllocationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::SecurityTask;
    use rt_core::RtTask;

    fn sample_problem() -> AllocationProblem {
        let rt: TaskSet =
            vec![RtTask::implicit_deadline(Time::from_millis(10), Time::from_millis(100)).unwrap()]
                .into_iter()
                .collect();
        let sec: SecurityTaskSet = vec![SecurityTask::new(
            Time::from_millis(10),
            Time::from_millis(1000),
            Time::from_millis(10_000),
        )
        .unwrap()]
        .into_iter()
        .collect();
        AllocationProblem::new(rt, sec, 2)
    }

    #[test]
    fn problem_total_utilization_combines_both_workloads() {
        let p = sample_problem();
        assert!((p.total_utilization() - 0.11).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_problem_panics() {
        let p = sample_problem();
        let _ = AllocationProblem::new(p.rt_tasks, p.security_tasks, 0);
    }

    #[test]
    fn allocation_accessors_and_metrics() {
        let partition = Partition::new(1, 2);
        let placements = vec![
            SecurityPlacement {
                core: CoreId(0),
                period: Time::from_millis(1000),
                tightness: 1.0,
            },
            SecurityPlacement {
                core: CoreId(1),
                period: Time::from_millis(2000),
                tightness: 0.5,
            },
        ];
        let alloc = Allocation::new(partition, placements);
        assert_eq!(alloc.len(), 2);
        assert!(!alloc.is_empty());
        assert_eq!(alloc.core_of(SecurityTaskId(1)), CoreId(1));
        assert_eq!(alloc.period_of(SecurityTaskId(0)), Time::from_millis(1000));
        assert_eq!(alloc.security_tasks_on(CoreId(0)), vec![SecurityTaskId(0)]);
        assert!((alloc.mean_tightness() - 0.75).abs() < 1e-12);

        let tasks: SecurityTaskSet = vec![
            SecurityTask::new(
                Time::from_millis(1),
                Time::from_millis(1000),
                Time::from_millis(10_000),
            )
            .unwrap()
            .with_weight(2.0)
            .unwrap(),
            SecurityTask::new(
                Time::from_millis(1),
                Time::from_millis(1000),
                Time::from_millis(10_000),
            )
            .unwrap(),
        ]
        .into_iter()
        .collect();
        assert!((alloc.cumulative_tightness(&tasks) - 2.5).abs() < 1e-12);
        assert!(alloc.to_string().contains("σ0"));

        // Period slack: task 0 at 1000/10000 leaves 0.9, task 1 at
        // 2000/10000 leaves 0.8 → mean 0.85. Frequency ratio:
        // (1/1000 + 1/2000) / (1/1000 + 1/1000) = 0.75.
        assert!((alloc.mean_period_slack(&tasks).unwrap() - 0.85).abs() < 1e-12);
        assert!((alloc.frequency_ratio(&tasks).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_allocation_has_no_period_metrics() {
        let alloc = Allocation::new(Partition::new(0, 2), Vec::new());
        let tasks = SecurityTaskSet::empty();
        assert_eq!(alloc.mean_period_slack(&tasks), None);
        assert_eq!(alloc.frequency_ratio(&tasks), None);
        assert_eq!(alloc.mean_tightness(), 0.0);
    }

    #[test]
    fn error_display_variants() {
        let errors = [
            AllocationError::RtPartitionFailed {
                task: TaskId(3),
                cores: 2,
            },
            AllocationError::SecurityUnschedulable {
                task: Some(SecurityTaskId(1)),
            },
            AllocationError::SecurityUnschedulable { task: None },
            AllocationError::InsufficientCores {
                available: 1,
                required: 2,
            },
            AllocationError::ProblemTooLarge {
                assignments: 1 << 40,
                limit: 1 << 24,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
