//! The HYDRA allocation algorithm (Algorithm 1 of the paper).
//!
//! HYDRA walks the security tasks from the highest to the lowest priority
//! (ascending `T^max`). For each task it solves the period-adaptation problem
//! of Eq. (7) on every core — against the real-time tasks partitioned onto
//! that core and the higher-priority security tasks already placed there —
//! and assigns the task to the core yielding the best tightness, fixing its
//! period. If some task is infeasible on every core the whole task set is
//! reported unschedulable.

use rt_core::TaskSet;
use rt_partition::{partition_tasks, CoreId, Partition};

use crate::allocation::{Allocation, AllocationError, AllocationProblem, SecurityPlacement};
use crate::allocator::Allocator;
use crate::interference::{rt_interference_on, security_interference, InterferenceBound};
use crate::period::{adapt_period, PeriodChoice};
use crate::security::{SecurityTaskId, SecurityTaskSet};

/// How HYDRA picks a core among those whose period-adaptation problem is
/// feasible (Algorithm 1, line 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoreSelection {
    /// The core giving the maximum tightness for the task being placed (the
    /// rule of the paper). Ties — common at low utilisation, where several
    /// cores can grant the desired period — are broken towards the core with
    /// the least interfering load, then the lower core index; this keeps the
    /// security tasks spread out, which is what produces the faster detection
    /// times of Figure 1.
    #[default]
    MaxTightness,
    /// The first (lowest-indexed) feasible core. An ablation variant: cheaper
    /// to evaluate but blind to the achievable tightness.
    FirstFeasible,
    /// The feasible core with the smallest total interference slope
    /// (utilisation) — a load-balancing ablation variant.
    LeastLoaded,
}

/// The HYDRA design-space exploration algorithm.
///
/// # Example
///
/// ```
/// use hydra_core::allocator::{Allocator, HydraAllocator};
/// use hydra_core::{AllocationProblem, catalog, casestudy};
///
/// # fn main() -> Result<(), hydra_core::AllocationError> {
/// let problem = AllocationProblem::new(
///     casestudy::uav_rt_tasks(),
///     catalog::table1_tasks(),
///     4,
/// );
/// let allocation = HydraAllocator::default().allocate(&problem)?;
/// assert_eq!(allocation.len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HydraAllocator {
    selection: CoreSelection,
}

impl HydraAllocator {
    /// Creates the allocator with the paper's core-selection rule
    /// (maximum tightness).
    #[must_use]
    pub fn new() -> Self {
        HydraAllocator::default()
    }

    /// Uses a different core-selection rule (ablation).
    #[must_use]
    pub fn with_selection(selection: CoreSelection) -> Self {
        HydraAllocator { selection }
    }

    /// The configured core-selection rule.
    #[must_use]
    pub fn selection(&self) -> CoreSelection {
        self.selection
    }

    /// Runs Algorithm 1 against an already-partitioned real-time workload.
    ///
    /// This is the entry point matching the paper's formulation, where the
    /// real-time partition `I = [I_r^m]` is an input. The convenience
    /// [`Allocator::allocate`] implementation partitions the real-time tasks
    /// first and then calls this.
    ///
    /// # Errors
    ///
    /// Returns [`AllocationError::SecurityUnschedulable`] if some security
    /// task has no feasible period on any core.
    pub fn allocate_with_partition(
        &self,
        rt_tasks: &TaskSet,
        rt_partition: &Partition,
        security_tasks: &SecurityTaskSet,
    ) -> Result<Allocation, AllocationError> {
        let cores = rt_partition.cores();
        // Pre-compute the static real-time interference per core.
        let rt_bounds: Vec<InterferenceBound> = (0..cores)
            .map(|m| rt_interference_on(rt_tasks, rt_partition, CoreId(m)))
            .collect();

        // Higher-priority security tasks already placed, per core.
        let mut placed: Vec<Vec<(SecurityTaskId, PeriodChoice)>> = vec![Vec::new(); cores];
        let mut placements: Vec<Option<SecurityPlacement>> = vec![None; security_tasks.len()];

        for &sec_id in security_tasks.priority_order() {
            let task = &security_tasks[sec_id];
            let mut best: Option<(CoreId, PeriodChoice, f64)> = None;
            for m in 0..cores {
                let core = CoreId(m);
                let sec_bound = security_interference(
                    placed[m]
                        .iter()
                        .map(|(id, choice)| (&security_tasks[*id], choice.period)),
                );
                let bound = rt_bounds[m].plus(&sec_bound);
                let Some(choice) = adapt_period(task, &bound) else {
                    continue;
                };
                let candidate_load = bound.slope;
                let better = match (&best, self.selection) {
                    (None, _) => true,
                    (Some(_), CoreSelection::FirstFeasible) => false,
                    (Some((_, incumbent, incumbent_load)), CoreSelection::MaxTightness) => {
                        choice.tightness > incumbent.tightness + 1e-12
                            || ((choice.tightness - incumbent.tightness).abs() <= 1e-12
                                && candidate_load < incumbent_load - 1e-12)
                    }
                    (Some((_, _, incumbent_load)), CoreSelection::LeastLoaded) => {
                        candidate_load < incumbent_load - 1e-12
                    }
                };
                if better {
                    best = Some((core, choice, candidate_load));
                }
            }
            match best {
                Some((core, choice, _)) => {
                    placed[core.0].push((sec_id, choice));
                    placements[sec_id.0] = Some(SecurityPlacement {
                        core,
                        period: choice.period,
                        tightness: choice.tightness,
                    });
                }
                None => return Err(AllocationError::SecurityUnschedulable { task: Some(sec_id) }),
            }
        }

        let placements: Vec<SecurityPlacement> = placements
            .into_iter()
            .map(|p| p.expect("every security task was placed or we returned early"))
            .collect();
        Ok(Allocation::new(rt_partition.clone(), placements))
    }
}

impl Allocator for HydraAllocator {
    fn name(&self) -> &'static str {
        "HYDRA"
    }

    fn allocate(&self, problem: &AllocationProblem) -> Result<Allocation, AllocationError> {
        let rt_partition =
            partition_tasks(&problem.rt_tasks, problem.cores, &problem.partition_config).map_err(
                |e| AllocationError::RtPartitionFailed {
                    task: e.task,
                    cores: problem.cores,
                },
            )?;
        self.allocate_with_partition(&problem.rt_tasks, &rt_partition, &problem.security_tasks)
    }

    fn allocate_with_rt_partition(
        &self,
        problem: &AllocationProblem,
        rt_partition: &Partition,
    ) -> Result<Allocation, AllocationError> {
        self.allocate_with_partition(&problem.rt_tasks, rt_partition, &problem.security_tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::plan_is_feasible;
    use crate::security::SecurityTask;
    use rt_core::{RtTask, Time};

    fn rt(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    fn sec(c_ms: u64, tdes_ms: u64, tmax_ms: u64) -> SecurityTask {
        SecurityTask::new(
            Time::from_millis(c_ms),
            Time::from_millis(tdes_ms),
            Time::from_millis(tmax_ms),
        )
        .unwrap()
    }

    fn verify_allocation(problem: &AllocationProblem, allocation: &Allocation) {
        // Every security task placed on a valid core with a period within its
        // bounds, and the per-core plans satisfy Eq. (6).
        for core in allocation.rt_partition().core_ids() {
            let rt_bound = rt_interference_on(&problem.rt_tasks, allocation.rt_partition(), core);
            let mut ids = allocation.security_tasks_on(core);
            ids.sort_by_key(|&id| (problem.security_tasks[id].max_period(), id.0));
            let tasks: Vec<&SecurityTask> =
                ids.iter().map(|&id| &problem.security_tasks[id]).collect();
            let periods: Vec<Time> = ids.iter().map(|&id| allocation.period_of(id)).collect();
            assert!(
                plan_is_feasible(&tasks, &rt_bound, &periods),
                "core {core} hosts an infeasible security plan"
            );
        }
    }

    #[test]
    fn uav_case_study_allocates_on_two_cores() {
        let problem = AllocationProblem::new(
            crate::casestudy::uav_rt_tasks(),
            crate::catalog::table1_tasks(),
            2,
        );
        let allocation = HydraAllocator::default().allocate(&problem).unwrap();
        assert_eq!(allocation.len(), 6);
        verify_allocation(&problem, &allocation);
        // With two cores and a light RT workload every task should reach a
        // decent tightness.
        assert!(allocation.mean_tightness() > 0.5);
    }

    #[test]
    fn more_cores_never_reduce_cumulative_tightness_on_case_study() {
        let sec_tasks = crate::catalog::table1_tasks();
        let mut previous = 0.0;
        for cores in [2usize, 4, 8] {
            let problem =
                AllocationProblem::new(crate::casestudy::uav_rt_tasks(), sec_tasks.clone(), cores);
            let allocation = HydraAllocator::default().allocate(&problem).unwrap();
            let tightness = allocation.cumulative_tightness(&sec_tasks);
            assert!(
                tightness + 1e-9 >= previous,
                "tightness dropped from {previous} to {tightness} with {cores} cores"
            );
            previous = tightness;
        }
    }

    #[test]
    fn empty_security_set_yields_empty_allocation() {
        let problem = AllocationProblem::new(
            crate::casestudy::uav_rt_tasks(),
            SecurityTaskSet::empty(),
            2,
        );
        let allocation = HydraAllocator::default().allocate(&problem).unwrap();
        assert!(allocation.is_empty());
    }

    #[test]
    fn unpartitionable_rt_workload_is_reported() {
        let rt_tasks: TaskSet = vec![rt(9, 10), rt(9, 10), rt(9, 10)].into_iter().collect();
        let problem = AllocationProblem::new(rt_tasks, SecurityTaskSet::empty(), 2);
        assert!(matches!(
            HydraAllocator::default().allocate(&problem),
            Err(AllocationError::RtPartitionFailed { cores: 2, .. })
        ));
    }

    #[test]
    fn saturated_cores_make_security_unschedulable() {
        // Two cores ~90% busy with RT tasks; a demanding security task cannot
        // fit anywhere.
        let rt_tasks: TaskSet = vec![rt(9, 10), rt(9, 10)].into_iter().collect();
        let sec_tasks: SecurityTaskSet = vec![sec(500, 1000, 3000)].into_iter().collect();
        let problem = AllocationProblem::new(rt_tasks, sec_tasks, 2);
        assert!(matches!(
            HydraAllocator::default().allocate(&problem),
            Err(AllocationError::SecurityUnschedulable { task: Some(_) })
        ));
    }

    #[test]
    fn higher_priority_tasks_get_their_desired_period_first() {
        // One lightly-loaded core: the highest-priority security task should
        // achieve tightness 1 while later ones may be stretched.
        let rt_tasks: TaskSet = vec![rt(40, 100)].into_iter().collect();
        let sec_tasks: SecurityTaskSet = vec![
            sec(300, 1000, 8_000), // lower priority (larger T^max)
            sec(200, 500, 4_000),  // higher priority
        ]
        .into_iter()
        .collect();
        let problem = AllocationProblem::new(rt_tasks, sec_tasks.clone(), 1);
        let allocation = HydraAllocator::default().allocate(&problem).unwrap();
        let hi = allocation.placement(SecurityTaskId(1));
        let lo = allocation.placement(SecurityTaskId(0));
        assert!(hi.tightness >= lo.tightness - 1e-12);
        verify_allocation(&problem, &allocation);
    }

    #[test]
    fn max_tightness_selection_spreads_tasks_across_idle_cores() {
        // Two identical, heavily-interfering security tasks and two idle
        // cores: the second task should avoid the core already hosting the
        // first one because its tightness is better on the empty core.
        let rt_tasks = TaskSet::empty();
        let sec_tasks: SecurityTaskSet = vec![sec(600, 1000, 10_000), sec(600, 1000, 10_000)]
            .into_iter()
            .collect();
        let problem = AllocationProblem::new(rt_tasks, sec_tasks, 2);
        let allocation = HydraAllocator::default().allocate(&problem).unwrap();
        assert_ne!(
            allocation.core_of(SecurityTaskId(0)),
            allocation.core_of(SecurityTaskId(1))
        );
        assert!((allocation.mean_tightness() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn first_feasible_selection_piles_onto_core_zero() {
        let rt_tasks = TaskSet::empty();
        let sec_tasks: SecurityTaskSet = vec![sec(100, 1000, 10_000), sec(100, 1000, 10_000)]
            .into_iter()
            .collect();
        let problem = AllocationProblem::new(rt_tasks, sec_tasks, 2);
        let allocation = HydraAllocator::with_selection(CoreSelection::FirstFeasible)
            .allocate(&problem)
            .unwrap();
        assert_eq!(allocation.core_of(SecurityTaskId(0)), CoreId(0));
        assert_eq!(allocation.core_of(SecurityTaskId(1)), CoreId(0));
    }

    #[test]
    fn least_loaded_selection_avoids_the_busy_core() {
        // Core 0 busy with RT work, core 1 idle: the least-loaded rule must
        // put the security task on core 1 even though both are feasible.
        let rt_tasks: TaskSet = vec![rt(50, 100)].into_iter().collect();
        let sec_tasks: SecurityTaskSet = vec![sec(10, 1000, 10_000)].into_iter().collect();
        let problem = AllocationProblem::new(rt_tasks, sec_tasks, 2);
        let allocation = HydraAllocator::with_selection(CoreSelection::LeastLoaded)
            .allocate(&problem)
            .unwrap();
        let rt_core = allocation
            .rt_partition()
            .core_of(rt_core::TaskId(0))
            .unwrap();
        assert_ne!(allocation.core_of(SecurityTaskId(0)), rt_core);
    }

    #[test]
    fn allocator_reports_its_name() {
        assert_eq!(HydraAllocator::default().name(), "HYDRA");
        assert_eq!(
            HydraAllocator::with_selection(CoreSelection::LeastLoaded).selection(),
            CoreSelection::LeastLoaded
        );
    }
}
