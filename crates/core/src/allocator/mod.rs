//! Allocation schemes: HYDRA, the SingleCore baseline and the exhaustive
//! Optimal baseline.
//!
//! All schemes implement the [`Allocator`] trait so the experiment harness
//! and the examples can swap them freely.

mod hydra;
mod optimal;
mod single_core;

pub use hydra::{CoreSelection, HydraAllocator};
pub use optimal::{OptimalAllocator, SearchStats};
pub use single_core::SingleCoreAllocator;

use rt_partition::Partition;

use crate::allocation::{Allocation, AllocationError, AllocationProblem};

/// A scheme that decides where security tasks run and with what period.
pub trait Allocator {
    /// Short human-readable name of the scheme (used in experiment output).
    fn name(&self) -> &'static str;

    /// Allocates the security tasks of `problem` onto its cores.
    ///
    /// # Errors
    ///
    /// Returns an [`AllocationError`] when the real-time workload cannot be
    /// partitioned or no feasible placement/period exists for some security
    /// task under this scheme.
    fn allocate(&self, problem: &AllocationProblem) -> Result<Allocation, AllocationError>;

    /// Allocates against an **already-partitioned** real-time workload,
    /// skipping this scheme's own `partition_tasks` call.
    ///
    /// `rt_partition` must cover `problem.rt_tasks` on `problem.cores` cores
    /// and be the partition this scheme would have computed itself — for most
    /// schemes the full-platform partition under `problem.partition_config`;
    /// for [`SingleCoreAllocator`] the `M − 1`-core partition re-expressed
    /// over the full platform with the dedicated security core left empty.
    /// Harnesses that sweep several schemes over the same problem use this to
    /// partition once and share the result (see `rt-dse`'s `MemoCache`).
    ///
    /// # Errors
    ///
    /// Returns an [`AllocationError`] when no feasible placement/period
    /// exists for some security task under this scheme.
    fn allocate_with_rt_partition(
        &self,
        problem: &AllocationProblem,
        rt_partition: &Partition,
    ) -> Result<Allocation, AllocationError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_trait_is_object_safe() {
        fn assert_object_safe(_: &dyn Allocator) {}
        assert_object_safe(&HydraAllocator::default());
        assert_object_safe(&SingleCoreAllocator::default());
        assert_object_safe(&OptimalAllocator::default());
    }

    #[test]
    fn allocator_names_are_distinct() {
        let names = [
            HydraAllocator::default().name(),
            SingleCoreAllocator::default().name(),
            OptimalAllocator::default().name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
