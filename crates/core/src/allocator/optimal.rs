//! The "Optimal" baseline (Section IV-B.2), as a branch-and-bound search.
//!
//! For small instances the paper compares HYDRA against an exhaustive search:
//! every one of the `M^{N_S}` assignments of security tasks to cores is
//! enumerated, and for each assignment the whole period vector is chosen to
//! maximise the cumulative weighted tightness (a joint convex/geometric
//! program in the paper; the coordinate-ascent refinement of
//! [`crate::joint`] here). The assignment with the best cumulative tightness
//! wins.
//!
//! This module replaces the plain enumeration with a **branch-and-bound**
//! search that returns the *identical* allocation while visiting only a
//! fraction of the assignments:
//!
//! * tasks are branched lowest priority first and cores in ascending index,
//!   which makes the depth-first search visit complete assignments in
//!   exactly the order of the old mixed-radix enumeration — so keeping the
//!   first strict maximum reproduces the exhaustive tie-breaking bit for
//!   bit;
//! * every partial assignment carries an **admissible upper bound**: each
//!   placed task's achievable tightness is bounded by relaxing all of its
//!   higher-priority neighbours to their maximum periods (the
//!   unconstrained-period relaxation of Eq. 5 — less interference can only
//!   raise tightness, and the bound's interference terms accumulate in the
//!   same order as the evaluator's, so the domination is exact in floating
//!   point, not just in exact arithmetic), while unplaced tasks count their
//!   full weight; subtrees whose bound cannot beat the incumbent are cut;
//! * the per-task relaxed bounds are maintained **incrementally on
//!   push/pop**: placing a task re-tightens only its own core's residents
//!   (placement order guarantees those are exactly its lower-priority
//!   neighbours — O(residents) closed-form solves, every other core
//!   untouched), and un-placing restores the snapshotted values bit-for-bit
//!   from an undo log instead of re-solving;
//! * **symmetry breaking**: when cores 0 and 1 carry bit-identical
//!   real-time bounds and are both still empty, the subtree that touches
//!   core 1 first is the mirror of an earlier-enumerated one whose total is
//!   bit-equal (the swapped groups are the first two terms of the leaf
//!   total, and float addition commutes), so it is skipped wholesale; later
//!   core pairs stay in the search because their mirrors reassociate the
//!   floating-point fold and could flip an ulp-level tie;
//! * per-core period optimisations are **memoised** by `(core, resident
//!   set)`, since the depth-first search re-encounters the same per-core
//!   group across many assignments that differ elsewhere.
//!
//! Because the per-assignment period optimisation starts from the greedy
//! (HYDRA-style) period vector and only ever improves it, the result of this
//! allocator is **never worse than HYDRA** on the same problem — the
//! invariant behind Figure 3.

// plan_memo is a point-lookup cache on the hot search path, never iterated,
// so hash order cannot reach output bytes (allowlisted for lint rule D001).
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;

use rt_core::Time;
use rt_partition::{partition_tasks, CoreId, Partition};

use crate::allocation::{Allocation, AllocationError, AllocationProblem, SecurityPlacement};
use crate::allocator::Allocator;
use crate::interference::{rt_interference_on, InterferenceBound};
use crate::joint::{optimize_core_periods, CorePlan, JointOptions};
use crate::security::{SecurityTask, SecurityTaskId};

/// Safety margin of the bound-based prune: a subtree is cut only when its
/// admissible upper bound trails the incumbent by more than this. The
/// per-task bounds dominate the evaluator's values exactly, but the *sums*
/// are grouped differently (per core vs. per slot), so cross-assignment
/// comparisons can differ by a few ulps; 1e-9 is ~4 orders of magnitude
/// above that while far below any real tightness gap.
const PRUNE_MARGIN: f64 = 1e-9;

/// Statistics of one branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Complete assignments whose period optimisation actually ran.
    pub visited: u128,
    /// Assignments skipped by bound, feasibility or symmetry pruning.
    pub pruned: u128,
    /// Size of the full assignment space, `M^{N_S}`.
    pub total: u128,
}

impl SearchStats {
    /// Fraction of the assignment space that was pruned away, in `[0, 1]`.
    #[must_use]
    pub fn prune_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.pruned as f64 / self.total as f64
        }
    }
}

/// Branch-and-bound assignment search with joint period optimisation.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalAllocator {
    joint: JointOptions,
    /// Safety limit on the size of the assignment space.
    max_assignments: u128,
}

impl Default for OptimalAllocator {
    fn default() -> Self {
        OptimalAllocator {
            joint: JointOptions::default(),
            max_assignments: 1 << 22,
        }
    }
}

impl OptimalAllocator {
    /// Creates the allocator with default joint-optimisation options and an
    /// assignment-space limit of about four million.
    #[must_use]
    pub fn new() -> Self {
        OptimalAllocator::default()
    }

    /// Overrides the joint period-optimisation options (e.g.
    /// [`JointOptions::greedy_only`] for the ablation that isolates the value
    /// of period refinement from the value of exhaustive assignment search).
    #[must_use]
    pub fn with_joint_options(mut self, joint: JointOptions) -> Self {
        self.joint = joint;
        self
    }

    /// Overrides the assignment-space safety limit.
    #[must_use]
    pub fn with_assignment_limit(mut self, limit: u128) -> Self {
        self.max_assignments = limit;
        self
    }

    /// [`Allocator::allocate`] plus the search statistics.
    ///
    /// # Errors
    ///
    /// Same as [`Allocator::allocate`].
    pub fn allocate_with_stats(
        &self,
        problem: &AllocationProblem,
    ) -> Result<(Allocation, SearchStats), AllocationError> {
        let rt_partition =
            partition_tasks(&problem.rt_tasks, problem.cores, &problem.partition_config).map_err(
                |e| AllocationError::RtPartitionFailed {
                    task: e.task,
                    cores: problem.cores,
                },
            )?;
        self.allocate_with_rt_partition_stats(problem, &rt_partition)
    }

    /// [`Allocator::allocate_with_rt_partition`] plus the search statistics.
    ///
    /// # Errors
    ///
    /// Same as [`Allocator::allocate_with_rt_partition`].
    pub fn allocate_with_rt_partition_stats(
        &self,
        problem: &AllocationProblem,
        rt_partition: &Partition,
    ) -> Result<(Allocation, SearchStats), AllocationError> {
        let cores = problem.cores;
        let n = problem.security_tasks.len();
        if n == 0 {
            return Ok((
                Allocation::new(rt_partition.clone(), Vec::new()),
                SearchStats::default(),
            ));
        }

        let total = (cores as u128).checked_pow(n as u32).unwrap_or(u128::MAX);
        if total > self.max_assignments || (cores >= 2 && n > 127) {
            return Err(AllocationError::ProblemTooLarge {
                assignments: total,
                limit: self.max_assignments,
            });
        }

        let rt_bounds: Vec<InterferenceBound> = (0..cores)
            .map(|m| rt_interference_on(&problem.rt_tasks, rt_partition, CoreId(m)))
            .collect();
        // Security tasks in priority order (highest first); per-core groups
        // gathered over this order come out already priority-sorted.
        let priority_order = problem.security_tasks.ids_by_priority();

        if cores == 1 {
            // A single core admits exactly one assignment — the whole set on
            // core 0 — so the search degenerates to one period optimisation
            // (this also sidesteps the u128 resident bitmasks, whose width
            // only covers task counts reachable with `cores >= 2` under the
            // assignment limit).
            let tasks: Vec<&SecurityTask> = priority_order
                .iter()
                .map(|&id| &problem.security_tasks[id])
                .collect();
            let stats = SearchStats {
                visited: 1,
                pruned: 0,
                total,
            };
            return match optimize_core_periods(&tasks, &rt_bounds[0], &self.joint) {
                Some(plan) => {
                    let mut placements = vec![None; n];
                    for (rank, &id) in priority_order.iter().enumerate() {
                        let period = plan.periods[rank];
                        placements[id.0] = Some(SecurityPlacement {
                            core: CoreId(0),
                            period,
                            tightness: problem.security_tasks[id].tightness(period),
                        });
                    }
                    let placements: Vec<SecurityPlacement> = placements
                        .into_iter()
                        .map(|p| p.expect("the single assignment placed every task"))
                        .collect();
                    Ok((Allocation::new(rt_partition.clone(), placements), stats))
                }
                None => Err(AllocationError::SecurityUnschedulable { task: None }),
            };
        }

        let mut search = Search::new(problem, &self.joint, priority_order, &rt_bounds, cores);
        if cores > 0 {
            search.descend(n - 1);
        }
        let stats = SearchStats {
            visited: search.visited,
            pruned: total - search.visited,
            total,
        };
        debug_assert_eq!(search.visited + search.pruned_subtrees, total);

        match search.best {
            Some((_, placements)) => Ok((Allocation::new(rt_partition.clone(), placements), stats)),
            None => Err(AllocationError::SecurityUnschedulable { task: None }),
        }
    }
}

/// The branch-and-bound state. Slots index `priority_order` (slot 0 = the
/// highest-priority task); the search assigns slots from `n − 1` down to 0
/// with cores in ascending order, which is exactly the mixed-radix
/// enumeration order of the old exhaustive search (slot 0 is the least
/// significant digit), so "first strict maximum wins" reproduces its
/// tie-breaking.
struct Search<'a> {
    problem: &'a AllocationProblem,
    joint: &'a JointOptions,
    priority_order: &'a [SecurityTaskId],
    rt_bounds: &'a [InterferenceBound],
    cores: usize,
    n: usize,
    /// Whether every weight is exactly 1.0 — then tightness-1 ties are exact
    /// floating-point integers and tied subtrees can be cut.
    unit_weights: bool,
    /// Per slot: the task's objective weight.
    weights: Vec<f64>,
    /// `prefix_weight[s]` = Σ weights of slots `< s` (the still-unassigned
    /// suffix of the search when slot `s` was just placed).
    prefix_weight: Vec<f64>,
    /// `pow[k]` = `cores^k`: the number of assignments below a node with `k`
    /// unassigned slots.
    pow: Vec<u128>,
    /// Whether cores 0 and 1 carry bit-identical real-time interference
    /// bounds. Only this pair is eligible for the symmetry skip: swapping
    /// the contents of the first two cores exchanges the *first two* terms
    /// of the leaf evaluator's left-to-right total (float addition is
    /// commutative, so the mirror's total is bit-equal), whereas mirroring
    /// any later pair reassociates the fold and can move the total by an
    /// ulp — enough to flip the exhaustive search's strict-maximum
    /// tie-break.
    sym01: bool,
    /// Per slot: the assigned core (valid for currently-placed slots).
    assignment: Vec<usize>,
    /// Per core: placed slots, in placement order (descending slot number =
    /// ascending priority).
    residents: Vec<Vec<usize>>,
    /// Per core: bitmask of placed slots — the per-core plan memo key.
    core_mask: Vec<u128>,
    /// Per placed slot: admissible upper bound on its achievable tightness.
    eta_hat: Vec<f64>,
    /// Undo log of `(slot, eta_hat)` snapshots taken before each placement,
    /// so un-placing restores the residents' bounds bit-for-bit without
    /// re-solving them.
    eta_trail: Vec<(usize, f64)>,
    /// `(core, resident mask) → period plan` — the same group reappears
    /// across many assignments that differ on other cores.
    plan_memo: HashMap<(usize, u128), Option<CorePlan>>,
    /// Incumbent: best cumulative weighted tightness and its placements.
    best: Option<(f64, Vec<SecurityPlacement>)>,
    visited: u128,
    pruned_subtrees: u128,
    /// Leaf scratch buffers.
    ids_scratch: Vec<SecurityTaskId>,
    tasks_scratch: Vec<&'a SecurityTask>,
}

impl<'a> Search<'a> {
    fn new(
        problem: &'a AllocationProblem,
        joint: &'a JointOptions,
        priority_order: &'a [SecurityTaskId],
        rt_bounds: &'a [InterferenceBound],
        cores: usize,
    ) -> Self {
        let n = priority_order.len();
        let weights: Vec<f64> = priority_order
            .iter()
            .map(|&id| problem.security_tasks[id].weight())
            .collect();
        let mut prefix_weight = vec![0.0; n + 1];
        for s in 0..n {
            prefix_weight[s + 1] = prefix_weight[s] + weights[s];
        }
        let mut pow = vec![1u128; n + 1];
        for k in 1..=n {
            pow[k] = pow[k - 1].saturating_mul(cores as u128);
        }
        let sym01 = cores >= 2 && rt_bounds[0] == rt_bounds[1];
        Search {
            problem,
            joint,
            priority_order,
            rt_bounds,
            cores,
            n,
            unit_weights: weights.iter().all(|&w| w == 1.0),
            weights,
            prefix_weight,
            pow,
            sym01,
            assignment: vec![0; n],
            residents: vec![Vec::new(); cores],
            core_mask: vec![0; cores],
            eta_hat: vec![0.0; n],
            eta_trail: Vec::new(),
            plan_memo: HashMap::new(),
            best: None,
            visited: 0,
            pruned_subtrees: 0,
            ids_scratch: Vec::new(),
            tasks_scratch: Vec::new(),
        }
    }

    /// The admissible per-task tightness bound: the task's best achievable
    /// tightness under `bound` — interference from its core's real-time
    /// tasks plus the already-placed (lower-priority → later-placed
    /// higher-priority) residents relaxed to their maximum periods. Uses the
    /// same closed form, `ceil` rounding and clamp as the greedy evaluator,
    /// so "less interference ⇒ no smaller tightness" holds exactly in
    /// floating point.
    fn relaxed_eta(&self, slot: usize, bound: &InterferenceBound) -> Option<f64> {
        let task = &self.problem.security_tasks[self.priority_order[slot]];
        let lower = task.desired_period().as_ticks() as f64;
        let upper = task.max_period().as_ticks() as f64;
        let a = task.wcet().as_ticks() as f64 + bound.constant;
        let period =
            gp_solver::scalar::minimize_linear_fractional(lower, upper, a, bound.slope).value()?;
        Some(task.tightness(Time::from_ticks(period.ceil() as u64)))
    }

    /// Recomputes the relaxed tightness bound of every resident of core `m`
    /// from the resident stack. Interference terms accumulate in ascending
    /// slot order — the exact order the greedy evaluator uses — which keeps
    /// the bound's floating-point domination rigorous. Returns `false` when
    /// some resident's relaxed problem is infeasible: then *no* completion
    /// of the current partial assignment is feasible.
    fn refresh_core(&mut self, m: usize) -> bool {
        let residents = std::mem::take(&mut self.residents[m]);
        let mut ok = true;
        for (i, &slot) in residents.iter().enumerate() {
            let mut bound = self.rt_bounds[m];
            // Higher-priority residents were placed later (positions > i);
            // reversing the suffix yields ascending slot order.
            for j in (i + 1..residents.len()).rev() {
                let hp = &self.problem.security_tasks[self.priority_order[residents[j]]];
                bound.add_task(hp.wcet(), hp.max_period());
            }
            match self.relaxed_eta(slot, &bound) {
                Some(eta) => self.eta_hat[slot] = eta,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        self.residents[m] = residents;
        ok
    }

    /// Whether the subtree under the just-placed `slot` cannot improve on
    /// the incumbent. Cuts strictly-dominated subtrees with a float-safety
    /// margin; exact ties are additionally cut when every bound term is an
    /// exact float (all placed tasks perfect, unit weights) — tied
    /// assignments deeper in the enumeration order never replace the
    /// incumbent anyway.
    fn prunable(&self, slot: usize) -> bool {
        let Some((best, _)) = &self.best else {
            return false;
        };
        let mut assigned = 0.0;
        let mut perfect = true;
        for s in slot..self.n {
            let eta = self.eta_hat[s];
            assigned += self.weights[s] * eta;
            perfect &= eta == 1.0;
        }
        let ub = assigned + self.prefix_weight[slot];
        ub <= best - PRUNE_MARGIN || (self.unit_weights && perfect && ub <= *best)
    }

    fn descend(&mut self, slot: usize) {
        for m in 0..self.cores {
            // Symmetry: while the first two cores carry bit-identical
            // real-time bounds and are both still empty, any assignment
            // entering core 1 first is the mirror of one entering core 0
            // first — and because the swapped groups occupy the *first two*
            // positions of the leaf evaluator's left-to-right total, the
            // mirror's total is bit-equal (float addition commutes), so the
            // earlier-enumerated mirror subsumes the skipped copy exactly.
            // Later core pairs are NOT eligible: their mirror reassociates
            // the fold and can differ by an ulp.
            if m == 1 && self.sym01 && self.residents[0].is_empty() && self.residents[1].is_empty()
            {
                self.pruned_subtrees += self.pow[slot];
                continue;
            }
            self.assignment[slot] = m;
            // Snapshot the residents' current bound values: placing `slot`
            // tightens each of them (it is higher priority than everything
            // already on the core), and un-placing restores the saved
            // values bit-for-bit instead of re-solving.
            let trail_mark = self.eta_trail.len();
            for i in 0..self.residents[m].len() {
                let resident = self.residents[m][i];
                self.eta_trail.push((resident, self.eta_hat[resident]));
            }
            self.residents[m].push(slot);
            self.core_mask[m] |= 1u128 << slot;
            if !self.refresh_core(m) {
                self.pruned_subtrees += self.pow[slot];
            } else if slot == 0 {
                self.visit_leaf();
            } else if self.prunable(slot) {
                self.pruned_subtrees += self.pow[slot];
            } else {
                self.descend(slot - 1);
            }
            self.residents[m].pop();
            self.core_mask[m] &= !(1u128 << slot);
            while self.eta_trail.len() > trail_mark {
                let (resident, eta) = self.eta_trail.pop().expect("trail mark is a lower bound");
                self.eta_hat[resident] = eta;
            }
        }
    }

    /// Evaluates the complete assignment exactly as the exhaustive search
    /// did: cores in ascending order, each core's group optimised jointly,
    /// totals accumulated in the same order — identical floats, so the
    /// strict-improvement comparison picks the identical winner.
    fn visit_leaf(&mut self) {
        self.visited += 1;
        let mut total = 0.0;
        let mut feasible = true;
        for m in 0..self.cores {
            if self.residents[m].is_empty() {
                continue;
            }
            match self.core_plan(m) {
                Some(plan) => total += plan.weighted_tightness,
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if !feasible {
            return;
        }
        if self.best.as_ref().is_none_or(|(b, _)| total > *b) {
            let mut placements: Vec<Option<SecurityPlacement>> = vec![None; self.n];
            for m in 0..self.cores {
                if self.residents[m].is_empty() {
                    continue;
                }
                let plan = self
                    .core_plan(m)
                    .expect("feasible assignment has a plan on every used core")
                    .clone();
                let mut rank = 0usize;
                for slot in 0..self.n {
                    if self.core_mask[m] >> slot & 1 == 0 {
                        continue;
                    }
                    let id = self.priority_order[slot];
                    let period = plan.periods[rank];
                    placements[id.0] = Some(SecurityPlacement {
                        core: CoreId(m),
                        period,
                        tightness: self.problem.security_tasks[id].tightness(period),
                    });
                    rank += 1;
                }
            }
            let placements: Vec<SecurityPlacement> = placements
                .into_iter()
                .map(|p| p.expect("complete assignment placed every task"))
                .collect();
            self.best = Some((total, placements));
        }
    }

    /// The memoised per-core period plan of core `m`'s current residents.
    fn core_plan(&mut self, m: usize) -> Option<&CorePlan> {
        let key = (m, self.core_mask[m]);
        if !self.plan_memo.contains_key(&key) {
            let problem: &'a AllocationProblem = self.problem;
            self.ids_scratch.clear();
            for (slot, &id) in self.priority_order.iter().enumerate() {
                if self.core_mask[m] >> slot & 1 == 1 {
                    self.ids_scratch.push(id);
                }
            }
            self.tasks_scratch.clear();
            for &id in &self.ids_scratch {
                self.tasks_scratch.push(&problem.security_tasks[id]);
            }
            let plan = optimize_core_periods(&self.tasks_scratch, &self.rt_bounds[m], self.joint);
            self.plan_memo.insert(key, plan);
        }
        self.plan_memo[&key].as_ref()
    }
}

impl Allocator for OptimalAllocator {
    fn name(&self) -> &'static str {
        "Optimal"
    }

    fn allocate(&self, problem: &AllocationProblem) -> Result<Allocation, AllocationError> {
        self.allocate_with_stats(problem).map(|(a, _)| a)
    }

    fn allocate_with_rt_partition(
        &self,
        problem: &AllocationProblem,
        rt_partition: &Partition,
    ) -> Result<Allocation, AllocationError> {
        self.allocate_with_rt_partition_stats(problem, rt_partition)
            .map(|(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::HydraAllocator;
    use crate::security::{SecurityTask, SecurityTaskSet};
    use proptest::prelude::*;
    use rt_core::{RtTask, TaskSet, Time};

    fn rt(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    fn sec(c_ms: u64, tdes_ms: u64, tmax_ms: u64) -> SecurityTask {
        SecurityTask::new(
            Time::from_millis(c_ms),
            Time::from_millis(tdes_ms),
            Time::from_millis(tmax_ms),
        )
        .unwrap()
    }

    /// The pre-branch-and-bound reference: plain mixed-radix enumeration of
    /// every assignment, kept verbatim as the identity oracle.
    fn exhaustive_allocate(
        allocator: &OptimalAllocator,
        problem: &AllocationProblem,
        rt_partition: &Partition,
    ) -> Result<Allocation, AllocationError> {
        let cores = problem.cores;
        let n = problem.security_tasks.len();
        if n == 0 {
            return Ok(Allocation::new(rt_partition.clone(), Vec::new()));
        }
        let rt_bounds: Vec<InterferenceBound> = (0..cores)
            .map(|m| rt_interference_on(&problem.rt_tasks, rt_partition, CoreId(m)))
            .collect();
        let priority_order: Vec<SecurityTaskId> = problem.security_tasks.ids_by_priority().to_vec();

        let mut best: Option<(f64, Vec<SecurityPlacement>)> = None;
        let mut assignment = vec![0usize; n];
        'outer: loop {
            let mut total = 0.0;
            let mut placements: Vec<Option<SecurityPlacement>> = vec![None; n];
            let mut feasible = true;
            for (m, rt_bound) in rt_bounds.iter().enumerate().take(cores) {
                let ids: Vec<SecurityTaskId> = priority_order
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, &id)| (assignment[slot] == m).then_some(id))
                    .collect();
                if ids.is_empty() {
                    continue;
                }
                let tasks: Vec<&SecurityTask> =
                    ids.iter().map(|&id| &problem.security_tasks[id]).collect();
                match optimize_core_periods(&tasks, rt_bound, &allocator.joint) {
                    Some(plan) => {
                        total += plan.weighted_tightness;
                        for (k, &id) in ids.iter().enumerate() {
                            placements[id.0] = Some(SecurityPlacement {
                                core: CoreId(m),
                                period: plan.periods[k],
                                tightness: problem.security_tasks[id].tightness(plan.periods[k]),
                            });
                        }
                    }
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if feasible {
                let placements: Vec<SecurityPlacement> = placements
                    .into_iter()
                    .map(|p| p.expect("feasible assignment placed every task"))
                    .collect();
                if best.as_ref().is_none_or(|(b, _)| total > *b) {
                    best = Some((total, placements));
                }
            }

            let mut slot = 0usize;
            loop {
                if slot == n {
                    break 'outer;
                }
                assignment[slot] += 1;
                if assignment[slot] < cores {
                    break;
                }
                assignment[slot] = 0;
                slot += 1;
            }
        }

        match best {
            Some((_, placements)) => Ok(Allocation::new(rt_partition.clone(), placements)),
            None => Err(AllocationError::SecurityUnschedulable { task: None }),
        }
    }

    /// Runs both searches on the same problem and asserts bit-identical
    /// results (including identical rejections).
    fn assert_identical_to_exhaustive(problem: &AllocationProblem) -> SearchStats {
        let allocator = OptimalAllocator::default();
        let rt_partition =
            partition_tasks(&problem.rt_tasks, problem.cores, &problem.partition_config)
                .expect("test problems have partitionable RT sets");
        let oracle = exhaustive_allocate(&allocator, problem, &rt_partition);
        let bnb = allocator.allocate_with_rt_partition_stats(problem, &rt_partition);
        match (oracle, bnb) {
            (Ok(expected), Ok((actual, stats))) => {
                assert_eq!(actual, expected, "branch-and-bound diverged");
                assert_eq!(stats.visited + stats.pruned, stats.total);
                stats
            }
            (Err(expected), Err(actual)) => {
                assert_eq!(actual, expected);
                SearchStats::default()
            }
            (oracle, bnb) => panic!("oracle {oracle:?} vs branch-and-bound {bnb:?}"),
        }
    }

    #[test]
    fn optimal_never_loses_to_hydra_on_the_case_study() {
        let sec_tasks = crate::catalog::table1_tasks();
        for cores in [2usize, 4] {
            let problem =
                AllocationProblem::new(crate::casestudy::uav_rt_tasks(), sec_tasks.clone(), cores);
            let hydra = HydraAllocator::default().allocate(&problem).unwrap();
            let optimal = OptimalAllocator::default().allocate(&problem).unwrap();
            assert!(
                optimal.cumulative_tightness(&sec_tasks) + 1e-9
                    >= hydra.cumulative_tightness(&sec_tasks),
                "optimal lost to HYDRA on {cores} cores"
            );
        }
    }

    #[test]
    fn optimal_finds_the_split_hydra_would_also_find() {
        // Two heavy security tasks, two idle cores: both schemes should give
        // both tasks their desired period by splitting them.
        let sec_tasks: SecurityTaskSet = vec![sec(600, 1000, 10_000), sec(600, 1000, 10_000)]
            .into_iter()
            .collect();
        let problem = AllocationProblem::new(TaskSet::empty(), sec_tasks.clone(), 2);
        let optimal = OptimalAllocator::default().allocate(&problem).unwrap();
        assert!((optimal.cumulative_tightness(&sec_tasks) - 2.0).abs() < 1e-9);
        assert_ne!(
            optimal.core_of(SecurityTaskId(0)),
            optimal.core_of(SecurityTaskId(1))
        );
    }

    #[test]
    fn optimal_beats_greedy_when_stretching_helps() {
        // Single core with the "hog + victim" geometry from the joint module:
        // HYDRA's greedy periods are strictly worse than the refined ones.
        let sec_tasks: SecurityTaskSet = vec![sec(900, 920, 100_000), sec(100, 2_000, 200_000)]
            .into_iter()
            .collect();
        let problem = AllocationProblem::new(TaskSet::empty(), sec_tasks.clone(), 1);
        let hydra = HydraAllocator::default().allocate(&problem).unwrap();
        let optimal = OptimalAllocator::default().allocate(&problem).unwrap();
        assert!(
            optimal.cumulative_tightness(&sec_tasks)
                > hydra.cumulative_tightness(&sec_tasks) + 0.05
        );
    }

    #[test]
    fn infeasible_problems_are_reported() {
        let sec_tasks: SecurityTaskSet = vec![
            sec(600, 1000, 2_000),
            sec(600, 1000, 2_000),
            sec(600, 1000, 2_000),
        ]
        .into_iter()
        .collect();
        let problem = AllocationProblem::new(TaskSet::empty(), sec_tasks, 1);
        assert_eq!(
            OptimalAllocator::default().allocate(&problem),
            Err(AllocationError::SecurityUnschedulable { task: None })
        );
    }

    #[test]
    fn enumeration_limit_is_enforced() {
        let sec_tasks: SecurityTaskSet = (0..8).map(|_| sec(10, 1000, 10_000)).collect();
        let problem = AllocationProblem::new(TaskSet::empty(), sec_tasks, 4);
        let allocator = OptimalAllocator::default().with_assignment_limit(1000);
        assert!(matches!(
            allocator.allocate(&problem),
            Err(AllocationError::ProblemTooLarge { .. })
        ));
    }

    #[test]
    fn empty_security_set_is_trivially_optimal() {
        let problem = AllocationProblem::new(
            crate::casestudy::uav_rt_tasks(),
            SecurityTaskSet::empty(),
            2,
        );
        let allocation = OptimalAllocator::default().allocate(&problem).unwrap();
        assert!(allocation.is_empty());
    }

    #[test]
    fn rt_partition_failure_is_propagated() {
        let rt_tasks: TaskSet = vec![rt(9, 10), rt(9, 10), rt(9, 10)].into_iter().collect();
        let problem = AllocationProblem::new(rt_tasks, SecurityTaskSet::empty(), 2);
        assert!(matches!(
            OptimalAllocator::default().allocate(&problem),
            Err(AllocationError::RtPartitionFailed { .. })
        ));
    }

    #[test]
    fn greedy_only_variant_still_dominates_hydra() {
        // Even without period refinement, searching over all assignments can
        // only help relative to HYDRA's greedy assignment.
        let sec_tasks: SecurityTaskSet = vec![
            sec(300, 1000, 10_000),
            sec(300, 1000, 10_000),
            sec(300, 1500, 15_000),
        ]
        .into_iter()
        .collect();
        let rt_tasks: TaskSet = vec![rt(60, 100), rt(20, 100)].into_iter().collect();
        let problem = AllocationProblem::new(rt_tasks, sec_tasks.clone(), 2);
        let hydra = HydraAllocator::default().allocate(&problem).unwrap();
        let optimal = OptimalAllocator::default()
            .with_joint_options(JointOptions::greedy_only())
            .allocate(&problem)
            .unwrap();
        assert!(
            optimal.cumulative_tightness(&sec_tasks) + 1e-9
                >= hydra.cumulative_tightness(&sec_tasks)
        );
    }

    #[test]
    fn branch_and_bound_matches_exhaustive_on_the_case_study() {
        let sec_tasks = crate::catalog::table1_tasks();
        for cores in [2usize, 3, 4] {
            let problem =
                AllocationProblem::new(crate::casestudy::uav_rt_tasks(), sec_tasks.clone(), cores);
            let stats = assert_identical_to_exhaustive(&problem);
            assert_eq!(stats.total, (cores as u128).pow(6));
            assert!(
                stats.pruned > 0,
                "no pruning at all on the {cores}-core case study"
            );
        }
    }

    #[test]
    fn symmetry_breaking_collapses_the_leading_idle_pair() {
        // With no RT tasks every core is bit-identical: the search never
        // enters core 1 while core 0 is still empty (the only float-exact
        // mirror pair), and together with the perfection tie-prune the
        // idle-platform search space collapses by far more than half.
        let sec_tasks: SecurityTaskSet = vec![
            sec(300, 1000, 10_000),
            sec(300, 1000, 10_000),
            sec(200, 1500, 15_000),
        ]
        .into_iter()
        .collect();
        let problem = AllocationProblem::new(TaskSet::empty(), sec_tasks, 4);
        let stats = assert_identical_to_exhaustive(&problem);
        assert_eq!(stats.total, 64);
        assert!(
            stats.prune_ratio() >= 0.5,
            "expected ≥ 50 % pruning on the idle platform, got {}",
            stats.prune_ratio()
        );
    }

    #[test]
    fn saturated_instances_prune_by_perfection() {
        // Light security load on many cores: the first feasible leaf already
        // reaches tightness 1 everywhere; every later subtree ties at best
        // and is cut exactly.
        let sec_tasks: SecurityTaskSet = vec![
            sec(10, 1000, 10_000),
            sec(10, 1000, 10_000),
            sec(10, 2000, 20_000),
            sec(10, 2000, 20_000),
        ]
        .into_iter()
        .collect();
        let rt_tasks: TaskSet = vec![rt(10, 100), rt(10, 100)].into_iter().collect();
        let problem = AllocationProblem::new(rt_tasks, sec_tasks, 2);
        let stats = assert_identical_to_exhaustive(&problem);
        assert!(
            stats.prune_ratio() >= 0.5,
            "expected ≥ 50 % pruning on a saturated instance, got {} ({stats:?})",
            stats.prune_ratio()
        );
    }

    #[test]
    fn overloaded_instances_prune_by_infeasibility() {
        // Heavy security tasks on loaded cores: most assignments die on a
        // relaxed-infeasibility check high up in the tree.
        let sec_tasks: SecurityTaskSet = vec![
            sec(500, 1000, 4_000),
            sec(500, 1000, 4_000),
            sec(400, 1500, 5_000),
            sec(300, 2000, 6_000),
        ]
        .into_iter()
        .collect();
        let rt_tasks: TaskSet = vec![rt(40, 100), rt(30, 100)].into_iter().collect();
        let problem = AllocationProblem::new(rt_tasks, sec_tasks, 2);
        let stats = assert_identical_to_exhaustive(&problem);
        assert!(stats.visited < stats.total, "{stats:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The branch-and-bound search returns the bit-identical allocation
        /// (or the identical rejection) of the exhaustive enumeration on
        /// randomized instances spanning idle to overloaded cores.
        #[test]
        fn branch_and_bound_is_identical_to_exhaustive(
            rt_params in collection::vec((5u64..=40, 1u64..=4), 0..=4),
            sec_params in collection::vec((50u64..=600, 1u64..=4, 2u64..=12), 1..=5),
            cores in 1usize..=3,
        ) {
            let rt_tasks: TaskSet = rt_params
                .into_iter()
                .map(|(c, scale)| rt(c, c * scale * 3))
                .collect();
            let sec_tasks: SecurityTaskSet = sec_params
                .into_iter()
                .map(|(c, des_scale, max_scale)| {
                    let des = c * des_scale * 2;
                    sec(c, des, des * max_scale)
                })
                .collect();
            let problem = AllocationProblem::new(rt_tasks, sec_tasks, cores);
            if partition_tasks(&problem.rt_tasks, cores, &problem.partition_config).is_err() {
                // Unpartitionable RT sets never reach the assignment search.
                return Ok(());
            }
            assert_identical_to_exhaustive(&problem);
        }
    }
}
