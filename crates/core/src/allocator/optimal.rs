//! The exhaustive "Optimal" baseline (Section IV-B.2).
//!
//! For small instances the paper compares HYDRA against an exhaustive search:
//! every one of the `M^{N_S}` assignments of security tasks to cores is
//! enumerated, and for each assignment the whole period vector is chosen to
//! maximise the cumulative weighted tightness (a joint convex/geometric
//! program in the paper; the coordinate-ascent refinement of
//! [`crate::joint`] here). The assignment with the best cumulative tightness
//! wins.
//!
//! Because the per-assignment period optimisation starts from the greedy
//! (HYDRA-style) period vector and only ever improves it, the result of this
//! allocator is **never worse than HYDRA** on the same problem — the
//! invariant behind Figure 3.

use rt_partition::{partition_tasks, CoreId, Partition};

use crate::allocation::{Allocation, AllocationError, AllocationProblem, SecurityPlacement};
use crate::allocator::Allocator;
use crate::interference::{rt_interference_on, InterferenceBound};
use crate::joint::{optimize_core_periods, JointOptions};
use crate::security::{SecurityTask, SecurityTaskId};

/// Exhaustive assignment enumeration with joint period optimisation.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalAllocator {
    joint: JointOptions,
    /// Safety limit on the number of enumerated assignments.
    max_assignments: u128,
}

impl Default for OptimalAllocator {
    fn default() -> Self {
        OptimalAllocator {
            joint: JointOptions::default(),
            max_assignments: 1 << 22,
        }
    }
}

impl OptimalAllocator {
    /// Creates the allocator with default joint-optimisation options and an
    /// enumeration limit of about four million assignments.
    #[must_use]
    pub fn new() -> Self {
        OptimalAllocator::default()
    }

    /// Overrides the joint period-optimisation options (e.g.
    /// [`JointOptions::greedy_only`] for the ablation that isolates the value
    /// of period refinement from the value of exhaustive assignment search).
    #[must_use]
    pub fn with_joint_options(mut self, joint: JointOptions) -> Self {
        self.joint = joint;
        self
    }

    /// Overrides the enumeration safety limit.
    #[must_use]
    pub fn with_assignment_limit(mut self, limit: u128) -> Self {
        self.max_assignments = limit;
        self
    }
}

impl Allocator for OptimalAllocator {
    fn name(&self) -> &'static str {
        "Optimal"
    }

    fn allocate(&self, problem: &AllocationProblem) -> Result<Allocation, AllocationError> {
        let rt_partition =
            partition_tasks(&problem.rt_tasks, problem.cores, &problem.partition_config).map_err(
                |e| AllocationError::RtPartitionFailed {
                    task: e.task,
                    cores: problem.cores,
                },
            )?;
        self.allocate_with_rt_partition(problem, &rt_partition)
    }

    fn allocate_with_rt_partition(
        &self,
        problem: &AllocationProblem,
        rt_partition: &Partition,
    ) -> Result<Allocation, AllocationError> {
        let cores = problem.cores;
        let n = problem.security_tasks.len();
        if n == 0 {
            return Ok(Allocation::new(rt_partition.clone(), Vec::new()));
        }

        let assignments = (cores as u128).checked_pow(n as u32).unwrap_or(u128::MAX);
        if assignments > self.max_assignments {
            return Err(AllocationError::ProblemTooLarge {
                assignments,
                limit: self.max_assignments,
            });
        }

        let rt_bounds: Vec<InterferenceBound> = (0..cores)
            .map(|m| rt_interference_on(&problem.rt_tasks, rt_partition, CoreId(m)))
            .collect();
        // Security tasks in priority order (highest first); assignments are
        // enumerated over this order so per-core groups come out already
        // priority-sorted.
        let priority_order: Vec<SecurityTaskId> = problem.security_tasks.ids_by_priority();

        let mut best: Option<(f64, Vec<SecurityPlacement>)> = None;
        let mut assignment = vec![0usize; n];
        'outer: loop {
            // Evaluate the current assignment.
            let mut total = 0.0;
            let mut placements: Vec<Option<SecurityPlacement>> = vec![None; n];
            let mut feasible = true;
            for (m, rt_bound) in rt_bounds.iter().enumerate().take(cores) {
                let ids: Vec<SecurityTaskId> = priority_order
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, &id)| (assignment[slot] == m).then_some(id))
                    .collect();
                if ids.is_empty() {
                    continue;
                }
                let tasks: Vec<&SecurityTask> =
                    ids.iter().map(|&id| &problem.security_tasks[id]).collect();
                match optimize_core_periods(&tasks, rt_bound, &self.joint) {
                    Some(plan) => {
                        total += plan.weighted_tightness;
                        for (k, &id) in ids.iter().enumerate() {
                            placements[id.0] = Some(SecurityPlacement {
                                core: CoreId(m),
                                period: plan.periods[k],
                                tightness: problem.security_tasks[id].tightness(plan.periods[k]),
                            });
                        }
                    }
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if feasible {
                let placements: Vec<SecurityPlacement> = placements
                    .into_iter()
                    .map(|p| p.expect("feasible assignment placed every task"))
                    .collect();
                if best.as_ref().is_none_or(|(b, _)| total > *b) {
                    best = Some((total, placements));
                }
            }

            // Advance to the next assignment (mixed-radix counter).
            let mut slot = 0usize;
            loop {
                if slot == n {
                    break 'outer;
                }
                assignment[slot] += 1;
                if assignment[slot] < cores {
                    break;
                }
                assignment[slot] = 0;
                slot += 1;
            }
        }

        match best {
            Some((_, placements)) => Ok(Allocation::new(rt_partition.clone(), placements)),
            None => Err(AllocationError::SecurityUnschedulable { task: None }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::HydraAllocator;
    use crate::security::{SecurityTask, SecurityTaskSet};
    use rt_core::{RtTask, TaskSet, Time};

    fn rt(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    fn sec(c_ms: u64, tdes_ms: u64, tmax_ms: u64) -> SecurityTask {
        SecurityTask::new(
            Time::from_millis(c_ms),
            Time::from_millis(tdes_ms),
            Time::from_millis(tmax_ms),
        )
        .unwrap()
    }

    #[test]
    fn optimal_never_loses_to_hydra_on_the_case_study() {
        let sec_tasks = crate::catalog::table1_tasks();
        for cores in [2usize, 4] {
            let problem =
                AllocationProblem::new(crate::casestudy::uav_rt_tasks(), sec_tasks.clone(), cores);
            let hydra = HydraAllocator::default().allocate(&problem).unwrap();
            let optimal = OptimalAllocator::default().allocate(&problem).unwrap();
            assert!(
                optimal.cumulative_tightness(&sec_tasks) + 1e-9
                    >= hydra.cumulative_tightness(&sec_tasks),
                "optimal lost to HYDRA on {cores} cores"
            );
        }
    }

    #[test]
    fn optimal_finds_the_split_hydra_would_also_find() {
        // Two heavy security tasks, two idle cores: both schemes should give
        // both tasks their desired period by splitting them.
        let sec_tasks: SecurityTaskSet = vec![sec(600, 1000, 10_000), sec(600, 1000, 10_000)]
            .into_iter()
            .collect();
        let problem = AllocationProblem::new(TaskSet::empty(), sec_tasks.clone(), 2);
        let optimal = OptimalAllocator::default().allocate(&problem).unwrap();
        assert!((optimal.cumulative_tightness(&sec_tasks) - 2.0).abs() < 1e-9);
        assert_ne!(
            optimal.core_of(SecurityTaskId(0)),
            optimal.core_of(SecurityTaskId(1))
        );
    }

    #[test]
    fn optimal_beats_greedy_when_stretching_helps() {
        // Single core with the "hog + victim" geometry from the joint module:
        // HYDRA's greedy periods are strictly worse than the refined ones.
        let sec_tasks: SecurityTaskSet = vec![sec(900, 920, 100_000), sec(100, 2_000, 200_000)]
            .into_iter()
            .collect();
        let problem = AllocationProblem::new(TaskSet::empty(), sec_tasks.clone(), 1);
        let hydra = HydraAllocator::default().allocate(&problem).unwrap();
        let optimal = OptimalAllocator::default().allocate(&problem).unwrap();
        assert!(
            optimal.cumulative_tightness(&sec_tasks)
                > hydra.cumulative_tightness(&sec_tasks) + 0.05
        );
    }

    #[test]
    fn infeasible_problems_are_reported() {
        let sec_tasks: SecurityTaskSet = vec![
            sec(600, 1000, 2_000),
            sec(600, 1000, 2_000),
            sec(600, 1000, 2_000),
        ]
        .into_iter()
        .collect();
        let problem = AllocationProblem::new(TaskSet::empty(), sec_tasks, 1);
        assert_eq!(
            OptimalAllocator::default().allocate(&problem),
            Err(AllocationError::SecurityUnschedulable { task: None })
        );
    }

    #[test]
    fn enumeration_limit_is_enforced() {
        let sec_tasks: SecurityTaskSet = (0..8).map(|_| sec(10, 1000, 10_000)).collect();
        let problem = AllocationProblem::new(TaskSet::empty(), sec_tasks, 4);
        let allocator = OptimalAllocator::default().with_assignment_limit(1000);
        assert!(matches!(
            allocator.allocate(&problem),
            Err(AllocationError::ProblemTooLarge { .. })
        ));
    }

    #[test]
    fn empty_security_set_is_trivially_optimal() {
        let problem = AllocationProblem::new(
            crate::casestudy::uav_rt_tasks(),
            SecurityTaskSet::empty(),
            2,
        );
        let allocation = OptimalAllocator::default().allocate(&problem).unwrap();
        assert!(allocation.is_empty());
    }

    #[test]
    fn rt_partition_failure_is_propagated() {
        let rt_tasks: TaskSet = vec![rt(9, 10), rt(9, 10), rt(9, 10)].into_iter().collect();
        let problem = AllocationProblem::new(rt_tasks, SecurityTaskSet::empty(), 2);
        assert!(matches!(
            OptimalAllocator::default().allocate(&problem),
            Err(AllocationError::RtPartitionFailed { .. })
        ));
    }

    #[test]
    fn greedy_only_variant_still_dominates_hydra() {
        // Even without period refinement, searching over all assignments can
        // only help relative to HYDRA's greedy assignment.
        let sec_tasks: SecurityTaskSet = vec![
            sec(300, 1000, 10_000),
            sec(300, 1000, 10_000),
            sec(300, 1500, 15_000),
        ]
        .into_iter()
        .collect();
        let rt_tasks: TaskSet = vec![rt(60, 100), rt(20, 100)].into_iter().collect();
        let problem = AllocationProblem::new(rt_tasks, sec_tasks.clone(), 2);
        let hydra = HydraAllocator::default().allocate(&problem).unwrap();
        let optimal = OptimalAllocator::default()
            .with_joint_options(JointOptions::greedy_only())
            .allocate(&problem)
            .unwrap();
        assert!(
            optimal.cumulative_tightness(&sec_tasks) + 1e-9
                >= hydra.cumulative_tightness(&sec_tasks)
        );
    }
}
