//! The SingleCore baseline (Section IV): a dedicated security core.
//!
//! The alternative design point the paper compares against: partition all the
//! real-time tasks onto `M − 1` cores and reserve the remaining core
//! exclusively for the security tasks. Security tasks then suffer no
//! real-time interference (the first term of Eq. 5 vanishes) but all of them
//! share one core, so lower-priority security tasks can still be stretched by
//! the higher-priority ones.

use rt_partition::{partition_tasks, CoreId, Partition};

use crate::allocation::{Allocation, AllocationError, AllocationProblem, SecurityPlacement};
use crate::allocator::Allocator;
use crate::interference::{security_interference, InterferenceBound};
use crate::period::{adapt_period, PeriodChoice};
use crate::security::SecurityTaskId;

/// The SingleCore allocation scheme: all security tasks on one dedicated
/// core, all real-time tasks on the remaining `M − 1` cores.
///
/// # Example
///
/// ```
/// use hydra_core::allocator::{Allocator, SingleCoreAllocator};
/// use hydra_core::{AllocationProblem, catalog, casestudy};
///
/// # fn main() -> Result<(), hydra_core::AllocationError> {
/// let problem = AllocationProblem::new(
///     casestudy::uav_rt_tasks(),
///     catalog::table1_tasks(),
///     4,
/// );
/// let allocation = SingleCoreAllocator::default().allocate(&problem)?;
/// // Every security task sits on the dedicated core (the last one).
/// assert!(allocation.iter().all(|(_, p)| p.core.0 == 3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SingleCoreAllocator {
    _private: (),
}

impl SingleCoreAllocator {
    /// Creates the allocator.
    #[must_use]
    pub fn new() -> Self {
        SingleCoreAllocator::default()
    }

    /// The index of the core dedicated to security tasks for a platform with
    /// `cores` cores (the highest-numbered core).
    #[must_use]
    pub fn security_core(cores: usize) -> CoreId {
        CoreId(cores.saturating_sub(1))
    }

    /// Re-expresses a partition computed over the first `M − 1` cores as a
    /// full-platform partition on which the dedicated security core hosts no
    /// real-time task — the shape [`Allocator::allocate_with_rt_partition`]
    /// expects for this scheme.
    #[must_use]
    pub fn widen_partition(small: &Partition, cores: usize, task_count: usize) -> Partition {
        let mut full = Partition::new(task_count, cores);
        for id in (0..task_count).map(rt_core::TaskId) {
            if let Some(core) = small.core_of(id) {
                full.assign(id, core);
            }
        }
        full
    }
}

impl Allocator for SingleCoreAllocator {
    fn name(&self) -> &'static str {
        "SingleCore"
    }

    fn allocate(&self, problem: &AllocationProblem) -> Result<Allocation, AllocationError> {
        if problem.cores < 2 {
            return Err(AllocationError::InsufficientCores {
                available: problem.cores,
                required: 2,
            });
        }
        let rt_cores = problem.cores - 1;
        // Partition the real-time tasks onto the first M − 1 cores, then
        // re-express over the full platform (the dedicated core simply hosts
        // no real-time task).
        let rt_partition_small =
            partition_tasks(&problem.rt_tasks, rt_cores, &problem.partition_config).map_err(
                |e| AllocationError::RtPartitionFailed {
                    task: e.task,
                    cores: rt_cores,
                },
            )?;
        let rt_partition =
            Self::widen_partition(&rt_partition_small, problem.cores, problem.rt_tasks.len());
        self.allocate_with_rt_partition(problem, &rt_partition)
    }

    fn allocate_with_rt_partition(
        &self,
        problem: &AllocationProblem,
        rt_partition: &Partition,
    ) -> Result<Allocation, AllocationError> {
        if problem.cores < 2 {
            return Err(AllocationError::InsufficientCores {
                available: problem.cores,
                required: 2,
            });
        }
        let security_core = Self::security_core(problem.cores);
        debug_assert!(
            rt_partition.tasks_on(security_core).is_empty(),
            "the dedicated security core must host no real-time task"
        );
        let mut placed: Vec<(SecurityTaskId, PeriodChoice)> = Vec::new();
        let mut placements: Vec<Option<SecurityPlacement>> =
            vec![None; problem.security_tasks.len()];

        for &sec_id in problem.security_tasks.priority_order() {
            let task = &problem.security_tasks[sec_id];
            // No real-time interference on the dedicated core; only the
            // higher-priority security tasks already placed there.
            let bound: InterferenceBound = security_interference(
                placed
                    .iter()
                    .map(|(id, choice)| (&problem.security_tasks[*id], choice.period)),
            );
            let Some(choice) = adapt_period(task, &bound) else {
                return Err(AllocationError::SecurityUnschedulable { task: Some(sec_id) });
            };
            placed.push((sec_id, choice));
            placements[sec_id.0] = Some(SecurityPlacement {
                core: security_core,
                period: choice.period,
                tightness: choice.tightness,
            });
        }

        let placements: Vec<SecurityPlacement> = placements
            .into_iter()
            .map(|p| p.expect("every security task was placed or we returned early"))
            .collect();
        Ok(Allocation::new(rt_partition.clone(), placements))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::HydraAllocator;
    use crate::security::{SecurityTask, SecurityTaskSet};
    use rt_core::{RtTask, TaskSet, Time};

    fn rt(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    fn sec(c_ms: u64, tdes_ms: u64, tmax_ms: u64) -> SecurityTask {
        SecurityTask::new(
            Time::from_millis(c_ms),
            Time::from_millis(tdes_ms),
            Time::from_millis(tmax_ms),
        )
        .unwrap()
    }

    #[test]
    fn all_security_tasks_land_on_the_last_core() {
        let problem = AllocationProblem::new(
            crate::casestudy::uav_rt_tasks(),
            crate::catalog::table1_tasks(),
            4,
        );
        let allocation = SingleCoreAllocator::default().allocate(&problem).unwrap();
        for (_, p) in allocation.iter() {
            assert_eq!(p.core, CoreId(3));
        }
        // No real-time task shares that core.
        assert!(allocation.rt_partition().tasks_on(CoreId(3)).is_empty());
    }

    #[test]
    fn single_core_platform_is_rejected() {
        let problem = AllocationProblem::new(
            crate::casestudy::uav_rt_tasks(),
            crate::catalog::table1_tasks(),
            1,
        );
        assert_eq!(
            SingleCoreAllocator::default().allocate(&problem),
            Err(AllocationError::InsufficientCores {
                available: 1,
                required: 2
            })
        );
    }

    #[test]
    fn rt_workload_that_needs_all_cores_fails() {
        // Four RT tasks at 90% each need four cores; on a 4-core platform the
        // SingleCore scheme only has three for them.
        let rt_tasks: TaskSet = vec![rt(9, 10), rt(9, 10), rt(9, 10), rt(9, 10)]
            .into_iter()
            .collect();
        let problem = AllocationProblem::new(rt_tasks.clone(), SecurityTaskSet::empty(), 4);
        assert!(matches!(
            SingleCoreAllocator::default().allocate(&problem),
            Err(AllocationError::RtPartitionFailed { cores: 3, .. })
        ));
        // HYDRA, with all four cores available to the RT workload, succeeds.
        assert!(HydraAllocator::default().allocate(&problem).is_ok());
    }

    #[test]
    fn overloaded_security_core_is_unschedulable() {
        // Three heavy security tasks cannot share one core even though the
        // real-time side is trivial.
        let rt_tasks: TaskSet = vec![rt(1, 100)].into_iter().collect();
        let sec_tasks: SecurityTaskSet = vec![
            sec(600, 1000, 2_000),
            sec(600, 1000, 2_000),
            sec(600, 1000, 2_000),
        ]
        .into_iter()
        .collect();
        let problem = AllocationProblem::new(rt_tasks, sec_tasks, 2);
        assert!(matches!(
            SingleCoreAllocator::default().allocate(&problem),
            Err(AllocationError::SecurityUnschedulable { task: Some(_) })
        ));
    }

    #[test]
    fn no_rt_interference_on_the_dedicated_core() {
        // A single security task on the dedicated core always achieves its
        // desired period regardless of how busy the other cores are.
        let rt_tasks: TaskSet = vec![rt(90, 100), rt(90, 100)].into_iter().collect();
        let sec_tasks: SecurityTaskSet = vec![sec(100, 1000, 10_000)].into_iter().collect();
        let problem = AllocationProblem::new(rt_tasks, sec_tasks, 3);
        let allocation = SingleCoreAllocator::default().allocate(&problem).unwrap();
        assert_eq!(allocation.placement(SecurityTaskId(0)).tightness, 1.0);
    }

    #[test]
    fn hydra_matches_or_beats_single_core_on_cumulative_tightness() {
        // On the UAV case study HYDRA can use the slack of every core, so its
        // cumulative tightness is at least as good as SingleCore's.
        for cores in [2usize, 4, 8] {
            let sec_tasks = crate::catalog::table1_tasks();
            let problem =
                AllocationProblem::new(crate::casestudy::uav_rt_tasks(), sec_tasks.clone(), cores);
            let hydra = HydraAllocator::default().allocate(&problem).unwrap();
            let single = SingleCoreAllocator::default().allocate(&problem).unwrap();
            assert!(
                hydra.cumulative_tightness(&sec_tasks) + 1e-9
                    >= single.cumulative_tightness(&sec_tasks),
                "HYDRA lost to SingleCore on {cores} cores"
            );
        }
    }

    #[test]
    fn security_core_helper() {
        assert_eq!(SingleCoreAllocator::security_core(4), CoreId(3));
        assert_eq!(SingleCoreAllocator::security_core(2), CoreId(1));
        assert_eq!(SingleCoreAllocator::default().name(), "SingleCore");
    }
}
