//! Lane-batched evaluation of the Eq. (5) interference bound.
//!
//! The joint period refinement of [`crate::joint`] scans a log-spaced grid of
//! candidate periods per task; every candidate re-greedifies the whole
//! lower-priority suffix against its own running interference bound. Those
//! per-candidate bounds are independent, so the scan can keep [`LANES`]
//! candidates in flight at once with the bound state held
//! structure-of-arrays: one `[f64; LANES]` column for the constant parts and
//! one for the slopes. The per-lane update is the *exact* operation sequence
//! of [`InterferenceBound::add_task`], which makes a lane's running bound
//! bit-identical to a scalar left fold over the same task sequence — the
//! property the differential tests in [`crate::joint`] pin.

use rt_core::batch::LANES;
use rt_core::Time;

use crate::interference::InterferenceBound;

/// A structure-of-arrays bundle of up to [`LANES`] independent
/// [`InterferenceBound`] accumulators.
#[derive(Debug, Clone)]
pub struct LaneBounds {
    /// Constant parts (sum of interfering WCETs in ticks), one per lane.
    pub constant: [f64; LANES],
    /// Slopes (total utilisation of the interfering tasks), one per lane.
    pub slope: [f64; LANES],
}

impl LaneBounds {
    /// Replicates `bound` into every lane.
    #[must_use]
    pub fn splat(bound: &InterferenceBound) -> Self {
        LaneBounds {
            constant: [bound.constant; LANES],
            slope: [bound.slope; LANES],
        }
    }

    /// Adds an interfering task to one lane.
    ///
    /// Performs exactly the operations of [`InterferenceBound::add_task`], in
    /// the same order, so the lane stays bit-identical to a scalar fold.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (as the scalar bound does).
    pub fn add_task(&mut self, lane: usize, wcet: Time, period: Time) {
        assert!(
            !period.is_zero(),
            "interfering task must have a positive period"
        );
        self.constant[lane] += wcet.as_ticks() as f64;
        self.slope[lane] += wcet.ratio(period);
    }

    /// Extracts one lane as a scalar bound.
    #[must_use]
    pub fn lane(&self, lane: usize) -> InterferenceBound {
        InterferenceBound {
            constant: self.constant[lane],
            slope: self.slope[lane],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_fold_is_bit_identical_to_the_scalar_fold() {
        let seed = InterferenceBound {
            constant: 123.0,
            slope: 0.37,
        };
        let tasks = [
            (Time::from_micros(700), Time::from_millis(10)),
            (Time::from_micros(1300), Time::from_millis(25)),
            (Time::from_micros(90), Time::from_millis(7)),
        ];

        let mut scalar = seed;
        let mut lanes = LaneBounds::splat(&seed);
        for &(wcet, period) in &tasks {
            scalar.add_task(wcet, period);
            for lane in 0..LANES {
                lanes.add_task(lane, wcet, period);
            }
        }
        for lane in 0..LANES {
            let got = lanes.lane(lane);
            assert_eq!(got.constant.to_bits(), scalar.constant.to_bits());
            assert_eq!(got.slope.to_bits(), scalar.slope.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "positive period")]
    fn zero_period_panics_like_the_scalar_bound() {
        let mut lanes = LaneBounds::splat(&InterferenceBound::zero());
        lanes.add_task(0, Time::from_micros(1), Time::ZERO);
    }
}
