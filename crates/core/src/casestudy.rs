//! The UAV control-system case study (Section IV-A).
//!
//! The paper evaluates HYDRA's runtime behaviour on a representative
//! unmanned-aerial-vehicle control system (Atdelzater, Atkins & Shin, IEEE TC
//! 2000) consisting of six periodic real-time tasks — guidance, slow and fast
//! navigation, closed-loop control, missile control and reconnaissance —
//! augmented with the Tripwire/Bro security tasks of Table I.
//!
//! The cited table gives task structure rather than exact microsecond WCETs
//! for the paper's ARM platform; the values below are representative of the
//! control rates described in that work (fast inner loops of tens of
//! milliseconds, slower guidance/reconnaissance loops up to one second) and
//! give a per-core utilisation comparable to the paper's setup. See
//! `DESIGN.md` §3 for the substitution note.

use rt_core::{RtTask, TaskSet, Time};

use crate::catalog::table1_tasks;
use crate::security::SecurityTaskSet;

/// Builds the six-task UAV real-time workload.
///
/// Total utilisation is roughly `0.6`, which fits on a single core but leaves
/// realistic amounts of slack on 2–8-core platforms for opportunistic
/// security execution.
#[must_use]
pub fn uav_rt_tasks() -> TaskSet {
    // (name, WCET ms, period ms)
    let params: [(&str, u64, u64); 6] = [
        ("missile_control", 2, 20),
        ("fast_navigation", 10, 50),
        ("controller", 15, 100),
        ("slow_navigation", 12, 200),
        ("guidance", 12, 200),
        ("reconnaissance", 25, 1_000),
    ];
    params
        .iter()
        .map(|&(name, c, t)| {
            RtTask::implicit_deadline(Time::from_millis(c), Time::from_millis(t))
                .expect("case-study parameters are valid")
                .with_name(name)
        })
        .collect()
}

/// The complete Figure 1 scenario: the UAV real-time workload plus the
/// Table I security tasks.
#[must_use]
pub fn uav_case_study() -> (TaskSet, SecurityTaskSet) {
    (uav_rt_tasks(), table1_tasks())
}

/// A scaled variant of the UAV workload for stress experiments: `copies`
/// replicas of the six control tasks (each replica representing an additional
/// vehicle subsystem or redundant channel), useful for loading platforms with
/// more cores.
#[must_use]
pub fn uav_rt_tasks_scaled(copies: usize) -> TaskSet {
    let base = uav_rt_tasks();
    let mut all = TaskSet::empty();
    for i in 0..copies.max(1) {
        for task in base.tasks() {
            let name = match task.name() {
                Some(n) => format!("{n}_{i}"),
                None => format!("task_{i}"),
            };
            all.push(task.clone().with_name(name));
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_core::rta::is_schedulable_rm;

    #[test]
    fn uav_workload_has_six_named_tasks() {
        let tasks = uav_rt_tasks();
        assert_eq!(tasks.len(), 6);
        assert!(tasks.tasks().all(|t| t.name().is_some()));
        let names: Vec<&str> = tasks.tasks().filter_map(|t| t.name()).collect();
        assert!(names.contains(&"guidance"));
        assert!(names.contains(&"controller"));
        assert!(names.contains(&"reconnaissance"));
    }

    #[test]
    fn uav_workload_is_single_core_schedulable() {
        let tasks = uav_rt_tasks();
        let u = tasks.total_utilization();
        assert!(u > 0.4 && u < 0.8, "utilisation {u} out of expected band");
        assert!(is_schedulable_rm(&tasks));
    }

    #[test]
    fn case_study_bundles_rt_and_security_tasks() {
        let (rt, sec) = uav_case_study();
        assert_eq!(rt.len(), 6);
        assert_eq!(sec.len(), 6);
    }

    #[test]
    fn scaled_workload_multiplies_tasks() {
        let scaled = uav_rt_tasks_scaled(3);
        assert_eq!(scaled.len(), 18);
        assert!(
            (scaled.total_utilization() - 3.0 * uav_rt_tasks().total_utilization()).abs() < 1e-9
        );
        // Names stay unique across copies.
        let mut names: Vec<String> = scaled
            .tasks()
            .filter_map(|t| t.name().map(str::to_owned))
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn scaled_with_zero_copies_still_returns_one_copy() {
        assert_eq!(uav_rt_tasks_scaled(0).len(), 6);
    }
}
