//! The security-task catalogue of Table I.
//!
//! The paper illustrates the approach with the default task breakdown of two
//! open-source intrusion-detection applications: Tripwire (host-level
//! integrity checking) and Bro (network-level monitoring). Table I lists six
//! tasks; the paper measured their WCETs on a 1 GHz ARM Cortex-A8 running
//! Xenomai-patched Linux but does not print the numbers, so this module
//! encodes representative values in the measured order of magnitude
//! (hundreds of milliseconds of WCET for directory-tree hash checks on an
//! embedded-class core, desired periods of a few seconds,
//! `T^max = 10 · T^des` as in the synthetic experiments). The allocation and
//! scheduling analysis only consumes the `(C, T^des, T^max)` tuples, so the
//! qualitative comparisons (HYDRA vs SingleCore vs Optimal) are insensitive
//! to the exact constants; see `DESIGN.md` §3 for the substitution note.

use rt_core::Time;

use crate::security::{SecurityTask, SecurityTaskSet};

/// Which security application a catalogue task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityApplication {
    /// Open-source Tripwire (host integrity checking).
    Tripwire,
    /// The Bro network security monitor.
    Bro,
}

impl std::fmt::Display for SecurityApplication {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SecurityApplication::Tripwire => write!(f, "Tripwire"),
            SecurityApplication::Bro => write!(f, "Bro"),
        }
    }
}

/// One row of Table I: a named security function with its application of
/// origin and timing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Short task name (as in Table I).
    pub name: &'static str,
    /// What the task checks or monitors.
    pub function: &'static str,
    /// Application the task comes from.
    pub application: SecurityApplication,
    /// Worst-case execution time.
    pub wcet: Time,
    /// Desired monitoring period.
    pub desired_period: Time,
    /// Maximum period beyond which monitoring is ineffective.
    pub max_period: Time,
}

impl CatalogEntry {
    /// Converts the entry into a [`SecurityTask`].
    ///
    /// # Panics
    ///
    /// Never panics for the built-in catalogue: all entries satisfy the
    /// [`SecurityTask`] invariants by construction.
    #[must_use]
    pub fn to_task(&self) -> SecurityTask {
        SecurityTask::new(self.wcet, self.desired_period, self.max_period)
            .expect("catalogue entries are valid by construction")
            .with_name(self.name)
    }
}

/// The six rows of Table I.
#[must_use]
pub fn table1_entries() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "tripwire_self_check",
            function: "compare the hash of the security routine's own binary",
            application: SecurityApplication::Tripwire,
            wcet: Time::from_millis(200),
            desired_period: Time::from_millis(2_000),
            max_period: Time::from_millis(20_000),
        },
        CatalogEntry {
            name: "tripwire_executables",
            function: "check hashes of the file-system binaries (/bin, /sbin)",
            application: SecurityApplication::Tripwire,
            wcet: Time::from_millis(900),
            desired_period: Time::from_millis(5_000),
            max_period: Time::from_millis(50_000),
        },
        CatalogEntry {
            name: "tripwire_libraries",
            function: "check hashes of the critical libraries (/lib)",
            application: SecurityApplication::Tripwire,
            wcet: Time::from_millis(650),
            desired_period: Time::from_millis(4_000),
            max_period: Time::from_millis(40_000),
        },
        CatalogEntry {
            name: "tripwire_dev_kernel",
            function: "check hashes of peripherals and kernel info (/dev, /proc)",
            application: SecurityApplication::Tripwire,
            wcet: Time::from_millis(400),
            desired_period: Time::from_millis(3_000),
            max_period: Time::from_millis(30_000),
        },
        CatalogEntry {
            name: "tripwire_config",
            function: "check configuration-file hashes (/etc)",
            application: SecurityApplication::Tripwire,
            wcet: Time::from_millis(300),
            desired_period: Time::from_millis(2_500),
            max_period: Time::from_millis(25_000),
        },
        CatalogEntry {
            name: "bro_network_monitor",
            function: "scan the network interface (en0) for intrusions",
            application: SecurityApplication::Bro,
            wcet: Time::from_millis(120),
            desired_period: Time::from_millis(1_000),
            max_period: Time::from_millis(10_000),
        },
    ]
}

/// The Table I workload as a [`SecurityTaskSet`], in catalogue order.
#[must_use]
pub fn table1_tasks() -> SecurityTaskSet {
    table1_entries().iter().map(CatalogEntry::to_task).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_table1_shape() {
        let entries = table1_entries();
        assert_eq!(entries.len(), 6, "Table I lists six security tasks");
        let tripwire = entries
            .iter()
            .filter(|e| e.application == SecurityApplication::Tripwire)
            .count();
        let bro = entries
            .iter()
            .filter(|e| e.application == SecurityApplication::Bro)
            .count();
        assert_eq!(tripwire, 5);
        assert_eq!(bro, 1);
    }

    #[test]
    fn entries_have_unique_names_and_valid_tasks() {
        let entries = table1_entries();
        let mut names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
        for e in &entries {
            let t = e.to_task();
            assert_eq!(t.name(), Some(e.name));
            assert!(t.wcet() < t.desired_period());
        }
    }

    #[test]
    fn max_period_is_ten_times_desired() {
        for e in table1_entries() {
            assert_eq!(e.max_period, e.desired_period * 10);
        }
    }

    #[test]
    fn total_desired_utilization_fits_one_core_but_not_trivially() {
        // The catalogue is heavy enough that piling all six checks onto one
        // core creates visible interference (the Figure 1 effect) but still
        // fits a single dedicated core at the desired periods.
        let set = table1_tasks();
        let u = set.max_total_utilization();
        assert!(u > 0.6 && u < 0.95, "desired-period utilisation {u}");
        assert!(set.min_total_utilization() < 0.1);
    }

    #[test]
    fn bro_task_has_highest_priority() {
        // Smallest T^max ⇒ highest priority; the Bro monitor is the most
        // frequent task in the catalogue.
        let set = table1_tasks();
        let order = set.ids_by_priority();
        assert_eq!(set[order[0]].name(), Some("bro_network_monitor"));
    }

    #[test]
    fn application_display() {
        assert_eq!(SecurityApplication::Tripwire.to_string(), "Tripwire");
        assert_eq!(SecurityApplication::Bro.to_string(), "Bro");
    }
}
