//! The interference bound of Eq. (5).
//!
//! A security task `τ_s` placed on core `π_m` runs below every real-time task
//! and below the higher-priority security tasks already assigned to that
//! core. Using the linear (load-bound) response-time argument of the paper,
//! the interference it suffers over one of its own periods `T_s` is bounded
//! by
//!
//! ```text
//! I_s^m = Σ_{τr on m} (1 + T_s/T_r) · C_r  +  Σ_{τh ∈ hpS(s) on m} (1 + T_s/T_h) · C_h
//! ```
//!
//! which is *affine in `T_s`*: `I_s^m = constant + slope · T_s` with
//! `constant = Σ C_r + Σ C_h` and `slope = Σ C_r/T_r + Σ C_h/T_h` (the
//! utilisation of the interfering tasks). The schedulability constraint
//! `C_s + I_s^m ≤ T_s` (Eq. 6) therefore reduces to a one-dimensional
//! fractional-linear problem solved in closed form by
//! [`crate::period`].

use rt_core::{TaskSet, Time};
use rt_partition::{CoreId, Partition};

use crate::security::SecurityTask;

/// The affine interference bound `I(T) = constant + slope · T` suffered by a
/// security task on a particular core.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InterferenceBound {
    /// Constant part: the sum of the WCETs of all interfering tasks
    /// (in ticks, kept as `f64` for the optimisation).
    pub constant: f64,
    /// Slope: the total utilisation of all interfering tasks.
    pub slope: f64,
}

impl InterferenceBound {
    /// An empty bound (no interference).
    #[must_use]
    pub fn zero() -> Self {
        InterferenceBound::default()
    }

    /// Adds an interfering task with WCET `wcet` and period `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn add_task(&mut self, wcet: Time, period: Time) {
        assert!(
            !period.is_zero(),
            "interfering task must have a positive period"
        );
        self.constant += wcet.as_ticks() as f64;
        self.slope += wcet.ratio(period);
    }

    /// Evaluates the bound at a candidate period (in ticks).
    #[must_use]
    pub fn at(&self, period_ticks: f64) -> f64 {
        self.constant + self.slope * period_ticks
    }

    /// Combines two bounds (interference adds up).
    #[must_use]
    pub fn plus(&self, other: &InterferenceBound) -> InterferenceBound {
        InterferenceBound {
            constant: self.constant + other.constant,
            slope: self.slope + other.slope,
        }
    }
}

/// Interference contributed by the real-time tasks partitioned onto `core`
/// (the first summation of Eq. 5).
#[must_use]
pub fn rt_interference_on(
    rt_tasks: &TaskSet,
    partition: &Partition,
    core: CoreId,
) -> InterferenceBound {
    let mut bound = InterferenceBound::zero();
    for (_, task) in partition.iter_core(rt_tasks, core) {
        bound.add_task(task.wcet(), task.period());
    }
    bound
}

/// Interference contributed by already-placed higher-priority security tasks
/// on the same core (the second summation of Eq. 5). `placed` yields the
/// higher-priority security tasks assigned to the candidate core together
/// with the period each of them was granted.
#[must_use]
pub fn security_interference<'a, I>(placed: I) -> InterferenceBound
where
    I: IntoIterator<Item = (&'a SecurityTask, Time)>,
{
    let mut bound = InterferenceBound::zero();
    for (task, period) in placed {
        bound.add_task(task.wcet(), period);
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_core::RtTask;
    use rt_core::TaskId;

    use crate::security::SecurityTask;

    fn rt(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    fn sec(c_ms: u64, tdes_ms: u64, tmax_ms: u64) -> SecurityTask {
        SecurityTask::new(
            Time::from_millis(c_ms),
            Time::from_millis(tdes_ms),
            Time::from_millis(tmax_ms),
        )
        .unwrap()
    }

    #[test]
    fn zero_bound_evaluates_to_zero() {
        let b = InterferenceBound::zero();
        assert_eq!(b.at(1e9), 0.0);
    }

    #[test]
    fn add_task_accumulates_constant_and_slope() {
        let mut b = InterferenceBound::zero();
        b.add_task(Time::from_millis(5), Time::from_millis(20));
        b.add_task(Time::from_millis(10), Time::from_millis(100));
        // constant = 15 ms in ticks, slope = 0.25 + 0.1.
        assert!((b.constant - 15_000.0).abs() < 1e-9);
        assert!((b.slope - 0.35).abs() < 1e-12);
        // I(T = 40 ms) = 15 + 0.35·40 = 29 ms.
        assert!((b.at(40_000.0) - 29_000.0).abs() < 1e-6);
    }

    #[test]
    fn bound_matches_eq5_for_a_concrete_partition() {
        // Two RT tasks on core 0, one on core 1.
        let rt_tasks: TaskSet = vec![rt(5, 20), rt(10, 100), rt(8, 40)]
            .into_iter()
            .collect();
        let mut partition = Partition::new(3, 2);
        partition.assign(TaskId(0), CoreId(0));
        partition.assign(TaskId(1), CoreId(0));
        partition.assign(TaskId(2), CoreId(1));

        let on0 = rt_interference_on(&rt_tasks, &partition, CoreId(0));
        assert!((on0.constant - 15_000.0).abs() < 1e-9);
        assert!((on0.slope - 0.35).abs() < 1e-12);

        let on1 = rt_interference_on(&rt_tasks, &partition, CoreId(1));
        assert!((on1.constant - 8_000.0).abs() < 1e-9);
        assert!((on1.slope - 0.2).abs() < 1e-12);

        // Eq. (5) with T_s = 60 ms on core 0:
        // (1 + 60/20)·5 + (1 + 60/100)·10 = 20 + 16 = 36 ms.
        let t_s = 60_000.0;
        assert!((on0.at(t_s) - 36_000.0).abs() < 1e-6);
    }

    #[test]
    fn security_interference_uses_granted_periods() {
        let hi = sec(30, 1000, 10_000);
        let granted = Time::from_millis(2_000);
        let b = security_interference([(&hi, granted)]);
        assert!((b.constant - 30_000.0).abs() < 1e-9);
        assert!((b.slope - 0.015).abs() < 1e-12);
    }

    #[test]
    fn plus_combines_bounds() {
        let mut a = InterferenceBound::zero();
        a.add_task(Time::from_millis(2), Time::from_millis(10));
        let mut b = InterferenceBound::zero();
        b.add_task(Time::from_millis(3), Time::from_millis(30));
        let c = a.plus(&b);
        assert!((c.constant - 5_000.0).abs() < 1e-9);
        assert!((c.slope - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_core_has_no_rt_interference() {
        let rt_tasks: TaskSet = vec![rt(5, 20)].into_iter().collect();
        let mut partition = Partition::new(1, 2);
        partition.assign(TaskId(0), CoreId(0));
        let on1 = rt_interference_on(&rt_tasks, &partition, CoreId(1));
        assert_eq!(on1, InterferenceBound::zero());
    }

    #[test]
    #[should_panic(expected = "positive period")]
    fn zero_period_interferer_panics() {
        let mut b = InterferenceBound::zero();
        b.add_task(Time::from_millis(1), Time::ZERO);
    }
}
