//! Joint period optimisation for all security tasks sharing one core.
//!
//! HYDRA fixes periods one task at a time (each task gets the smallest
//! feasible period on its chosen core). The *optimal* baseline of Section
//! IV-B.2 instead enumerates every assignment and, per assignment, chooses
//! the whole period vector `T` that maximises the cumulative weighted
//! tightness `Σ ω_s · T_s^des / T_s` — occasionally it pays off to stretch a
//! high-priority security task's period beyond its individual optimum so that
//! the tasks below it suffer less interference.
//!
//! This module implements that per-core joint optimisation:
//!
//! 1. the *greedy* solution (every task at its smallest feasible period in
//!    priority order) — exactly what HYDRA would produce for the same
//!    assignment, and always a feasible starting point;
//! 2. a *coordinate-ascent refinement*: repeatedly sweep the tasks from the
//!    highest priority down, scanning a log-spaced grid of candidate periods
//!    for each task while re-optimising every lower-priority task greedily,
//!    and keep any change that improves the cumulative weighted tightness.
//!
//! The refinement never returns something worse than the greedy solution, so
//! the "optimal" allocator built on top of it is guaranteed to dominate HYDRA
//! on the same workload (the property the paper's Figure 3 relies on), while
//! approaching the true joint optimum closely for the small task counts used
//! in that experiment.

use rt_core::batch::{BatchMode, LANES};
use rt_core::Time;

use crate::allocation::{Allocation, AllocationProblem, SecurityPlacement};
use crate::batch::LaneBounds;
use crate::interference::{rt_interference_on, InterferenceBound};
use crate::security::SecurityTask;

/// Parameters of the coordinate-ascent refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointOptions {
    /// Number of log-spaced candidate periods scanned per task per pass.
    pub grid_points: usize,
    /// Maximum number of full sweeps over the tasks.
    pub max_passes: usize,
    /// Stop when a full pass improves the objective by less than this.
    pub improvement_tolerance: f64,
}

impl Default for JointOptions {
    fn default() -> Self {
        JointOptions {
            grid_points: 24,
            max_passes: 8,
            improvement_tolerance: 1e-9,
        }
    }
}

impl JointOptions {
    /// Disables the refinement entirely: the result is exactly the greedy
    /// (HYDRA-style) period vector. Used by ablation benches.
    #[must_use]
    pub fn greedy_only() -> Self {
        JointOptions {
            grid_points: 0,
            max_passes: 0,
            improvement_tolerance: 0.0,
        }
    }
}

/// Result of the per-core joint optimisation.
#[derive(Debug, Clone, PartialEq)]
pub struct CorePlan {
    /// Granted periods, one per input task, in the same order as the input
    /// (which must be priority order, highest first).
    pub periods: Vec<Time>,
    /// Cumulative weighted tightness `Σ ω_s · η_s` of this plan.
    pub weighted_tightness: f64,
}

fn greedy_periods(tasks: &[&SecurityTask], rt_bound: &InterferenceBound) -> Option<Vec<f64>> {
    let mut periods = Vec::with_capacity(tasks.len());
    for (i, task) in tasks.iter().enumerate() {
        let mut bound = *rt_bound;
        for (j, hp) in tasks.iter().enumerate().take(i) {
            bound.add_task(hp.wcet(), Time::from_ticks(periods[j] as u64));
        }
        let lower = task.desired_period().as_ticks() as f64;
        let upper = task.max_period().as_ticks() as f64;
        let a = task.wcet().as_ticks() as f64 + bound.constant;
        let b = bound.slope;
        let p = gp_solver::scalar::minimize_linear_fractional(lower, upper, a, b).value()?;
        periods.push(p.ceil());
    }
    Some(periods)
}

/// Greedy periods for the lower-priority suffix `tasks[from..]`, given the
/// already-fixed periods of `tasks[..from]`. Returns `None` if any suffix
/// task becomes infeasible.
fn regreedify_suffix(
    tasks: &[&SecurityTask],
    rt_bound: &InterferenceBound,
    periods: &mut [f64],
    from: usize,
) -> bool {
    for i in from..tasks.len() {
        let mut bound = *rt_bound;
        for j in 0..i {
            bound.add_task(tasks[j].wcet(), Time::from_ticks(periods[j] as u64));
        }
        let task = tasks[i];
        let lower = task.desired_period().as_ticks() as f64;
        let upper = task.max_period().as_ticks() as f64;
        let a = task.wcet().as_ticks() as f64 + bound.constant;
        let b = bound.slope;
        match gp_solver::scalar::minimize_linear_fractional(lower, upper, a, b).value() {
            Some(p) => periods[i] = p.ceil(),
            None => return false,
        }
    }
    true
}

fn weighted_tightness(tasks: &[&SecurityTask], periods: &[f64]) -> f64 {
    tasks
        .iter()
        .zip(periods)
        .map(|(task, &p)| task.weight() * task.tightness(Time::from_ticks(p as u64)))
        .sum()
}

/// Lane-batched candidate scan for the coordinate-ascent refinement of task
/// `i`: evaluates the log-spaced grid in [`LANES`]-wide chunks, each lane
/// re-greedifying the lower-priority suffix against its own running
/// [`LaneBounds`] accumulator.
///
/// Bit-identity with the scalar scan: `prefix_bound` already folded rows
/// `0..i` minus the candidate, so seeding every lane from it and then adding
/// row `i` (the lane's candidate) followed by the suffix rows in order
/// replays exactly the `f64` sequence `regreedify_suffix` rebuilds per row.
/// Likewise the objective is accumulated as the same left fold
/// `weighted_tightness` computes: shared prefix sum, then rows `i..` in
/// order. Candidate values do not depend on the running `best`, so folding
/// lane verdicts in ascending grid order reproduces the scalar acceptance.
///
/// Returns `Some((new_best, best_candidate))` when some candidate improves on
/// `best` by more than the tolerance.
#[allow(clippy::too_many_arguments)]
fn scan_grid_batched(
    tasks: &[&SecurityTask],
    prefix_bound: &InterferenceBound,
    periods: &[f64],
    i: usize,
    lo: f64,
    ratio: f64,
    options: &JointOptions,
    best: f64,
) -> Option<(f64, f64)> {
    let task = tasks[i];
    let mut prefix_value = 0.0;
    for j in 0..i {
        prefix_value += tasks[j].weight() * tasks[j].tightness(Time::from_ticks(periods[j] as u64));
    }
    let mut best = best;
    let mut best_candidate = 0.0;
    let mut improved = false;
    let mut g0 = 0;
    while g0 < options.grid_points {
        let lanes = (options.grid_points - g0).min(LANES);
        let mut bounds = LaneBounds::splat(prefix_bound);
        let mut feasible = [true; LANES];
        let mut value = [0.0f64; LANES];
        let mut cand = [0.0f64; LANES];
        for (lane, (v, c)) in value
            .iter_mut()
            .zip(cand.iter_mut())
            .enumerate()
            .take(lanes)
        {
            let g = g0 + lane;
            let frac = g as f64 / (options.grid_points - 1) as f64;
            *c = (lo * ratio.powf(frac)).ceil();
            let granted = Time::from_ticks(*c as u64);
            bounds.add_task(lane, task.wcet(), granted);
            *v = prefix_value + task.weight() * task.tightness(granted);
        }
        for &lp in &tasks[i + 1..] {
            let lower = lp.desired_period().as_ticks() as f64;
            let upper = lp.max_period().as_ticks() as f64;
            let base_a = lp.wcet().as_ticks() as f64;
            for lane in 0..lanes {
                if !feasible[lane] {
                    continue;
                }
                let a = base_a + bounds.constant[lane];
                let b = bounds.slope[lane];
                match gp_solver::scalar::minimize_linear_fractional(lower, upper, a, b).value() {
                    Some(p) => {
                        let granted = Time::from_ticks(p.ceil() as u64);
                        bounds.add_task(lane, lp.wcet(), granted);
                        value[lane] += lp.weight() * lp.tightness(granted);
                    }
                    None => feasible[lane] = false,
                }
            }
        }
        for lane in 0..lanes {
            if feasible[lane] && value[lane] > best + options.improvement_tolerance {
                best = value[lane];
                best_candidate = cand[lane];
                improved = true;
            }
        }
        g0 += lanes;
    }
    improved.then_some((best, best_candidate))
}

/// Jointly optimises the periods of `tasks` (priority order, highest first)
/// sharing a core whose real-time interference is `rt_bound`.
///
/// Returns `None` when even the greedy assignment is infeasible — i.e. no
/// period vector within the `[T^des, T^max]` boxes satisfies every
/// schedulability constraint on this core.
#[must_use]
pub fn optimize_core_periods(
    tasks: &[&SecurityTask],
    rt_bound: &InterferenceBound,
    options: &JointOptions,
) -> Option<CorePlan> {
    optimize_core_periods_with_mode(tasks, rt_bound, options, BatchMode::Batch)
}

/// [`optimize_core_periods`] with an explicit kernel mode.
///
/// [`BatchMode::Scalar`] runs the one-candidate-at-a-time reference loop and
/// serves as the differential oracle; [`BatchMode::Batch`] evaluates the
/// candidate grid in [`LANES`]-wide chunks with structure-of-arrays
/// [`LaneBounds`]. Both modes produce bit-identical plans: every lane
/// performs the same `f64` operations in the same order as the scalar
/// rebuild for the same candidate.
#[must_use]
pub fn optimize_core_periods_with_mode(
    tasks: &[&SecurityTask],
    rt_bound: &InterferenceBound,
    options: &JointOptions,
    mode: BatchMode,
) -> Option<CorePlan> {
    if tasks.is_empty() {
        return Some(CorePlan {
            periods: Vec::new(),
            weighted_tightness: 0.0,
        });
    }
    let mut periods = greedy_periods(tasks, rt_bound)?;
    let mut best = weighted_tightness(tasks, &periods);

    if options.grid_points >= 2 && options.max_passes > 0 && tasks.len() > 1 {
        for _pass in 0..options.max_passes {
            let before = best;
            // The lowest-priority task never benefits from stretching its own
            // period (nobody is below it), so sweep all but the last.
            for i in 0..tasks.len() - 1 {
                let task = tasks[i];
                // The smallest feasible period for task i given the current
                // higher-priority periods.
                let mut bound = *rt_bound;
                for j in 0..i {
                    bound.add_task(tasks[j].wcet(), Time::from_ticks(periods[j] as u64));
                }
                let lower = task.desired_period().as_ticks() as f64;
                let upper = task.max_period().as_ticks() as f64;
                let a = task.wcet().as_ticks() as f64 + bound.constant;
                let b = bound.slope;
                let Some(min_feasible) =
                    gp_solver::scalar::minimize_linear_fractional(lower, upper, a, b).value()
                else {
                    continue;
                };
                let lo = min_feasible.max(lower);
                let hi = upper;
                if hi <= lo {
                    continue;
                }
                let ratio = hi / lo;
                let mut improved_here = false;
                let mut best_candidate = periods[i];
                match mode {
                    BatchMode::Scalar => {
                        let mut scratch = periods.clone();
                        for g in 0..options.grid_points {
                            let frac = g as f64 / (options.grid_points - 1) as f64;
                            let candidate = (lo * ratio.powf(frac)).ceil();
                            scratch.copy_from_slice(&periods);
                            scratch[i] = candidate;
                            if !regreedify_suffix(tasks, rt_bound, &mut scratch, i + 1) {
                                continue;
                            }
                            let value = weighted_tightness(tasks, &scratch);
                            if value > best + options.improvement_tolerance {
                                best = value;
                                best_candidate = candidate;
                                improved_here = true;
                            }
                        }
                    }
                    BatchMode::Batch => {
                        if let Some((new_best, candidate)) =
                            scan_grid_batched(tasks, &bound, &periods, i, lo, ratio, options, best)
                        {
                            best = new_best;
                            best_candidate = candidate;
                            improved_here = true;
                        }
                    }
                }
                if improved_here {
                    periods[i] = best_candidate;
                    let ok = regreedify_suffix(tasks, rt_bound, &mut periods, i + 1);
                    debug_assert!(ok, "accepted candidate must keep the suffix feasible");
                }
            }
            if best - before <= options.improvement_tolerance {
                break;
            }
        }
    }

    Some(CorePlan {
        periods: periods
            .iter()
            .map(|&p| Time::from_ticks(p as u64))
            .collect(),
        weighted_tightness: weighted_tightness(tasks, &periods),
    })
}

/// Re-optimises the security periods of a **finished** allocation, one core
/// at a time, keeping every core assignment fixed — the post-allocation
/// *period adaptation* pass of the follow-up work ("Period Adaptation for
/// Continuous Security Monitoring in Multicore Real-Time Systems",
/// Hasan et al., 2019).
///
/// With [`JointOptions::greedy_only`] every task on a core is re-granted its
/// smallest feasible period in priority order (the closed form of Eq. 7);
/// with the default options the coordinate-ascent refinement of
/// [`optimize_core_periods`] may additionally stretch a high-priority period
/// to recover tightness below it. Both passes use the base preemptive
/// interference model of Eq. (5); scheme-specific terms the allocator may
/// have accounted for (e.g. non-preemptive blocking) are not re-checked.
///
/// The pass is conservative per core: if re-optimisation of a core fails
/// (which cannot happen for plans produced under the same model, but guards
/// schemes with extra constraints), that core keeps the periods the
/// allocator granted. The returned allocation therefore always covers every
/// security task of the input.
#[must_use]
pub fn readapt_allocation(
    problem: &AllocationProblem,
    allocation: &Allocation,
    options: &JointOptions,
) -> Allocation {
    readapt_allocation_with_mode(problem, allocation, options, BatchMode::Batch)
}

/// [`readapt_allocation`] with an explicit kernel mode for the per-core
/// joint optimisation — see [`optimize_core_periods_with_mode`]. Both modes
/// produce bit-identical allocations.
#[must_use]
pub fn readapt_allocation_with_mode(
    problem: &AllocationProblem,
    allocation: &Allocation,
    options: &JointOptions,
    mode: BatchMode,
) -> Allocation {
    let partition = allocation.rt_partition();
    let mut placements: Vec<SecurityPlacement> =
        allocation.iter().map(|(_, placement)| *placement).collect();
    for core in partition.core_ids() {
        let mut ids = allocation.security_tasks_on(core);
        if ids.is_empty() {
            continue;
        }
        // Priority order (ascending T^max, ties by id) — the order every
        // per-core schedulability argument in this module assumes.
        ids.sort_by_key(|&id| (problem.security_tasks[id].max_period(), id.0));
        let tasks: Vec<&SecurityTask> = ids.iter().map(|&id| &problem.security_tasks[id]).collect();
        let rt_bound = rt_interference_on(&problem.rt_tasks, partition, core);
        if let Some(plan) = optimize_core_periods_with_mode(&tasks, &rt_bound, options, mode) {
            for (rank, &id) in ids.iter().enumerate() {
                let period = plan.periods[rank];
                placements[id.0] = SecurityPlacement {
                    core,
                    period,
                    tightness: problem.security_tasks[id].tightness(period),
                };
            }
        }
    }
    Allocation::new(partition.clone(), placements)
}

/// Whether the given period vector satisfies every schedulability constraint
/// (Eq. 6) and period bound (Eq. 4) for `tasks` (priority order) on a core
/// with real-time interference `rt_bound`. Used by tests and debug
/// assertions.
#[must_use]
pub fn plan_is_feasible(
    tasks: &[&SecurityTask],
    rt_bound: &InterferenceBound,
    periods: &[Time],
) -> bool {
    if tasks.len() != periods.len() {
        return false;
    }
    for (i, task) in tasks.iter().enumerate() {
        let period = periods[i];
        if period < task.desired_period() || period > task.max_period() {
            return false;
        }
        let mut bound = *rt_bound;
        for j in 0..i {
            bound.add_task(tasks[j].wcet(), periods[j]);
        }
        let t = period.as_ticks() as f64;
        let demand = task.wcet().as_ticks() as f64 + bound.at(t);
        if demand > t + 1.0 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::Allocator as _;

    fn sec(c_ms: u64, tdes_ms: u64, tmax_ms: u64) -> SecurityTask {
        SecurityTask::new(
            Time::from_millis(c_ms),
            Time::from_millis(tdes_ms),
            Time::from_millis(tmax_ms),
        )
        .unwrap()
    }

    fn bound(constant_ms: f64, slope: f64) -> InterferenceBound {
        InterferenceBound {
            constant: constant_ms * 1_000.0,
            slope,
        }
    }

    #[test]
    fn empty_core_is_trivially_optimal() {
        let plan =
            optimize_core_periods(&[], &bound(100.0, 0.5), &JointOptions::default()).unwrap();
        assert!(plan.periods.is_empty());
        assert_eq!(plan.weighted_tightness, 0.0);
    }

    #[test]
    fn single_task_matches_closed_form_adaptation() {
        let task = sec(100, 400, 4000);
        let b = bound(200.0, 0.4);
        let plan = optimize_core_periods(&[&task], &b, &JointOptions::default()).unwrap();
        assert_eq!(plan.periods, vec![Time::from_millis(500)]);
        assert!((plan.weighted_tightness - 0.8).abs() < 1e-9);
        assert!(plan_is_feasible(&[&task], &b, &plan.periods));
    }

    #[test]
    fn refinement_never_loses_to_greedy() {
        let t1 = sec(200, 1000, 40_000);
        let t2 = sec(150, 1000, 40_000);
        let t3 = sec(300, 2000, 60_000);
        let tasks = vec![&t1, &t2, &t3];
        let b = bound(300.0, 0.55);
        let greedy = optimize_core_periods(&tasks, &b, &JointOptions::greedy_only()).unwrap();
        let refined = optimize_core_periods(&tasks, &b, &JointOptions::default()).unwrap();
        assert!(refined.weighted_tightness >= greedy.weighted_tightness - 1e-12);
        assert!(plan_is_feasible(&tasks, &b, &refined.periods));
        assert!(plan_is_feasible(&tasks, &b, &greedy.periods));
    }

    #[test]
    fn refinement_beats_greedy_on_the_textbook_tradeoff() {
        // A high-priority task with a WCET close to its desired period
        // starves the task below it; stretching the first period recovers a
        // lot of tightness for the second.
        let hog = sec(900, 920, 100_000);
        let victim = sec(100, 2_000, 200_000);
        let tasks = vec![&hog, &victim];
        let b = InterferenceBound::zero();
        let greedy = optimize_core_periods(&tasks, &b, &JointOptions::greedy_only()).unwrap();
        let refined = optimize_core_periods(&tasks, &b, &JointOptions::default()).unwrap();
        assert!(
            refined.weighted_tightness > greedy.weighted_tightness + 0.05,
            "refined {} should clearly beat greedy {}",
            refined.weighted_tightness,
            greedy.weighted_tightness
        );
        assert!(plan_is_feasible(&tasks, &b, &refined.periods));
    }

    #[test]
    fn infeasible_core_returns_none() {
        let t1 = sec(600, 1000, 2_000);
        let t2 = sec(600, 1000, 2_000);
        let t3 = sec(600, 1000, 2_000);
        // Three tasks that each need more than half the core cannot coexist.
        let tasks = vec![&t1, &t2, &t3];
        assert_eq!(
            optimize_core_periods(&tasks, &InterferenceBound::zero(), &JointOptions::default()),
            None
        );
    }

    #[test]
    fn heavy_rt_interference_propagates_to_infeasibility() {
        let t = sec(100, 1000, 5_000);
        assert_eq!(
            optimize_core_periods(&[&t], &bound(0.0, 1.0), &JointOptions::default()),
            None
        );
    }

    #[test]
    fn plan_feasibility_rejects_bad_vectors() {
        let t1 = sec(100, 1000, 10_000);
        let t2 = sec(100, 1000, 10_000);
        let tasks = vec![&t1, &t2];
        let b = InterferenceBound::zero();
        // Wrong length.
        assert!(!plan_is_feasible(&tasks, &b, &[Time::from_millis(1000)]));
        // Below the desired period.
        assert!(!plan_is_feasible(
            &tasks,
            &b,
            &[Time::from_millis(500), Time::from_millis(1000)]
        ));
        // Fine vector.
        assert!(plan_is_feasible(
            &tasks,
            &b,
            &[Time::from_millis(1000), Time::from_millis(1300)]
        ));
    }

    #[test]
    fn saturated_greedy_leaves_nothing_for_the_refinement() {
        // Every task reaches tightness 1 greedily (no interference worth
        // mentioning): the refinement and the iterative GP fallback must
        // terminate without changing anything — there is no headroom left.
        let t1 = sec(10, 5_000, 50_000);
        let t2 = sec(20, 8_000, 80_000);
        let tasks = vec![&t1, &t2];
        let b = bound(1.0, 0.01);
        let greedy = optimize_core_periods(&tasks, &b, &JointOptions::greedy_only()).unwrap();
        assert!((greedy.weighted_tightness - 2.0).abs() < 1e-12);
        let refined = optimize_core_periods(&tasks, &b, &JointOptions::default()).unwrap();
        assert_eq!(refined.periods, greedy.periods);
        // The GP solver agrees per task: with greedy already saturated it
        // must fall back to the same desired periods, not "improve" them.
        for task in &tasks {
            let gp = crate::period::adapt_period_gp(task, &b, &gp_solver::SolverOptions::default())
                .unwrap();
            assert_eq!(gp.period, task.desired_period());
            assert_eq!(gp.tightness, 1.0);
        }
    }

    #[test]
    fn zero_slack_tasks_round_trip_through_the_optimiser() {
        // T^des == T^max: the only admissible period is T^max itself, so the
        // plan either grants exactly that or reports infeasibility.
        let pinned = sec(50, 2_000, 2_000);
        let plan = optimize_core_periods(&[&pinned], &bound(100.0, 0.3), &JointOptions::default())
            .unwrap();
        assert_eq!(plan.periods, vec![Time::from_millis(2_000)]);
        // Interference pushing the requirement past T^max is infeasible.
        assert_eq!(
            optimize_core_periods(&[&pinned], &bound(1_500.0, 0.5), &JointOptions::default()),
            None
        );
    }

    fn readapt_problem() -> AllocationProblem {
        use rt_core::{RtTask, TaskSet};
        let rt_tasks: TaskSet =
            vec![RtTask::implicit_deadline(Time::from_millis(40), Time::from_millis(100)).unwrap()]
                .into_iter()
                .collect();
        let sec_tasks = vec![sec(900, 920, 100_000), sec(100, 2_000, 200_000)]
            .into_iter()
            .collect();
        AllocationProblem::new(rt_tasks, sec_tasks, 1)
    }

    #[test]
    fn readapting_a_hydra_allocation_greedily_is_a_fixed_point() {
        // HYDRA grants minimal feasible periods in priority order, so the
        // greedy re-adaptation pass reproduces its allocation exactly.
        let problem = readapt_problem();
        let fixed = crate::allocator::HydraAllocator::default()
            .allocate(&problem)
            .unwrap();
        let adapted = readapt_allocation(&problem, &fixed, &JointOptions::greedy_only());
        assert_eq!(adapted, fixed);
    }

    #[test]
    fn joint_readaptation_dominates_the_fixed_allocation() {
        // The hog/victim geometry: the joint pass stretches the hog's period
        // and recovers strictly more cumulative tightness than HYDRA fixed.
        let problem = readapt_problem();
        let fixed = crate::allocator::HydraAllocator::default()
            .allocate(&problem)
            .unwrap();
        let joint = readapt_allocation(&problem, &fixed, &JointOptions::default());
        let sec_set = &problem.security_tasks;
        assert!(
            joint.cumulative_tightness(sec_set) > fixed.cumulative_tightness(sec_set) + 0.05,
            "joint {} should clearly beat fixed {}",
            joint.cumulative_tightness(sec_set),
            fixed.cumulative_tightness(sec_set)
        );
        // Core assignments never move; only periods do.
        for (id, placement) in joint.iter() {
            assert_eq!(placement.core, fixed.placement(id).core);
        }
    }

    #[test]
    fn readapting_an_empty_allocation_is_a_no_op() {
        let problem = AllocationProblem::new(
            crate::casestudy::uav_rt_tasks(),
            crate::security::SecurityTaskSet::empty(),
            2,
        );
        let empty = crate::allocator::HydraAllocator::default()
            .allocate(&problem)
            .unwrap();
        let readapted = readapt_allocation(&problem, &empty, &JointOptions::default());
        assert!(readapted.is_empty());
        assert_eq!(readapted, empty);
    }

    /// A grab bag of refinement-relevant geometries: interference-heavy,
    /// weight-skewed, hog/victim, and near-saturated cores.
    fn differential_fixtures() -> Vec<(Vec<SecurityTask>, InterferenceBound)> {
        vec![
            (
                vec![
                    sec(200, 1000, 40_000),
                    sec(150, 1000, 40_000),
                    sec(300, 2000, 60_000),
                ],
                bound(300.0, 0.55),
            ),
            (
                vec![sec(900, 920, 100_000), sec(100, 2_000, 200_000)],
                InterferenceBound::zero(),
            ),
            (
                vec![
                    sec(900, 920, 100_000).with_weight(100.0).unwrap(),
                    sec(100, 2_000, 200_000),
                ],
                InterferenceBound::zero(),
            ),
            (
                vec![
                    sec(120, 800, 30_000),
                    sec(340, 1500, 45_000),
                    sec(60, 600, 20_000),
                    sec(500, 4_000, 90_000),
                    sec(75, 900, 12_000),
                ],
                bound(150.0, 0.4),
            ),
            (
                vec![sec(10, 5_000, 50_000), sec(20, 8_000, 80_000)],
                bound(1.0, 0.01),
            ),
        ]
    }

    #[test]
    fn batched_grid_scan_is_bit_identical_to_scalar() {
        use rt_core::batch::BatchMode;
        for (grid_points, max_passes) in [(24, 8), (9, 3), (2, 1), (8, 8), (17, 2)] {
            let opts = JointOptions {
                grid_points,
                max_passes,
                improvement_tolerance: 1e-9,
            };
            for (tasks, b) in differential_fixtures() {
                let refs: Vec<&SecurityTask> = tasks.iter().collect();
                let batch = optimize_core_periods_with_mode(&refs, &b, &opts, BatchMode::Batch);
                let scalar = optimize_core_periods_with_mode(&refs, &b, &opts, BatchMode::Scalar);
                match (&batch, &scalar) {
                    (Some(bp), Some(sp)) => {
                        assert_eq!(bp.periods, sp.periods, "grid {grid_points}");
                        // PartialEq on f64 would accept -0.0 == 0.0 etc.;
                        // compare the bit patterns to pin true identity.
                        assert_eq!(
                            bp.weighted_tightness.to_bits(),
                            sp.weighted_tightness.to_bits(),
                            "grid {grid_points}"
                        );
                    }
                    (None, None) => {}
                    _ => panic!("feasibility verdicts diverged at grid {grid_points}"),
                }
            }
        }
    }

    #[test]
    fn batched_readaptation_matches_scalar() {
        use rt_core::batch::BatchMode;
        let problem = readapt_problem();
        let fixed = crate::allocator::HydraAllocator::default()
            .allocate(&problem)
            .unwrap();
        for opts in [JointOptions::default(), JointOptions::greedy_only()] {
            let batch = readapt_allocation_with_mode(&problem, &fixed, &opts, BatchMode::Batch);
            let scalar = readapt_allocation_with_mode(&problem, &fixed, &opts, BatchMode::Scalar);
            assert_eq!(batch, scalar);
        }
    }

    #[test]
    fn weights_steer_the_refinement() {
        // Same geometry as the textbook trade-off, but the hog carries a huge
        // weight: stretching it is now a bad deal and the refinement should
        // keep its period near the greedy choice.
        let hog = sec(900, 920, 100_000).with_weight(100.0).unwrap();
        let victim = sec(100, 2_000, 200_000);
        let tasks = vec![&hog, &victim];
        let plan =
            optimize_core_periods(&tasks, &InterferenceBound::zero(), &JointOptions::default())
                .unwrap();
        let hog_tightness = hog.tightness(plan.periods[0]);
        assert!(
            hog_tightness > 0.95,
            "heavily-weighted task should keep a tight period, got η = {hog_tightness}"
        );
    }
}
