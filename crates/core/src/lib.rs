//! # hydra-core — allocating security tasks in multicore real-time systems
//!
//! This crate implements the primary contribution of
//! *"A Design-Space Exploration for Allocating Security Tasks in Multicore
//! Real-Time Systems"* (Hasan, Mohan, Pellizzoni & Bobba, DATE 2018):
//! **HYDRA**, an iterative algorithm that jointly chooses, for each sporadic
//! security task, the core it runs on and the period it runs with, such that
//!
//! * the existing real-time tasks (already partitioned and schedulable) are
//!   never perturbed — security tasks run opportunistically at a priority
//!   below every real-time task, and
//! * each security task's period stays as close as possible to the period the
//!   designer asked for (the *tightness* metric `η_s = T_s^des / T_s`).
//!
//! Alongside HYDRA the crate provides the two comparison points used in the
//! paper's evaluation: the **SingleCore** scheme (a core dedicated to
//! security) and the exhaustive **Optimal** scheme, plus the security task
//! model, the interference analysis of Eq. (5), the period-adaptation problem
//! of Eq. (7), and the Table I / UAV case-study workloads.
//!
//! # Quick start
//!
//! ```
//! use hydra_core::allocator::{Allocator, HydraAllocator, SingleCoreAllocator};
//! use hydra_core::{casestudy, catalog, AllocationProblem};
//!
//! # fn main() -> Result<(), hydra_core::AllocationError> {
//! let problem = AllocationProblem::new(
//!     casestudy::uav_rt_tasks(),
//!     catalog::table1_tasks(),
//!     4,
//! );
//! let hydra = HydraAllocator::default().allocate(&problem)?;
//! let single = SingleCoreAllocator::default().allocate(&problem)?;
//! let sec = &problem.security_tasks;
//! assert!(hydra.cumulative_tightness(sec) >= single.cumulative_tightness(sec) - 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocation;
pub mod allocator;
pub mod batch;
pub mod casestudy;
pub mod catalog;
pub mod interference;
pub mod joint;
pub mod metrics;
pub mod nonpreemptive;
pub mod period;
pub mod precedence;
pub mod security;
pub mod sensitivity;

pub use allocation::{Allocation, AllocationError, AllocationProblem, SecurityPlacement};
pub use allocator::{
    Allocator, CoreSelection, HydraAllocator, OptimalAllocator, SingleCoreAllocator,
};
pub use batch::LaneBounds;
pub use interference::InterferenceBound;
pub use joint::{readapt_allocation, readapt_allocation_with_mode, JointOptions};
pub use nonpreemptive::NpHydraAllocator;
pub use period::PeriodChoice;
pub use precedence::{PrecedenceGraph, PrecedenceHydraAllocator};
pub use security::ExecutionMode;
pub use security::{SecurityTask, SecurityTaskError, SecurityTaskId, SecurityTaskSet};
