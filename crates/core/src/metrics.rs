//! Metrics used by the paper's evaluation: acceptance ratios (Figure 2) and
//! cumulative-tightness comparisons (Figure 3).

/// Counts schedulable / total trials and exposes the acceptance ratio
/// `δ = schedulable / generated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AcceptanceCounter {
    accepted: u64,
    total: u64,
}

impl AcceptanceCounter {
    /// Creates an empty counter.
    #[must_use]
    pub fn new() -> Self {
        AcceptanceCounter::default()
    }

    /// Reconstructs a counter from raw counts (e.g. when restoring a
    /// checkpointed partial aggregate).
    ///
    /// # Panics
    ///
    /// Panics if `accepted > total`.
    #[must_use]
    pub fn from_counts(accepted: u64, total: u64) -> Self {
        assert!(
            accepted <= total,
            "accepted ({accepted}) cannot exceed total ({total})"
        );
        AcceptanceCounter { accepted, total }
    }

    /// Records one trial.
    pub fn record(&mut self, accepted: bool) {
        self.total += 1;
        if accepted {
            self.accepted += 1;
        }
    }

    /// Number of accepted (schedulable) trials.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of recorded trials.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Acceptance ratio in `[0, 1]`; `0` when no trial was recorded.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.accepted as f64 / self.total as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &AcceptanceCounter) {
        self.accepted += other.accepted;
        self.total += other.total;
    }
}

/// The improvement metric of Figure 2,
/// `(δ_baseline − δ_candidate)/δ_baseline × 100 %`, where in the paper the
/// baseline is SingleCore and the candidate is HYDRA and the quantity
/// reported is the *reduction in rejected task sets*; the paper plots the
/// improvement of HYDRA over SingleCore, which is positive when HYDRA accepts
/// more task sets.
///
/// Here we follow the figure's caption literally with `baseline = SingleCore`
/// and `candidate = HYDRA` acceptance *failure* ratios: the improvement is
/// `(fail_single − fail_hydra)/fail_single × 100 %`, which is `0` when both
/// schemes accept everything and approaches `100 %` when HYDRA accepts
/// workloads SingleCore always rejects. When the baseline never fails the
/// improvement is defined as `0`.
#[must_use]
pub fn acceptance_improvement_percent(accept_hydra: f64, accept_single: f64) -> f64 {
    let fail_hydra = (1.0 - accept_hydra).max(0.0);
    let fail_single = (1.0 - accept_single).max(0.0);
    if fail_single <= f64::EPSILON {
        0.0
    } else {
        ((fail_single - fail_hydra) / fail_single * 100.0).clamp(-100.0, 100.0)
    }
}

/// The Figure 3 metric: relative difference in cumulative tightness,
/// `Δη = (η_OPT − η_HYDRA)/η_OPT × 100 %`. Zero when both are equal or when
/// the optimal value is zero.
#[must_use]
pub fn tightness_gap_percent(eta_optimal: f64, eta_hydra: f64) -> f64 {
    if eta_optimal <= f64::EPSILON {
        0.0
    } else {
        ((eta_optimal - eta_hydra) / eta_optimal * 100.0).max(0.0)
    }
}

/// Arithmetic mean of a slice; `0` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation of a slice; `0` for fewer than two samples.
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// The `p`-th percentile (0–100) of a slice using linear interpolation;
/// `0` for an empty slice.
///
/// Clones and sorts the input. On a hot path where the caller already holds
/// sorted data, use [`percentile_sorted`] instead.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 100]`.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_sorted(&sorted, p)
}

/// The `p`-th percentile (0–100) of an **already ascending-sorted** slice
/// using linear interpolation; `0` for an empty slice. No allocation, no
/// re-sort — the hot-path sibling of [`percentile`].
///
/// # Panics
///
/// Panics if `p` is not within `[0, 100]`. Debug builds additionally assert
/// that the slice is sorted.
#[must_use]
pub fn percentile_sorted(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    debug_assert!(
        values.windows(2).all(|w| w[0] <= w[1]),
        "percentile_sorted requires ascending-sorted input"
    );
    match values {
        [] => 0.0,
        [only] => *only,
        _ => {
            let rank = p / 100.0 * (values.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            values[lo] + (values[hi] - values[lo]) * frac
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_counter_basics() {
        let mut c = AcceptanceCounter::new();
        assert_eq!(c.ratio(), 0.0);
        c.record(true);
        c.record(true);
        c.record(false);
        assert_eq!(c.accepted(), 2);
        assert_eq!(c.total(), 3);
        assert!((c.ratio() - 2.0 / 3.0).abs() < 1e-12);
        let mut d = AcceptanceCounter::new();
        d.record(false);
        c.merge(&d);
        assert_eq!(c.total(), 4);
        assert!((c.ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn improvement_is_zero_when_both_accept_everything() {
        assert_eq!(acceptance_improvement_percent(1.0, 1.0), 0.0);
    }

    #[test]
    fn improvement_is_large_when_hydra_rescues_rejected_sets() {
        // SingleCore accepts 20%, HYDRA accepts 90%: HYDRA removes 7/8 of the
        // failures.
        let imp = acceptance_improvement_percent(0.9, 0.2);
        assert!((imp - 87.5).abs() < 1e-9);
    }

    #[test]
    fn improvement_can_be_negative_when_hydra_is_worse() {
        let imp = acceptance_improvement_percent(0.5, 0.75);
        assert!(imp < 0.0);
        assert!(imp >= -100.0);
    }

    #[test]
    fn tightness_gap_basics() {
        assert_eq!(tightness_gap_percent(0.0, 0.0), 0.0);
        assert_eq!(tightness_gap_percent(2.0, 2.0), 0.0);
        assert!((tightness_gap_percent(2.0, 1.5) - 25.0).abs() < 1e-12);
        // The gap is clipped at zero: numerical noise must never make HYDRA
        // look better than optimal.
        assert_eq!(tightness_gap_percent(2.0, 2.0000001), 0.0);
    }

    #[test]
    fn mean_std_and_percentile() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&v) - 2.5).abs() < 1e-12);
        assert!((std_dev(&v) - 1.2909944487).abs() < 1e-9);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 90.0), 7.0);
        assert!((percentile(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&v, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_sorted_matches_percentile_on_sorted_input() {
        let unsorted = [4.0, 1.0, 3.0, 2.0, 9.0];
        let mut sorted = unsorted;
        sorted.sort_by(f64::total_cmp);
        for p in [0.0, 12.5, 50.0, 95.0, 100.0] {
            assert_eq!(percentile(&unsorted, p), percentile_sorted(&sorted, p));
        }
        assert_eq!(percentile_sorted(&[], 50.0), 0.0);
        assert_eq!(percentile_sorted(&[7.0], 90.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_sorted_out_of_range_panics() {
        let _ = percentile_sorted(&[1.0], -1.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_out_of_range_panics() {
        let _ = percentile(&[1.0], 150.0);
    }
}
