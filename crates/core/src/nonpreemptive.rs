//! Blocking-aware allocation for non-preemptive security tasks
//! (Section V extension).
//!
//! The base HYDRA model keeps security tasks fully preemptive, which is what
//! guarantees they can never perturb the real-time workload. If a security
//! check must run non-preemptively (e.g. to observe a consistent snapshot),
//! it can block *every* task on its core — real-time tasks included — for up
//! to its own WCET. The [`NpHydraAllocator`] therefore extends Algorithm 1
//! with three additional obligations when it considers hosting a
//! non-preemptive security task `τ_s` (WCET `C_s`) on core `π_m`:
//!
//! 1. every **real-time task** on `π_m` must stay schedulable under the
//!    blocking-aware response-time recurrence `R = C + B + Σ ⌈R/T⌉·C` with
//!    `B = max(C_s, existing non-preemptive blocking on π_m)`;
//! 2. every **already-placed security task** on `π_m` (all of which have
//!    higher priority, because HYDRA walks tasks in priority order) must
//!    still meet its granted period once the new blocking term is added to
//!    its Eq. (6) constraint;
//! 3. the new task itself is admitted with the usual period-adaptation rule
//!    (its own non-preemptiveness does not change its *worst-case* response
//!    bound — the linear bound of Eq. (5) already covers the preemptions it
//!    no longer suffers).
//!
//! Cores violating any of these checks are simply excluded from the candidate
//! set for that task, so the real-time guarantees are preserved by
//! construction.

use rt_core::rta::response_time_with_blocking;
use rt_core::{RtTask, TaskSet, Time};
use rt_partition::{partition_tasks, CoreId, Partition};

use crate::allocation::{Allocation, AllocationError, AllocationProblem, SecurityPlacement};
use crate::allocator::Allocator;
use crate::interference::{rt_interference_on, security_interference, InterferenceBound};
use crate::period::{adapt_period, PeriodChoice};
use crate::security::{SecurityTaskId, SecurityTaskSet};

/// HYDRA with support for non-preemptive security tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NpHydraAllocator {
    _private: (),
}

impl NpHydraAllocator {
    /// Creates the allocator.
    #[must_use]
    pub fn new() -> Self {
        NpHydraAllocator::default()
    }

    /// Whether every real-time task on `core` tolerates `blocking` time units
    /// of priority inversion from a non-preemptive security task.
    fn rt_tasks_tolerate_blocking(
        rt_tasks: &TaskSet,
        partition: &Partition,
        core: CoreId,
        blocking: Time,
    ) -> bool {
        let members: Vec<&RtTask> = partition
            .iter_core(rt_tasks, core)
            .map(|(_, task)| task)
            .collect();
        // Rate-monotonic priorities among the real-time tasks on this core.
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.sort_by_key(|&i| members[i].period());
        for (rank, &idx) in order.iter().enumerate() {
            let task = members[idx];
            let interferers = order[..rank].iter().map(|&j| members[j]);
            let verdict = response_time_with_blocking(
                task.wcet(),
                task.deadline(),
                blocking,
                interferers.collect::<Vec<_>>(),
            );
            if !verdict.is_schedulable() {
                return false;
            }
        }
        true
    }

    /// Whether an already-granted security placement still satisfies its
    /// Eq. (6) constraint when `blocking` is added.
    fn placement_tolerates_blocking(
        task_wcet: Time,
        granted_period: Time,
        bound: &InterferenceBound,
        blocking: Time,
    ) -> bool {
        let t = granted_period.as_ticks() as f64;
        let demand = task_wcet.as_ticks() as f64 + blocking.as_ticks() as f64 + bound.at(t);
        demand <= t + 1.0
    }

    /// Runs the blocking-aware allocation against an already-partitioned
    /// real-time workload.
    ///
    /// # Errors
    ///
    /// Returns [`AllocationError::SecurityUnschedulable`] if some security
    /// task has no core that passes all blocking checks with a feasible
    /// period.
    pub fn allocate_with_partition(
        &self,
        rt_tasks: &TaskSet,
        rt_partition: &Partition,
        security_tasks: &SecurityTaskSet,
    ) -> Result<Allocation, AllocationError> {
        let cores = rt_partition.cores();
        let rt_bounds: Vec<InterferenceBound> = (0..cores)
            .map(|m| rt_interference_on(rt_tasks, rt_partition, CoreId(m)))
            .collect();

        // Per core: placed (id, choice) pairs and the largest non-preemptive
        // WCET placed so far (the blocking already imposed on that core).
        let mut placed: Vec<Vec<(SecurityTaskId, PeriodChoice)>> = vec![Vec::new(); cores];
        let mut np_blocking: Vec<Time> = vec![Time::ZERO; cores];
        let mut placements: Vec<Option<SecurityPlacement>> = vec![None; security_tasks.len()];

        for &sec_id in security_tasks.priority_order() {
            let task = &security_tasks[sec_id];
            let mut best: Option<(CoreId, PeriodChoice, f64)> = None;
            for m in 0..cores {
                let core = CoreId(m);
                let sec_bound = security_interference(
                    placed[m]
                        .iter()
                        .map(|(id, choice)| (&security_tasks[*id], choice.period)),
                );
                let bound = rt_bounds[m].plus(&sec_bound);

                // The blocking this task suffers from non-preemptive tasks
                // already on the core is at most np_blocking[m] only if those
                // tasks were lower priority — they are not (placement order is
                // by priority), so the task itself suffers no blocking yet.
                let Some(choice) = adapt_period(task, &bound) else {
                    continue;
                };

                if task.is_non_preemptive() {
                    let blocking = np_blocking[m].max(task.wcet());
                    // 1. Real-time tasks on this core must tolerate it.
                    if !Self::rt_tasks_tolerate_blocking(rt_tasks, rt_partition, core, blocking) {
                        continue;
                    }
                    // 2. Every higher-priority security task already granted a
                    //    period on this core must still fit.
                    let mut all_fit = true;
                    for (k, (placed_id, placed_choice)) in placed[m].iter().enumerate() {
                        let placed_task = &security_tasks[*placed_id];
                        // Interference seen by that task: RT plus the security
                        // tasks placed before it on the same core.
                        let hp_bound = rt_bounds[m].plus(&security_interference(
                            placed[m][..k]
                                .iter()
                                .map(|(id, c)| (&security_tasks[*id], c.period)),
                        ));
                        if !Self::placement_tolerates_blocking(
                            placed_task.wcet(),
                            placed_choice.period,
                            &hp_bound,
                            task.wcet(),
                        ) {
                            all_fit = false;
                            break;
                        }
                    }
                    if !all_fit {
                        continue;
                    }
                }

                let load = bound.slope;
                let better = match &best {
                    None => true,
                    Some((_, incumbent, incumbent_load)) => {
                        choice.tightness > incumbent.tightness + 1e-12
                            || ((choice.tightness - incumbent.tightness).abs() <= 1e-12
                                && load < incumbent_load - 1e-12)
                    }
                };
                if better {
                    best = Some((core, choice, load));
                }
            }
            match best {
                Some((core, choice, _)) => {
                    placed[core.0].push((sec_id, choice));
                    if task.is_non_preemptive() {
                        np_blocking[core.0] = np_blocking[core.0].max(task.wcet());
                    }
                    placements[sec_id.0] = Some(SecurityPlacement {
                        core,
                        period: choice.period,
                        tightness: choice.tightness,
                    });
                }
                None => return Err(AllocationError::SecurityUnschedulable { task: Some(sec_id) }),
            }
        }

        let placements: Vec<SecurityPlacement> = placements
            .into_iter()
            .map(|p| p.expect("every task was placed or we returned early"))
            .collect();
        Ok(Allocation::new(rt_partition.clone(), placements))
    }
}

impl Allocator for NpHydraAllocator {
    fn name(&self) -> &'static str {
        "HYDRA+non-preemptive"
    }

    fn allocate(&self, problem: &AllocationProblem) -> Result<Allocation, AllocationError> {
        let rt_partition =
            partition_tasks(&problem.rt_tasks, problem.cores, &problem.partition_config).map_err(
                |e| AllocationError::RtPartitionFailed {
                    task: e.task,
                    cores: problem.cores,
                },
            )?;
        self.allocate_with_partition(&problem.rt_tasks, &rt_partition, &problem.security_tasks)
    }

    fn allocate_with_rt_partition(
        &self,
        problem: &AllocationProblem,
        rt_partition: &Partition,
    ) -> Result<Allocation, AllocationError> {
        self.allocate_with_partition(&problem.rt_tasks, rt_partition, &problem.security_tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::HydraAllocator;
    use crate::security::SecurityTask;

    fn rt(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    fn sec(c_ms: u64, tdes_ms: u64, tmax_ms: u64) -> SecurityTask {
        SecurityTask::new(
            Time::from_millis(c_ms),
            Time::from_millis(tdes_ms),
            Time::from_millis(tmax_ms),
        )
        .unwrap()
    }

    #[test]
    fn all_preemptive_workload_matches_plain_hydra() {
        let problem = AllocationProblem::new(
            crate::casestudy::uav_rt_tasks(),
            crate::catalog::table1_tasks(),
            4,
        );
        let plain = HydraAllocator::default().allocate(&problem).unwrap();
        let np = NpHydraAllocator::default().allocate(&problem).unwrap();
        assert_eq!(plain, np);
    }

    #[test]
    fn non_preemptive_task_avoids_cores_with_tight_rt_deadlines() {
        // Core 0 hosts an RT task with a 10 ms deadline and 6 ms WCET: a
        // 300 ms non-preemptive check would wreck it, so the check must land
        // on the other core (which has a tolerant RT task).
        let rt_tasks: TaskSet = vec![rt(6, 10), rt(50, 1000)].into_iter().collect();
        let sec_tasks: SecurityTaskSet = vec![sec(300, 2000, 20_000).non_preemptive()]
            .into_iter()
            .collect();
        let problem = AllocationProblem::new(rt_tasks.clone(), sec_tasks, 2);
        let allocation = NpHydraAllocator::default().allocate(&problem).unwrap();
        let rt_partition = allocation.rt_partition();
        let tight_core = rt_partition.core_of(rt_core::TaskId(0)).unwrap();
        assert_ne!(
            allocation.core_of(SecurityTaskId(0)),
            tight_core,
            "non-preemptive check placed next to the tight-deadline RT task"
        );
    }

    #[test]
    fn non_preemptive_task_with_no_tolerant_core_is_rejected() {
        // Every core hosts a tight RT task; the long non-preemptive check can
        // go nowhere even though preemptive HYDRA would accept it.
        let rt_tasks: TaskSet = vec![rt(6, 10), rt(6, 10)].into_iter().collect();
        let sec_tasks_np: SecurityTaskSet = vec![sec(300, 2000, 20_000).non_preemptive()]
            .into_iter()
            .collect();
        let sec_tasks_p: SecurityTaskSet = vec![sec(300, 2000, 20_000)].into_iter().collect();
        let np_problem = AllocationProblem::new(rt_tasks.clone(), sec_tasks_np, 2);
        let p_problem = AllocationProblem::new(rt_tasks, sec_tasks_p, 2);
        assert!(matches!(
            NpHydraAllocator::default().allocate(&np_problem),
            Err(AllocationError::SecurityUnschedulable { task: Some(_) })
        ));
        assert!(NpHydraAllocator::default().allocate(&p_problem).is_ok());
        assert!(HydraAllocator::default().allocate(&np_problem).is_ok());
    }

    #[test]
    fn later_non_preemptive_task_cannot_break_an_earlier_placement() {
        // One idle core. The high-priority security task is admitted at its
        // desired period with almost no slack; a lower-priority non-preemptive
        // task whose WCET would violate that placement must be rejected
        // (there is no other core to move to).
        let hi = sec(900, 1000, 1_050);
        let np_lo = sec(600, 2000, 20_000).non_preemptive();
        let sec_tasks: SecurityTaskSet = vec![hi, np_lo].into_iter().collect();
        let problem = AllocationProblem::new(TaskSet::empty(), sec_tasks, 1);
        assert!(matches!(
            NpHydraAllocator::default().allocate(&problem),
            Err(AllocationError::SecurityUnschedulable {
                task: Some(SecurityTaskId(1))
            })
        ));
        // The same workload with a preemptive low-priority task is fine.
        let sec_tasks: SecurityTaskSet = vec![sec(900, 1000, 1_050), sec(600, 2000, 20_000)]
            .into_iter()
            .collect();
        let problem = AllocationProblem::new(TaskSet::empty(), sec_tasks, 1);
        assert!(NpHydraAllocator::default().allocate(&problem).is_ok());
    }

    #[test]
    fn second_core_rescues_the_conflicting_non_preemptive_task() {
        let hi = sec(900, 1000, 1_050);
        let np_lo = sec(600, 2000, 20_000).non_preemptive();
        let sec_tasks: SecurityTaskSet = vec![hi, np_lo].into_iter().collect();
        let problem = AllocationProblem::new(TaskSet::empty(), sec_tasks, 2);
        let allocation = NpHydraAllocator::default().allocate(&problem).unwrap();
        assert_ne!(
            allocation.core_of(SecurityTaskId(0)),
            allocation.core_of(SecurityTaskId(1))
        );
    }

    #[test]
    fn allocator_name_is_distinct() {
        assert_eq!(NpHydraAllocator::default().name(), "HYDRA+non-preemptive");
    }
}
