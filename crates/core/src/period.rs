//! Period adaptation for a single security task (Eq. 7).
//!
//! For a given core assignment, the best period of a security task `τ_s` is
//! the solution of
//!
//! ```text
//! maximise η_s = T_s^des / T_s
//! subject to  T_s^des ≤ T_s ≤ T_s^max,    C_s + I_s^m(T_s) ≤ T_s
//! ```
//!
//! The paper solves this as a geometric program; because the interference
//! bound is affine in `T_s` (see [`crate::interference`]) the problem has the
//! closed-form solution
//!
//! ```text
//! T_s* = max(T_s^des, (C_s + constant) / (1 − slope))
//! ```
//!
//! feasible iff `slope < 1` and `T_s* ≤ T_s^max`. [`adapt_period`] implements
//! the closed form (used on the allocator hot path);
//! [`adapt_period_gp`] solves the same instance with the iterative
//! [`gp_solver`] for cross-checking, mirroring the paper's GPkit/CVXOPT
//! pipeline.

use gp_solver::scalar::minimize_linear_fractional;
use gp_solver::{GpProblem, Monomial, Posynomial, SolverOptions};
use rt_core::Time;

use crate::interference::InterferenceBound;
use crate::security::SecurityTask;

/// The outcome of period adaptation for one security task on one candidate
/// core: the granted period and the resulting tightness `η_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodChoice {
    /// Granted period `T_s` (the smallest feasible period ≥ `T_s^des`).
    pub period: Time,
    /// Tightness `η_s = T_s^des / T_s ∈ (0, 1]`.
    pub tightness: f64,
}

impl PeriodChoice {
    /// Weighted contribution of this choice to the cumulative objective,
    /// `ω_s · η_s`.
    #[must_use]
    pub fn weighted_tightness(&self, task: &SecurityTask) -> f64 {
        task.weight() * self.tightness
    }
}

/// Solves Eq. (7) in closed form.
///
/// Returns `None` when no period in `[T^des, T^max]` satisfies the
/// schedulability constraint on the candidate core (the core is not a
/// feasible host for this task).
#[must_use]
pub fn adapt_period(task: &SecurityTask, interference: &InterferenceBound) -> Option<PeriodChoice> {
    let lower = task.desired_period().as_ticks() as f64;
    let upper = task.max_period().as_ticks() as f64;
    let a = task.wcet().as_ticks() as f64 + interference.constant;
    let b = interference.slope;
    let solution = minimize_linear_fractional(lower, upper, a, b).value()?;
    // Round up to a whole tick: this keeps the schedulability constraint
    // satisfied (larger periods only relax it) and stays within T^max because
    // the bound itself is ≤ the integral T^max.
    let period = Time::from_ticks(solution.ceil() as u64);
    debug_assert!(period <= task.max_period());
    Some(PeriodChoice {
        period,
        tightness: task.tightness(period),
    })
}

/// Solves the same instance as [`adapt_period`] with the iterative GP solver
/// (the path the paper takes via GPkit + CVXOPT). Intended for cross-checks
/// and the ablation bench; roughly three orders of magnitude slower than the
/// closed form.
#[must_use]
pub fn adapt_period_gp(
    task: &SecurityTask,
    interference: &InterferenceBound,
    options: &SolverOptions,
) -> Option<PeriodChoice> {
    // Work in milliseconds to keep the GP well-scaled regardless of the tick
    // resolution.
    const SCALE: f64 = 1_000.0;
    let lower = task.desired_period().as_ticks() as f64 / SCALE;
    let upper = task.max_period().as_ticks() as f64 / SCALE;
    let a = (task.wcet().as_ticks() as f64 + interference.constant) / SCALE;
    let b = interference.slope;

    // minimise T  subject to  a·T^-1 + b ≤ 1,  lower ≤ T ≤ upper.
    let mut problem = GpProblem::new(1);
    problem.set_objective(Posynomial::from(Monomial::new(1.0, vec![1.0])));
    let mut constraint = Posynomial::from(Monomial::new(a.max(1e-12), vec![-1.0]));
    if b > 0.0 {
        constraint.push(Monomial::constant(b, 1));
    }
    problem.add_constraint_le(constraint);
    problem.add_bounds(0, lower, upper);
    problem.set_initial_point(vec![upper]);

    let solution = problem.solve(options).ok()?;
    if !solution.is_feasible() {
        return None;
    }
    let ticks = (solution.values[0] * SCALE).ceil().max(lower * SCALE) as u64;
    let period = Time::from_ticks(ticks.min(task.max_period().as_ticks()));
    Some(PeriodChoice {
        period,
        tightness: task.tightness(period),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_core::Time;

    fn sec(c_ms: u64, tdes_ms: u64, tmax_ms: u64) -> SecurityTask {
        SecurityTask::new(
            Time::from_millis(c_ms),
            Time::from_millis(tdes_ms),
            Time::from_millis(tmax_ms),
        )
        .unwrap()
    }

    fn bound(constant_ms: f64, slope: f64) -> InterferenceBound {
        InterferenceBound {
            constant: constant_ms * 1_000.0,
            slope,
        }
    }

    #[test]
    fn no_interference_grants_desired_period() {
        let task = sec(10, 1000, 10_000);
        let choice = adapt_period(&task, &InterferenceBound::zero()).unwrap();
        assert_eq!(choice.period, Time::from_millis(1000));
        assert_eq!(choice.tightness, 1.0);
        assert_eq!(choice.weighted_tightness(&task), 1.0);
    }

    #[test]
    fn interference_stretches_the_period() {
        // C = 100 ms, constant 200 ms, slope 0.4:
        // T* = (100 + 200) / 0.6 = 500 ms > T^des = 400 ms.
        let task = sec(100, 400, 4000);
        let choice = adapt_period(&task, &bound(200.0, 0.4)).unwrap();
        assert_eq!(choice.period, Time::from_millis(500));
        assert!((choice.tightness - 0.8).abs() < 1e-9);
    }

    #[test]
    fn desired_period_wins_when_interference_is_mild() {
        // T* requirement = (10 + 50)/(1 − 0.2) = 75 ms < T^des = 1000 ms.
        let task = sec(10, 1000, 10_000);
        let choice = adapt_period(&task, &bound(50.0, 0.2)).unwrap();
        assert_eq!(choice.period, Time::from_millis(1000));
        assert_eq!(choice.tightness, 1.0);
    }

    #[test]
    fn infeasible_when_required_period_exceeds_max() {
        // (100 + 800)/(1 − 0.5) = 1800 ms > T^max = 1500 ms.
        let task = sec(100, 500, 1500);
        assert_eq!(adapt_period(&task, &bound(800.0, 0.5)), None);
    }

    #[test]
    fn infeasible_when_interfering_load_saturates_core() {
        let task = sec(10, 1000, 10_000);
        assert_eq!(adapt_period(&task, &bound(0.0, 1.0)), None);
        assert_eq!(adapt_period(&task, &bound(0.0, 1.2)), None);
    }

    #[test]
    fn granted_period_always_satisfies_eq6() {
        let task = sec(37, 713, 9_241);
        let b = bound(123.4, 0.37);
        let choice = adapt_period(&task, &b).unwrap();
        let t = choice.period.as_ticks() as f64;
        let lhs = task.wcet().as_ticks() as f64 + b.at(t);
        assert!(lhs <= t + 1.0, "constraint violated: {lhs} > {t}");
    }

    #[test]
    fn gp_solver_agrees_with_closed_form() {
        let cases = [
            (sec(10, 1000, 10_000), bound(0.0, 0.0)),
            (sec(100, 400, 4000), bound(200.0, 0.4)),
            (sec(55, 1000, 10_000), bound(64.0, 0.62)),
            (sec(375, 5000, 50_000), bound(500.0, 0.3)),
        ];
        for (task, b) in cases {
            let closed = adapt_period(&task, &b).unwrap();
            let gp = adapt_period_gp(&task, &b, &SolverOptions::default()).unwrap();
            let rel = (gp.period.as_ticks() as f64 - closed.period.as_ticks() as f64).abs()
                / closed.period.as_ticks() as f64;
            assert!(
                rel < 5e-3,
                "GP {} vs closed form {} for {task}",
                gp.period,
                closed.period
            );
            assert!((gp.tightness - closed.tightness).abs() < 5e-3);
        }
    }

    #[test]
    fn gp_solver_detects_infeasibility() {
        let task = sec(100, 500, 1500);
        let b = bound(800.0, 0.5);
        assert_eq!(adapt_period(&task, &b), None);
        assert_eq!(adapt_period_gp(&task, &b, &SolverOptions::default()), None);
    }

    #[test]
    fn zero_slack_task_gets_exactly_its_pinned_period_or_nothing() {
        // T^des == T^max leaves no adaptation room: the closed form and the
        // GP path both grant exactly that period when it is feasible and
        // report infeasibility otherwise.
        let pinned = sec(100, 2000, 2000);
        let ok = bound(300.0, 0.4);
        let choice = adapt_period(&pinned, &ok).unwrap();
        assert_eq!(choice.period, Time::from_millis(2000));
        assert_eq!(choice.tightness, 1.0);
        let gp = adapt_period_gp(&pinned, &ok, &SolverOptions::default()).unwrap();
        assert_eq!(gp.period, choice.period);
        // (100 + 1500)/(1 − 0.5) = 3200 ms > 2000 ms: nothing fits.
        let too_much = bound(1500.0, 0.5);
        assert_eq!(adapt_period(&pinned, &too_much), None);
        assert_eq!(
            adapt_period_gp(&pinned, &too_much, &SolverOptions::default()),
            None
        );
    }

    #[test]
    fn tightness_never_exceeds_one_nor_drops_below_floor() {
        let task = sec(200, 1000, 5000);
        for slope in [0.0, 0.3, 0.6, 0.79] {
            if let Some(choice) = adapt_period(&task, &bound(300.0, slope)) {
                assert!(choice.tightness <= 1.0 + 1e-12);
                assert!(choice.tightness >= task.min_tightness() - 1e-12);
            }
        }
    }
}
