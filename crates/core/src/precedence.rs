//! Precedence constraints between security tasks (Section V extension).
//!
//! The paper's discussion section notes that real deployments may need the
//! security tasks to follow precedence constraints — e.g. Tripwire should
//! verify *its own* binary before it is trusted to verify the system binaries.
//! This module provides the extension:
//!
//! * [`PrecedenceGraph`] — a DAG over the security tasks of a set, with cycle
//!   detection and topological ordering,
//! * [`PrecedenceHydraAllocator`] — a HYDRA variant that walks the tasks in
//!   an order consistent with both the priority order and the DAG, and
//!   additionally guarantees that **no successor monitors less frequently
//!   than its predecessor is able to support**: the granted period of a
//!   successor is never smaller than the granted period of any of its
//!   predecessors (the predecessor check must have had a chance to run at
//!   least as recently as the dependent check).

use std::collections::VecDeque;

use rt_core::TaskSet;
use rt_partition::{partition_tasks, CoreId, Partition};

use crate::allocation::{Allocation, AllocationError, AllocationProblem, SecurityPlacement};
use crate::allocator::Allocator;
use crate::interference::{rt_interference_on, security_interference, InterferenceBound};
use crate::period::PeriodChoice;
use crate::security::{SecurityTaskId, SecurityTaskSet};

/// Errors specific to precedence handling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PrecedenceError {
    /// An edge references a task outside the security task set.
    UnknownTask(SecurityTaskId),
    /// The graph contains a cycle, so no valid execution order exists.
    Cyclic,
    /// A self-edge was added.
    SelfDependency(SecurityTaskId),
}

impl std::fmt::Display for PrecedenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrecedenceError::UnknownTask(id) => {
                write!(f, "precedence edge references unknown security task {id}")
            }
            PrecedenceError::Cyclic => write!(f, "precedence constraints form a cycle"),
            PrecedenceError::SelfDependency(id) => {
                write!(f, "security task {id} cannot depend on itself")
            }
        }
    }
}

impl std::error::Error for PrecedenceError {}

/// A directed acyclic graph of "must be checked before" relations between
/// security tasks: an edge `a → b` means `a` (e.g. Tripwire's self-check)
/// must precede `b` (e.g. the system-binary check).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PrecedenceGraph {
    /// `edges[i]` holds the successors of `SecurityTaskId(i)`.
    edges: Vec<Vec<usize>>,
}

impl PrecedenceGraph {
    /// Creates an empty graph over `task_count` security tasks.
    #[must_use]
    pub fn new(task_count: usize) -> Self {
        PrecedenceGraph {
            edges: vec![Vec::new(); task_count],
        }
    }

    /// Number of tasks covered by this graph.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph covers no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds the constraint "`before` must be checked before `after`".
    ///
    /// # Errors
    ///
    /// Returns an error for self-dependencies, unknown tasks, or an edge that
    /// would close a cycle.
    pub fn add_dependency(
        &mut self,
        before: SecurityTaskId,
        after: SecurityTaskId,
    ) -> Result<(), PrecedenceError> {
        if before == after {
            return Err(PrecedenceError::SelfDependency(before));
        }
        if before.0 >= self.edges.len() {
            return Err(PrecedenceError::UnknownTask(before));
        }
        if after.0 >= self.edges.len() {
            return Err(PrecedenceError::UnknownTask(after));
        }
        if !self.edges[before.0].contains(&after.0) {
            self.edges[before.0].push(after.0);
        }
        if self.topological_order().is_err() {
            // Roll back the offending edge.
            self.edges[before.0].retain(|&s| s != after.0);
            return Err(PrecedenceError::Cyclic);
        }
        Ok(())
    }

    /// Direct predecessors of a task.
    #[must_use]
    pub fn predecessors(&self, task: SecurityTaskId) -> Vec<SecurityTaskId> {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(from, succs)| succs.contains(&task.0).then_some(SecurityTaskId(from)))
            .collect()
    }

    /// Direct successors of a task.
    #[must_use]
    pub fn successors(&self, task: SecurityTaskId) -> Vec<SecurityTaskId> {
        self.edges
            .get(task.0)
            .map(|succs| succs.iter().map(|&s| SecurityTaskId(s)).collect())
            .unwrap_or_default()
    }

    /// Whether the graph has no constraints at all.
    #[must_use]
    pub fn has_no_constraints(&self) -> bool {
        self.edges.iter().all(Vec::is_empty)
    }

    /// A topological order of all tasks (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`PrecedenceError::Cyclic`] if the graph contains a cycle.
    pub fn topological_order(&self) -> Result<Vec<SecurityTaskId>, PrecedenceError> {
        let n = self.edges.len();
        let mut in_degree = vec![0usize; n];
        for succs in &self.edges {
            for &s in succs {
                in_degree[s] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(node) = queue.pop_front() {
            order.push(SecurityTaskId(node));
            for &s in &self.edges[node] {
                in_degree[s] -= 1;
                if in_degree[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(PrecedenceError::Cyclic)
        }
    }

    /// An allocation-processing order that respects both the DAG and, among
    /// unconstrained tasks, the priority order of `tasks` (smaller `T^max`
    /// first). This is the order the precedence-aware allocator walks.
    ///
    /// # Errors
    ///
    /// Returns [`PrecedenceError::Cyclic`] for cyclic graphs, or
    /// [`PrecedenceError::UnknownTask`] if the graph and task set disagree in
    /// size.
    pub fn allocation_order(
        &self,
        tasks: &SecurityTaskSet,
    ) -> Result<Vec<SecurityTaskId>, PrecedenceError> {
        if tasks.len() != self.edges.len() {
            return Err(PrecedenceError::UnknownTask(SecurityTaskId(
                self.edges.len().min(tasks.len()),
            )));
        }
        // Kahn's algorithm with a priority-ordered frontier.
        let n = self.edges.len();
        let mut in_degree = vec![0usize; n];
        for succs in &self.edges {
            for &s in succs {
                in_degree[s] += 1;
            }
        }
        let priority_rank: Vec<usize> = {
            let order = tasks.ids_by_priority();
            let mut rank = vec![0usize; n];
            for (r, id) in order.iter().enumerate() {
                rank[id.0] = r;
            }
            rank
        };
        let mut frontier: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while !frontier.is_empty() {
            // Pick the highest-priority ready task.
            let (pos, _) = frontier
                .iter()
                .enumerate()
                .min_by_key(|(_, &node)| priority_rank[node])
                .expect("frontier is non-empty");
            let node = frontier.swap_remove(pos);
            order.push(SecurityTaskId(node));
            for &s in &self.edges[node] {
                in_degree[s] -= 1;
                if in_degree[s] == 0 {
                    frontier.push(s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(PrecedenceError::Cyclic)
        }
    }
}

/// The Tripwire-style default precedence for the Table I catalogue: the
/// self-check precedes every other Tripwire check (the Bro monitor is
/// independent). The ids follow the catalogue order of
/// [`crate::catalog::table1_tasks`].
#[must_use]
pub fn table1_precedence() -> PrecedenceGraph {
    let mut graph = PrecedenceGraph::new(6);
    // Catalogue order: 0 self-check, 1 executables, 2 libraries,
    // 3 dev/kernel, 4 config, 5 bro.
    for target in 1..=4 {
        graph
            .add_dependency(SecurityTaskId(0), SecurityTaskId(target))
            .expect("the static catalogue precedence is acyclic");
    }
    graph
}

/// A HYDRA variant that honours a [`PrecedenceGraph`]: tasks are allocated in
/// a priority-consistent topological order and every successor's period is at
/// least the granted period of each of its predecessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecedenceHydraAllocator {
    graph: PrecedenceGraph,
}

impl PrecedenceHydraAllocator {
    /// Creates the allocator for the given precedence graph.
    #[must_use]
    pub fn new(graph: PrecedenceGraph) -> Self {
        PrecedenceHydraAllocator { graph }
    }

    /// The precedence graph in use.
    #[must_use]
    pub fn graph(&self) -> &PrecedenceGraph {
        &self.graph
    }

    /// Runs the precedence-aware allocation against an already-partitioned
    /// real-time workload.
    ///
    /// # Errors
    ///
    /// Returns [`AllocationError::SecurityUnschedulable`] if a task has no
    /// feasible core/period, and propagates an invalid graph as the same
    /// error with no task attached.
    pub fn allocate_with_partition(
        &self,
        rt_tasks: &TaskSet,
        rt_partition: &Partition,
        security_tasks: &SecurityTaskSet,
    ) -> Result<Allocation, AllocationError> {
        let order = self
            .graph
            .allocation_order(security_tasks)
            .map_err(|_| AllocationError::SecurityUnschedulable { task: None })?;
        let cores = rt_partition.cores();
        let rt_bounds: Vec<InterferenceBound> = (0..cores)
            .map(|m| rt_interference_on(rt_tasks, rt_partition, CoreId(m)))
            .collect();

        let mut placed: Vec<Vec<(SecurityTaskId, PeriodChoice)>> = vec![Vec::new(); cores];
        let mut placements: Vec<Option<SecurityPlacement>> = vec![None; security_tasks.len()];

        for sec_id in order {
            let task = &security_tasks[sec_id];
            // Precedence lower bound: the successor may not run more often
            // than its slowest predecessor actually runs.
            let predecessor_floor = self
                .graph
                .predecessors(sec_id)
                .iter()
                .filter_map(|pred| placements[pred.0].as_ref().map(|p| p.period))
                .max()
                .unwrap_or(rt_core::Time::ZERO);
            let lower = task.desired_period().max(predecessor_floor);
            if lower > task.max_period() {
                return Err(AllocationError::SecurityUnschedulable { task: Some(sec_id) });
            }

            let mut best: Option<(CoreId, PeriodChoice, f64)> = None;
            for m in 0..cores {
                let sec_bound = security_interference(
                    placed[m]
                        .iter()
                        .map(|(id, choice)| (&security_tasks[*id], choice.period)),
                );
                let bound = rt_bounds[m].plus(&sec_bound);
                // Same closed form as Eq. (7), but with the precedence floor
                // as the lower period bound.
                let lower_ticks = lower.as_ticks() as f64;
                let upper_ticks = task.max_period().as_ticks() as f64;
                let a = task.wcet().as_ticks() as f64 + bound.constant;
                let Some(period) = gp_solver::scalar::minimize_linear_fractional(
                    lower_ticks,
                    upper_ticks,
                    a,
                    bound.slope,
                )
                .value() else {
                    continue;
                };
                let period = rt_core::Time::from_ticks(period.ceil() as u64);
                let choice = PeriodChoice {
                    period,
                    tightness: task.tightness(period),
                };
                let load = bound.slope;
                let better = match &best {
                    None => true,
                    Some((_, incumbent, incumbent_load)) => {
                        choice.tightness > incumbent.tightness + 1e-12
                            || ((choice.tightness - incumbent.tightness).abs() <= 1e-12
                                && load < incumbent_load - 1e-12)
                    }
                };
                if better {
                    best = Some((CoreId(m), choice, load));
                }
            }
            match best {
                Some((core, choice, _)) => {
                    placed[core.0].push((sec_id, choice));
                    placements[sec_id.0] = Some(SecurityPlacement {
                        core,
                        period: choice.period,
                        tightness: choice.tightness,
                    });
                }
                None => return Err(AllocationError::SecurityUnschedulable { task: Some(sec_id) }),
            }
        }

        let placements: Vec<SecurityPlacement> = placements
            .into_iter()
            .map(|p| p.expect("every task was placed or we returned early"))
            .collect();
        Ok(Allocation::new(rt_partition.clone(), placements))
    }
}

impl Allocator for PrecedenceHydraAllocator {
    fn name(&self) -> &'static str {
        "HYDRA+precedence"
    }

    fn allocate(&self, problem: &AllocationProblem) -> Result<Allocation, AllocationError> {
        let rt_partition =
            partition_tasks(&problem.rt_tasks, problem.cores, &problem.partition_config).map_err(
                |e| AllocationError::RtPartitionFailed {
                    task: e.task,
                    cores: problem.cores,
                },
            )?;
        self.allocate_with_partition(&problem.rt_tasks, &rt_partition, &problem.security_tasks)
    }

    fn allocate_with_rt_partition(
        &self,
        problem: &AllocationProblem,
        rt_partition: &Partition,
    ) -> Result<Allocation, AllocationError> {
        self.allocate_with_partition(&problem.rt_tasks, rt_partition, &problem.security_tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::HydraAllocator;
    use crate::catalog::table1_tasks;
    use crate::security::SecurityTask;
    use rt_core::Time;

    fn sec(c_ms: u64, tdes_ms: u64, tmax_ms: u64) -> SecurityTask {
        SecurityTask::new(
            Time::from_millis(c_ms),
            Time::from_millis(tdes_ms),
            Time::from_millis(tmax_ms),
        )
        .unwrap()
    }

    #[test]
    fn graph_construction_and_queries() {
        let mut g = PrecedenceGraph::new(3);
        assert!(g.has_no_constraints());
        g.add_dependency(SecurityTaskId(0), SecurityTaskId(1))
            .unwrap();
        g.add_dependency(SecurityTaskId(0), SecurityTaskId(2))
            .unwrap();
        assert!(!g.has_no_constraints());
        assert_eq!(g.successors(SecurityTaskId(0)).len(), 2);
        assert_eq!(g.predecessors(SecurityTaskId(2)), vec![SecurityTaskId(0)]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn invalid_edges_are_rejected() {
        let mut g = PrecedenceGraph::new(2);
        assert_eq!(
            g.add_dependency(SecurityTaskId(0), SecurityTaskId(0)),
            Err(PrecedenceError::SelfDependency(SecurityTaskId(0)))
        );
        assert_eq!(
            g.add_dependency(SecurityTaskId(0), SecurityTaskId(5)),
            Err(PrecedenceError::UnknownTask(SecurityTaskId(5)))
        );
        g.add_dependency(SecurityTaskId(0), SecurityTaskId(1))
            .unwrap();
        assert_eq!(
            g.add_dependency(SecurityTaskId(1), SecurityTaskId(0)),
            Err(PrecedenceError::Cyclic)
        );
        // The rejected edge must not linger.
        assert!(g.successors(SecurityTaskId(1)).is_empty());
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut g = PrecedenceGraph::new(4);
        g.add_dependency(SecurityTaskId(2), SecurityTaskId(0))
            .unwrap();
        g.add_dependency(SecurityTaskId(0), SecurityTaskId(3))
            .unwrap();
        let order = g.topological_order().unwrap();
        let pos = |id: SecurityTaskId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(SecurityTaskId(2)) < pos(SecurityTaskId(0)));
        assert!(pos(SecurityTaskId(0)) < pos(SecurityTaskId(3)));
    }

    #[test]
    fn allocation_order_prefers_priority_among_ready_tasks() {
        // Task 1 has the smallest T^max (highest priority) and no
        // predecessor, so it must come first even though task 0 is declared
        // earlier.
        let tasks: SecurityTaskSet = vec![
            sec(10, 1000, 30_000),
            sec(10, 1000, 10_000),
            sec(10, 1000, 20_000),
        ]
        .into_iter()
        .collect();
        let g = PrecedenceGraph::new(3);
        let order = g.allocation_order(&tasks).unwrap();
        assert_eq!(order[0], SecurityTaskId(1));
        // With an edge 0 → 1, task 0 must be pulled ahead of task 1 despite
        // the lower priority.
        let mut g = PrecedenceGraph::new(3);
        g.add_dependency(SecurityTaskId(0), SecurityTaskId(1))
            .unwrap();
        let order = g.allocation_order(&tasks).unwrap();
        let pos = |id: SecurityTaskId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(SecurityTaskId(0)) < pos(SecurityTaskId(1)));
    }

    #[test]
    fn mismatched_graph_size_is_an_error() {
        let tasks: SecurityTaskSet = vec![sec(10, 1000, 10_000)].into_iter().collect();
        let g = PrecedenceGraph::new(3);
        assert!(matches!(
            g.allocation_order(&tasks),
            Err(PrecedenceError::UnknownTask(_))
        ));
    }

    #[test]
    fn successor_period_never_beats_its_predecessor() {
        // The predecessor is heavy and ends up with a stretched period; the
        // successor (which alone could achieve its desired period) must be
        // granted a period at least as long.
        let tasks: SecurityTaskSet = vec![
            sec(800, 1000, 50_000), // predecessor: needs stretching
            sec(10, 1000, 50_000),  // successor: trivially satisfiable alone
        ]
        .into_iter()
        .collect();
        let mut graph = PrecedenceGraph::new(2);
        graph
            .add_dependency(SecurityTaskId(0), SecurityTaskId(1))
            .unwrap();
        // One busy core so the predecessor really is stretched.
        let rt_tasks: rt_core::TaskSet =
            vec![
                rt_core::RtTask::implicit_deadline(Time::from_millis(60), Time::from_millis(100))
                    .unwrap(),
            ]
            .into_iter()
            .collect();
        let problem = AllocationProblem::new(rt_tasks, tasks, 1);
        let allocation = PrecedenceHydraAllocator::new(graph)
            .allocate(&problem)
            .unwrap();
        let pred = allocation.period_of(SecurityTaskId(0));
        let succ = allocation.period_of(SecurityTaskId(1));
        assert!(
            pred > Time::from_millis(1000),
            "predecessor was not stretched"
        );
        assert!(
            succ >= pred,
            "successor period {succ} beats predecessor {pred}"
        );
    }

    #[test]
    fn without_constraints_the_result_matches_plain_hydra() {
        let problem = AllocationProblem::new(crate::casestudy::uav_rt_tasks(), table1_tasks(), 4);
        let plain = HydraAllocator::default().allocate(&problem).unwrap();
        let graph = PrecedenceGraph::new(problem.security_tasks.len());
        let constrained = PrecedenceHydraAllocator::new(graph)
            .allocate(&problem)
            .unwrap();
        assert_eq!(plain, constrained);
    }

    #[test]
    fn table1_precedence_allocates_and_respects_the_self_check_rule() {
        let problem = AllocationProblem::new(crate::casestudy::uav_rt_tasks(), table1_tasks(), 2);
        let allocator = PrecedenceHydraAllocator::new(table1_precedence());
        assert_eq!(allocator.name(), "HYDRA+precedence");
        let allocation = allocator.allocate(&problem).unwrap();
        let self_check = allocation.period_of(SecurityTaskId(0));
        for dependent in 1..=4 {
            assert!(
                allocation.period_of(SecurityTaskId(dependent)) >= self_check,
                "dependent check {dependent} runs more often than the self-check"
            );
        }
    }

    #[test]
    fn infeasible_precedence_floor_is_reported() {
        // The predecessor can only run with a period beyond the successor's
        // maximum period, so the successor cannot satisfy both constraints.
        let tasks: SecurityTaskSet = vec![
            sec(900, 1000, 100_000), // will be stretched far beyond 10 s
            sec(10, 1000, 5_000),    // T^max = 5 s < predecessor's period
        ]
        .into_iter()
        .collect();
        let mut graph = PrecedenceGraph::new(2);
        graph
            .add_dependency(SecurityTaskId(0), SecurityTaskId(1))
            .unwrap();
        let rt_tasks: rt_core::TaskSet =
            vec![
                rt_core::RtTask::implicit_deadline(Time::from_millis(90), Time::from_millis(100))
                    .unwrap(),
            ]
            .into_iter()
            .collect();
        let problem = AllocationProblem::new(rt_tasks, tasks, 1);
        assert!(matches!(
            PrecedenceHydraAllocator::new(graph).allocate(&problem),
            Err(AllocationError::SecurityUnschedulable {
                task: Some(SecurityTaskId(1))
            })
        ));
    }
}
