//! Sporadic security task model.
//!
//! Following the sporadic security task model of the paper (Section II-C),
//! each security task `τ_s` is characterised by `(C_s, T_s^des, T_s^max)`:
//! its WCET, the *desired* period (the inter-monitoring interval the designer
//! would ideally like) and the *maximum* period beyond which the monitoring
//! is considered ineffective. The achievable period `T_s` is decided by the
//! allocator and must satisfy `T_s^des ≤ T_s ≤ T_s^max`.
//!
//! Security tasks execute at a priority strictly below every real-time task;
//! among themselves they are ordered by `T^max` (a smaller `T^max` means the
//! monitoring is more time-critical and therefore gets a higher priority).

use core::fmt;

use rt_core::Time;

/// Index of a security task inside a [`SecurityTaskSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SecurityTaskId(pub usize);

impl fmt::Display for SecurityTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{}", self.0)
    }
}

/// Errors produced while constructing security tasks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SecurityTaskError {
    /// The WCET is zero.
    ZeroWcet,
    /// The desired period is zero.
    ZeroDesiredPeriod,
    /// The desired period exceeds the maximum period.
    DesiredExceedsMax {
        /// Desired period.
        desired: Time,
        /// Maximum period.
        max: Time,
    },
    /// The WCET exceeds the maximum period, so the task could never complete
    /// within its implicit deadline even alone on a core.
    WcetExceedsMaxPeriod {
        /// Worst-case execution time.
        wcet: Time,
        /// Maximum period.
        max: Time,
    },
    /// A non-finite or non-positive weight was supplied.
    InvalidWeight(f64),
}

impl fmt::Display for SecurityTaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityTaskError::ZeroWcet => write!(f, "security task WCET must be positive"),
            SecurityTaskError::ZeroDesiredPeriod => {
                write!(f, "desired period must be positive")
            }
            SecurityTaskError::DesiredExceedsMax { desired, max } => {
                write!(f, "desired period {desired} exceeds maximum period {max}")
            }
            SecurityTaskError::WcetExceedsMaxPeriod { wcet, max } => {
                write!(f, "WCET {wcet} exceeds the maximum period {max}")
            }
            SecurityTaskError::InvalidWeight(w) => {
                write!(f, "weight must be positive and finite, got {w}")
            }
        }
    }
}

impl std::error::Error for SecurityTaskError {}

/// How a security task executes once it has been dispatched.
///
/// The base HYDRA model assumes fully preemptive security tasks. The paper's
/// Section V notes that some checks (e.g. ones that must observe a consistent
/// filesystem snapshot) may have to run non-preemptively; the blocking-aware
/// allocator in [`crate::nonpreemptive`] consumes this flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ExecutionMode {
    /// The task can be preempted at any instant (the paper's base model).
    #[default]
    Preemptive,
    /// Once started, the task runs to completion; it can block every
    /// higher-priority task on its core for up to its WCET.
    NonPreemptive,
}

/// A sporadic security task `(C_s, T_s^des, T_s^max)` with a weight `ω_s`
/// used in the cumulative-tightness objective.
///
/// # Example
///
/// ```
/// use hydra_core::SecurityTask;
/// use rt_core::Time;
///
/// # fn main() -> Result<(), hydra_core::SecurityTaskError> {
/// let scan = SecurityTask::new(
///     Time::from_millis(30),
///     Time::from_millis(1_500),
///     Time::from_millis(15_000),
/// )?
/// .with_name("check executables");
/// assert_eq!(scan.min_tightness(), 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SecurityTask {
    wcet: Time,
    desired_period: Time,
    max_period: Time,
    weight: f64,
    name: Option<String>,
    #[cfg_attr(feature = "serde", serde(default))]
    execution_mode: ExecutionMode,
}

impl SecurityTask {
    /// Creates a security task with unit weight.
    ///
    /// # Errors
    ///
    /// Returns an error if any timing parameter is zero, the desired period
    /// exceeds the maximum period, or the WCET exceeds the maximum period.
    pub fn new(
        wcet: Time,
        desired_period: Time,
        max_period: Time,
    ) -> Result<Self, SecurityTaskError> {
        if wcet.is_zero() {
            return Err(SecurityTaskError::ZeroWcet);
        }
        if desired_period.is_zero() {
            return Err(SecurityTaskError::ZeroDesiredPeriod);
        }
        if desired_period > max_period {
            return Err(SecurityTaskError::DesiredExceedsMax {
                desired: desired_period,
                max: max_period,
            });
        }
        if wcet > max_period {
            return Err(SecurityTaskError::WcetExceedsMaxPeriod {
                wcet,
                max: max_period,
            });
        }
        Ok(SecurityTask {
            wcet,
            desired_period,
            max_period,
            weight: 1.0,
            name: None,
            execution_mode: ExecutionMode::Preemptive,
        })
    }

    /// Attaches a human-readable name.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the weight `ω_s` used in the cumulative-tightness objective
    /// (Eq. 3). Larger weights should be given to more critical security
    /// tasks.
    ///
    /// # Errors
    ///
    /// Returns an error if the weight is not positive and finite.
    pub fn with_weight(mut self, weight: f64) -> Result<Self, SecurityTaskError> {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(SecurityTaskError::InvalidWeight(weight));
        }
        self.weight = weight;
        Ok(self)
    }

    /// Marks the task as non-preemptive (see [`ExecutionMode`]).
    #[must_use]
    pub fn non_preemptive(mut self) -> Self {
        self.execution_mode = ExecutionMode::NonPreemptive;
        self
    }

    /// Sets the execution mode explicitly.
    #[must_use]
    pub fn with_execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.execution_mode = mode;
        self
    }

    /// Execution mode of the task.
    #[must_use]
    pub fn execution_mode(&self) -> ExecutionMode {
        self.execution_mode
    }

    /// Whether the task runs to completion once started.
    #[must_use]
    pub fn is_non_preemptive(&self) -> bool {
        self.execution_mode == ExecutionMode::NonPreemptive
    }

    /// Worst-case execution time `C_s`.
    #[must_use]
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// Desired (minimum acceptable) period `T_s^des`.
    #[must_use]
    pub fn desired_period(&self) -> Time {
        self.desired_period
    }

    /// Maximum acceptable period `T_s^max`.
    #[must_use]
    pub fn max_period(&self) -> Time {
        self.max_period
    }

    /// Objective weight `ω_s`.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Optional task name.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Utilisation at the desired period, `C_s / T_s^des` — the highest
    /// utilisation the task can possibly impose.
    #[must_use]
    pub fn max_utilization(&self) -> f64 {
        self.wcet.ratio(self.desired_period)
    }

    /// Utilisation at the maximum period, `C_s / T_s^max` — the lowest
    /// utilisation at which the task still provides effective monitoring.
    #[must_use]
    pub fn min_utilization(&self) -> f64 {
        self.wcet.ratio(self.max_period)
    }

    /// Tightness achieved when running at the maximum period,
    /// `T^des / T^max` — the lower bound of the metric `η_s` (Eq. 2).
    #[must_use]
    pub fn min_tightness(&self) -> f64 {
        self.desired_period.ratio(self.max_period)
    }

    /// Tightness achieved when running at period `period`
    /// (`η_s = T^des / T_s`), clamped to the valid range `[min_tightness, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn tightness(&self, period: Time) -> f64 {
        let eta = self.desired_period.ratio(period);
        eta.clamp(self.min_tightness(), 1.0)
    }
}

impl fmt::Display for SecurityTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(name) => write!(
                f,
                "{name}(C={}, Tdes={}, Tmax={})",
                self.wcet, self.desired_period, self.max_period
            ),
            None => write!(
                f,
                "sec(C={}, Tdes={}, Tmax={})",
                self.wcet, self.desired_period, self.max_period
            ),
        }
    }
}

/// An ordered collection of security tasks.
///
/// [`SecurityTaskId`]s are indices into this set. The *priority order* of the
/// tasks is given by [`SecurityTaskSet::ids_by_priority`]: ascending `T^max`
/// (ties broken by id), independent of declaration order. The order is
/// computed lazily on first use and cached (mutation invalidates it), so
/// per-task queries such as [`SecurityTaskSet::higher_priority_than`] stay
/// O(n) instead of re-sorting the whole set on every call.
#[derive(Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SecurityTaskSet {
    tasks: Vec<SecurityTask>,
    /// Lazily computed priority order; never serialized or compared.
    #[cfg_attr(feature = "serde", serde(skip))]
    priority_cache: std::sync::OnceLock<Vec<SecurityTaskId>>,
}

impl Clone for SecurityTaskSet {
    fn clone(&self) -> Self {
        SecurityTaskSet {
            tasks: self.tasks.clone(),
            priority_cache: self.priority_cache.clone(),
        }
    }
}

impl PartialEq for SecurityTaskSet {
    fn eq(&self, other: &Self) -> bool {
        self.tasks == other.tasks
    }
}

impl SecurityTaskSet {
    /// Creates a set from a vector of security tasks.
    #[must_use]
    pub fn new(tasks: Vec<SecurityTask>) -> Self {
        SecurityTaskSet {
            tasks,
            priority_cache: std::sync::OnceLock::new(),
        }
    }

    /// Creates an empty set.
    #[must_use]
    pub fn empty() -> Self {
        SecurityTaskSet::new(Vec::new())
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Appends a task, returning its id.
    pub fn push(&mut self, task: SecurityTask) -> SecurityTaskId {
        self.priority_cache.take();
        self.tasks.push(task);
        SecurityTaskId(self.tasks.len() - 1)
    }

    /// Returns the task with the given id, if it exists.
    #[must_use]
    pub fn get(&self, id: SecurityTaskId) -> Option<&SecurityTask> {
        self.tasks.get(id.0)
    }

    /// Iterates over `(SecurityTaskId, &SecurityTask)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SecurityTaskId, &SecurityTask)> + '_ {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (SecurityTaskId(i), t))
    }

    /// Iterates over the tasks in id order.
    pub fn tasks(&self) -> impl Iterator<Item = &SecurityTask> + '_ {
        self.tasks.iter()
    }

    /// All ids in the set.
    pub fn ids(&self) -> impl Iterator<Item = SecurityTaskId> + '_ {
        (0..self.tasks.len()).map(SecurityTaskId)
    }

    /// The cached priority order: ids from highest to lowest priority
    /// (ascending `T^max`, ties broken by id). Computed once per set and
    /// reused by every per-task query.
    #[must_use]
    pub fn priority_order(&self) -> &[SecurityTaskId] {
        self.priority_cache.get_or_init(|| {
            let mut ids: Vec<SecurityTaskId> = self.ids().collect();
            ids.sort_by_key(|&id| (self.tasks[id.0].max_period(), id.0));
            ids
        })
    }

    /// Ids sorted from highest to lowest priority (ascending `T^max`,
    /// ties broken by id) — the iteration order of HYDRA's outer loop.
    /// Borrows the cached order; no allocation per call.
    #[must_use]
    pub fn ids_by_priority(&self) -> &[SecurityTaskId] {
        self.priority_order()
    }

    /// Ids of the tasks with strictly higher priority than `id`, in priority
    /// order. An allocation-free iterator over the cached order — safe to
    /// call inside per-task loops.
    pub fn higher_priority_than(
        &self,
        id: SecurityTaskId,
    ) -> impl Iterator<Item = SecurityTaskId> + '_ {
        self.priority_order()
            .iter()
            .copied()
            .take_while(move |&other| other != id)
    }

    /// Total utilisation if every task ran at its desired period (an upper
    /// bound on the load the security workload can impose).
    #[must_use]
    pub fn max_total_utilization(&self) -> f64 {
        self.tasks.iter().map(SecurityTask::max_utilization).sum()
    }

    /// Total utilisation if every task ran at its maximum period (a lower
    /// bound on the load required for effective monitoring).
    #[must_use]
    pub fn min_total_utilization(&self) -> f64 {
        self.tasks.iter().map(SecurityTask::min_utilization).sum()
    }

    /// Sum of all weights `Σ ω_s` — the maximum possible cumulative weighted
    /// tightness (achieved when every task gets its desired period).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.tasks.iter().map(SecurityTask::weight).sum()
    }
}

impl FromIterator<SecurityTask> for SecurityTaskSet {
    fn from_iter<I: IntoIterator<Item = SecurityTask>>(iter: I) -> Self {
        SecurityTaskSet::new(iter.into_iter().collect())
    }
}

impl Extend<SecurityTask> for SecurityTaskSet {
    fn extend<I: IntoIterator<Item = SecurityTask>>(&mut self, iter: I) {
        self.priority_cache.take();
        self.tasks.extend(iter);
    }
}

impl std::ops::Index<SecurityTaskId> for SecurityTaskSet {
    type Output = SecurityTask;
    fn index(&self, id: SecurityTaskId) -> &SecurityTask {
        &self.tasks[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec(c_ms: u64, tdes_ms: u64, tmax_ms: u64) -> SecurityTask {
        SecurityTask::new(
            Time::from_millis(c_ms),
            Time::from_millis(tdes_ms),
            Time::from_millis(tmax_ms),
        )
        .unwrap()
    }

    #[test]
    fn valid_construction_and_accessors() {
        let t = sec(20, 1000, 10_000)
            .with_name("bro")
            .with_weight(2.0)
            .unwrap();
        assert_eq!(t.wcet(), Time::from_millis(20));
        assert_eq!(t.desired_period(), Time::from_millis(1000));
        assert_eq!(t.max_period(), Time::from_millis(10_000));
        assert_eq!(t.weight(), 2.0);
        assert_eq!(t.name(), Some("bro"));
        assert!((t.max_utilization() - 0.02).abs() < 1e-12);
        assert!((t.min_utilization() - 0.002).abs() < 1e-12);
        assert!((t.min_tightness() - 0.1).abs() < 1e-12);
        assert!(t.to_string().contains("bro"));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert_eq!(
            SecurityTask::new(Time::ZERO, Time::from_millis(1), Time::from_millis(1)),
            Err(SecurityTaskError::ZeroWcet)
        );
        assert_eq!(
            SecurityTask::new(Time::from_millis(1), Time::ZERO, Time::from_millis(1)),
            Err(SecurityTaskError::ZeroDesiredPeriod)
        );
        assert!(matches!(
            SecurityTask::new(
                Time::from_millis(1),
                Time::from_millis(10),
                Time::from_millis(5)
            ),
            Err(SecurityTaskError::DesiredExceedsMax { .. })
        ));
        assert!(matches!(
            SecurityTask::new(
                Time::from_millis(100),
                Time::from_millis(10),
                Time::from_millis(50)
            ),
            Err(SecurityTaskError::WcetExceedsMaxPeriod { .. })
        ));
        assert!(matches!(
            sec(1, 10, 100).with_weight(0.0),
            Err(SecurityTaskError::InvalidWeight(_))
        ));
        assert!(matches!(
            sec(1, 10, 100).with_weight(f64::NAN),
            Err(SecurityTaskError::InvalidWeight(_))
        ));
    }

    #[test]
    fn execution_mode_defaults_to_preemptive() {
        let t = sec(10, 1000, 10_000);
        assert_eq!(t.execution_mode(), ExecutionMode::Preemptive);
        assert!(!t.is_non_preemptive());
        let np = t.clone().non_preemptive();
        assert!(np.is_non_preemptive());
        let back = np.with_execution_mode(ExecutionMode::Preemptive);
        assert!(!back.is_non_preemptive());
    }

    #[test]
    fn wcet_may_exceed_desired_period() {
        // The achievable period just has to be larger than the WCET; the
        // desired period may be optimistic.
        let t = SecurityTask::new(
            Time::from_millis(50),
            Time::from_millis(10),
            Time::from_millis(500),
        );
        assert!(t.is_ok());
    }

    #[test]
    fn tightness_is_clamped() {
        let t = sec(10, 1000, 4000);
        assert_eq!(t.tightness(Time::from_millis(1000)), 1.0);
        assert_eq!(t.tightness(Time::from_millis(2000)), 0.5);
        // Periods below the desired period clamp to 1.
        assert_eq!(t.tightness(Time::from_millis(500)), 1.0);
        // Periods above the maximum clamp to the minimum tightness.
        assert_eq!(t.tightness(Time::from_millis(8000)), 0.25);
    }

    #[test]
    fn priority_order_is_by_max_period() {
        let set: SecurityTaskSet = vec![sec(1, 100, 5000), sec(1, 100, 1000), sec(1, 100, 3000)]
            .into_iter()
            .collect();
        assert_eq!(
            set.ids_by_priority(),
            vec![SecurityTaskId(1), SecurityTaskId(2), SecurityTaskId(0)]
        );
        assert_eq!(
            set.higher_priority_than(SecurityTaskId(0))
                .collect::<Vec<_>>(),
            vec![SecurityTaskId(1), SecurityTaskId(2)]
        );
        assert_eq!(set.higher_priority_than(SecurityTaskId(1)).count(), 0);
    }

    #[test]
    fn priority_cache_is_invalidated_by_mutation() {
        let mut set: SecurityTaskSet = vec![sec(1, 100, 5000)].into_iter().collect();
        // Prime the cache, then mutate: a higher-priority task must surface.
        assert_eq!(set.priority_order(), [SecurityTaskId(0)]);
        let new_id = set.push(sec(1, 100, 1000));
        assert_eq!(set.priority_order(), [new_id, SecurityTaskId(0)]);
        set.extend(vec![sec(1, 100, 500)]);
        assert_eq!(set.priority_order()[0], SecurityTaskId(2));
        // Clones answer identically and compare equal regardless of whether
        // their caches are primed.
        let clone = set.clone();
        assert_eq!(clone, set);
        assert_eq!(clone.priority_order(), set.priority_order());
    }

    #[test]
    fn priority_ties_broken_by_id() {
        let set: SecurityTaskSet = vec![sec(1, 100, 1000), sec(1, 100, 1000)]
            .into_iter()
            .collect();
        assert_eq!(
            set.ids_by_priority(),
            vec![SecurityTaskId(0), SecurityTaskId(1)]
        );
    }

    #[test]
    fn set_utilization_bounds() {
        let set: SecurityTaskSet = vec![sec(10, 100, 1000), sec(20, 200, 2000)]
            .into_iter()
            .collect();
        assert!((set.max_total_utilization() - 0.2).abs() < 1e-12);
        assert!((set.min_total_utilization() - 0.02).abs() < 1e-12);
        assert_eq!(set.total_weight(), 2.0);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn push_get_and_index() {
        let mut set = SecurityTaskSet::empty();
        let id = set.push(sec(1, 10, 100));
        assert_eq!(id, SecurityTaskId(0));
        assert!(set.get(id).is_some());
        assert!(set.get(SecurityTaskId(3)).is_none());
        assert_eq!(set[id].wcet(), Time::from_millis(1));
        assert_eq!(id.to_string(), "σ0");
    }

    #[test]
    fn error_messages_are_informative() {
        for e in [
            SecurityTaskError::ZeroWcet,
            SecurityTaskError::ZeroDesiredPeriod,
            SecurityTaskError::InvalidWeight(-1.0),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
