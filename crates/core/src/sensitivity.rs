//! Design-space sensitivity analysis.
//!
//! The paper motivates HYDRA as a *design-space exploration* tool: when an
//! allocation fails, or succeeds with little slack, the designer wants hints
//! about which knobs to turn. This module answers two such questions for a
//! completed allocation:
//!
//! * [`period_slack`] — how much each security task's granted period could
//!   still grow before hitting `T^max` (robustness of the monitoring margin),
//! * [`wcet_scaling_margin`] — by what factor all security WCETs could be
//!   inflated before the allocation's schedulability constraints break
//!   (robustness against WCET underestimation, a classic concern when the
//!   WCETs were measured rather than derived).

use rt_core::Time;
use rt_partition::CoreId;

use crate::allocation::{Allocation, AllocationProblem};
use crate::interference::{rt_interference_on, InterferenceBound};
use crate::security::SecurityTaskId;

/// Remaining period slack of every security task: `T^max − T_granted`, in the
/// allocation's task order. A small slack means the task is close to the
/// point where its monitoring becomes ineffective.
#[must_use]
pub fn period_slack(
    problem: &AllocationProblem,
    allocation: &Allocation,
) -> Vec<(SecurityTaskId, Time)> {
    allocation
        .iter()
        .map(|(id, placement)| {
            let task = &problem.security_tasks[id];
            (id, task.max_period().saturating_sub(placement.period))
        })
        .collect()
}

/// The largest factor `λ ≥ 1` such that multiplying every security task's
/// WCET by `λ` keeps every granted placement feasible (granted periods and
/// the real-time partition held fixed). Returns `1.0` if the allocation has
/// no headroom at all and `f64::INFINITY` if there are no security tasks.
///
/// For each core the constraint of the lowest-slack task is
/// `λ·(C_s + ΣC_h) ≤ T_s − I_rt(T_s)`, so the margin is the minimum over all
/// placements of `(T_s − I_rt(T_s)) / (C_s + ΣC_h)`.
#[must_use]
pub fn wcet_scaling_margin(problem: &AllocationProblem, allocation: &Allocation) -> f64 {
    if allocation.is_empty() {
        return f64::INFINITY;
    }
    let mut margin = f64::INFINITY;
    for core in allocation.rt_partition().core_ids() {
        let rt_bound: InterferenceBound =
            rt_interference_on(&problem.rt_tasks, allocation.rt_partition(), core);
        // Tasks on this core in priority order (highest first).
        let mut ids = allocation.security_tasks_on(core);
        ids.sort_by_key(|&id| (problem.security_tasks[id].max_period(), id.0));
        for (rank, &id) in ids.iter().enumerate() {
            let task = &problem.security_tasks[id];
            let period = allocation.period_of(id);
            let t = period.as_ticks() as f64;
            // Security part of the demand scales with λ; the RT part does not.
            let mut security_demand = task.wcet().as_ticks() as f64;
            for &hp in &ids[..rank] {
                let hp_task = &problem.security_tasks[hp];
                let hp_period = allocation.period_of(hp).as_ticks() as f64;
                security_demand += hp_task.wcet().as_ticks() as f64 * (1.0 + t / hp_period);
            }
            let rt_demand = rt_bound.at(t);
            let budget = t - rt_demand;
            if budget <= 0.0 {
                return 1.0;
            }
            if security_demand > 0.0 {
                margin = margin.min(budget / security_demand);
            }
        }
    }
    margin.max(1.0)
}

/// The security task with the smallest period slack, if any — the first
/// candidate a designer should look at when hardening the configuration.
#[must_use]
pub fn most_constrained_task(
    problem: &AllocationProblem,
    allocation: &Allocation,
) -> Option<(SecurityTaskId, Time)> {
    period_slack(problem, allocation)
        .into_iter()
        .min_by_key(|&(_, slack)| slack)
}

/// Utilisation headroom of every core: `1 − U_rt − U_security_granted`.
/// Negative values never occur for a valid allocation.
#[must_use]
pub fn core_headroom(problem: &AllocationProblem, allocation: &Allocation) -> Vec<(CoreId, f64)> {
    allocation
        .rt_partition()
        .core_ids()
        .map(|core| {
            let rt = allocation
                .rt_partition()
                .utilization_on(&problem.rt_tasks, core);
            let sec: f64 = allocation
                .security_tasks_on(core)
                .iter()
                .map(|&id| {
                    problem.security_tasks[id]
                        .wcet()
                        .ratio(allocation.period_of(id))
                })
                .sum();
            (core, 1.0 - rt - sec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{Allocator, HydraAllocator};
    use crate::security::{SecurityTask, SecurityTaskSet};
    use rt_core::{RtTask, TaskSet};

    fn case_study(cores: usize) -> (AllocationProblem, Allocation) {
        let problem = AllocationProblem::new(
            crate::casestudy::uav_rt_tasks(),
            crate::catalog::table1_tasks(),
            cores,
        );
        let allocation = HydraAllocator::default().allocate(&problem).unwrap();
        (problem, allocation)
    }

    #[test]
    fn period_slack_is_nonnegative_and_bounded_by_tmax() {
        let (problem, allocation) = case_study(4);
        for (id, slack) in period_slack(&problem, &allocation) {
            assert!(slack <= problem.security_tasks[id].max_period());
        }
        assert_eq!(period_slack(&problem, &allocation).len(), 6);
    }

    #[test]
    fn wcet_margin_is_at_least_one_and_finite_for_the_case_study() {
        let (problem, allocation) = case_study(4);
        let margin = wcet_scaling_margin(&problem, &allocation);
        assert!(margin >= 1.0);
        assert!(margin.is_finite());
        // The case study has plenty of slack on four cores.
        assert!(margin > 1.2, "margin {margin}");
    }

    #[test]
    fn empty_security_set_has_infinite_margin() {
        let problem = AllocationProblem::new(
            crate::casestudy::uav_rt_tasks(),
            SecurityTaskSet::empty(),
            2,
        );
        let allocation = HydraAllocator::default().allocate(&problem).unwrap();
        assert_eq!(wcet_scaling_margin(&problem, &allocation), f64::INFINITY);
        assert_eq!(most_constrained_task(&problem, &allocation), None);
    }

    #[test]
    fn scaled_wcets_at_the_margin_stay_feasible() {
        // Empirical check of the margin's meaning: scaling all security WCETs
        // by a factor just under the margin keeps HYDRA feasible with the
        // same granted periods or better.
        let (problem, allocation) = case_study(2);
        let margin = wcet_scaling_margin(&problem, &allocation);
        let factor = (margin * 0.95).max(1.0);
        let scaled: SecurityTaskSet = problem
            .security_tasks
            .tasks()
            .map(|t| {
                SecurityTask::new(
                    Time::from_ticks(((t.wcet().as_ticks() as f64) * factor) as u64),
                    t.desired_period(),
                    t.max_period(),
                )
                .unwrap()
            })
            .collect();
        let scaled_problem = AllocationProblem::new(problem.rt_tasks.clone(), scaled, 2);
        assert!(HydraAllocator::default().allocate(&scaled_problem).is_ok());
    }

    #[test]
    fn most_constrained_task_has_the_minimum_slack() {
        let (problem, allocation) = case_study(2);
        let (id, slack) = most_constrained_task(&problem, &allocation).unwrap();
        for (other, other_slack) in period_slack(&problem, &allocation) {
            assert!(slack <= other_slack, "{id} vs {other}");
        }
    }

    #[test]
    fn core_headroom_is_positive_for_valid_allocations() {
        let (problem, allocation) = case_study(4);
        let headroom = core_headroom(&problem, &allocation);
        assert_eq!(headroom.len(), 4);
        for (core, h) in headroom {
            assert!(h > -1e-9, "core {core} over-committed: headroom {h}");
        }
    }

    #[test]
    fn saturated_core_reports_margin_close_to_one() {
        // A security task granted a period with almost no slack.
        let rt_tasks: TaskSet =
            vec![RtTask::implicit_deadline(Time::from_millis(50), Time::from_millis(100)).unwrap()]
                .into_iter()
                .collect();
        let sec_tasks: SecurityTaskSet = vec![SecurityTask::new(
            Time::from_millis(470),
            Time::from_millis(1000),
            Time::from_millis(1_050),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let problem = AllocationProblem::new(rt_tasks, sec_tasks, 1);
        let allocation = HydraAllocator::default().allocate(&problem).unwrap();
        let margin = wcet_scaling_margin(&problem, &allocation);
        assert!((1.0..1.2).contains(&margin), "margin {margin}");
    }
}
