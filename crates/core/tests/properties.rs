//! Property-based tests for the HYDRA core: allocations produced by any
//! scheme must respect the period bounds and the schedulability constraint,
//! and the dominance relations between the schemes must hold.

use hydra_core::allocator::{Allocator, HydraAllocator, OptimalAllocator, SingleCoreAllocator};
use hydra_core::interference::rt_interference_on;
use hydra_core::joint::plan_is_feasible;
use hydra_core::{Allocation, AllocationProblem, SecurityTask, SecurityTaskSet};
use proptest::prelude::*;
use rt_core::{RtTask, TaskSet, Time};

fn arb_rt_task() -> impl Strategy<Value = RtTask> {
    // WCET 1..30 ms, period 20..500 ms, utilisation ≤ 0.5 per task.
    (1_000u64..=30_000, 20_000u64..=500_000).prop_map(|(c, t)| {
        let c = c.min(t / 2);
        RtTask::implicit_deadline(Time::from_micros(c.max(100)), Time::from_micros(t)).unwrap()
    })
}

fn arb_sec_task() -> impl Strategy<Value = SecurityTask> {
    // WCET 5..200 ms, desired period 500..3000 ms, T^max = 10·T^des.
    (5_000u64..=200_000, 500_000u64..=3_000_000).prop_map(|(c, tdes)| {
        SecurityTask::new(
            Time::from_micros(c),
            Time::from_micros(tdes),
            Time::from_micros(tdes * 10),
        )
        .unwrap()
    })
}

fn arb_problem(max_cores: usize) -> impl Strategy<Value = AllocationProblem> {
    (
        prop::collection::vec(arb_rt_task(), 1..=8),
        prop::collection::vec(arb_sec_task(), 1..=5),
        1..=max_cores,
    )
        .prop_map(|(rt, sec, cores)| {
            AllocationProblem::new(TaskSet::new(rt), SecurityTaskSet::new(sec), cores)
        })
}

/// Checks that every per-core security plan in `allocation` satisfies the
/// period bounds and the Eq. (6) schedulability constraint.
fn allocation_is_valid(problem: &AllocationProblem, allocation: &Allocation) -> bool {
    for core in allocation.rt_partition().core_ids() {
        let rt_bound = rt_interference_on(&problem.rt_tasks, allocation.rt_partition(), core);
        let mut ids = allocation.security_tasks_on(core);
        ids.sort_by_key(|&id| (problem.security_tasks[id].max_period(), id.0));
        let tasks: Vec<&SecurityTask> = ids.iter().map(|&id| &problem.security_tasks[id]).collect();
        let periods: Vec<Time> = ids.iter().map(|&id| allocation.period_of(id)).collect();
        if !plan_is_feasible(&tasks, &rt_bound, &periods) {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hydra_allocations_are_always_feasible(problem in arb_problem(4)) {
        if let Ok(allocation) = HydraAllocator::default().allocate(&problem) {
            prop_assert_eq!(allocation.len(), problem.security_tasks.len());
            prop_assert!(allocation_is_valid(&problem, &allocation));
            // Periods are within the designer bounds and tightness matches.
            for (id, p) in allocation.iter() {
                let task = &problem.security_tasks[id];
                prop_assert!(p.period >= task.desired_period());
                prop_assert!(p.period <= task.max_period());
                prop_assert!((p.tightness - task.tightness(p.period)).abs() < 1e-9);
                prop_assert!(p.core.0 < problem.cores);
            }
        }
    }

    #[test]
    fn single_core_allocations_are_always_feasible(problem in arb_problem(4)) {
        if problem.cores >= 2 {
            if let Ok(allocation) = SingleCoreAllocator::default().allocate(&problem) {
                prop_assert!(allocation_is_valid(&problem, &allocation));
                // The dedicated core hosts no real-time task.
                let dedicated = SingleCoreAllocator::security_core(problem.cores);
                prop_assert!(allocation.rt_partition().tasks_on(dedicated).is_empty());
                for (_, p) in allocation.iter() {
                    prop_assert_eq!(p.core, dedicated);
                }
            }
        }
    }

    #[test]
    fn hydra_accepts_everything_single_core_accepts(problem in arb_problem(3)) {
        // The design-space claim behind Figure 2: whenever the SingleCore
        // scheme schedules a workload, HYDRA (with every core at its
        // disposal) schedules it too... except HYDRA partitions the RT tasks
        // over M cores rather than M−1, which only makes the RT side easier,
        // and security tasks keep at least the dedicated-core option among
        // their choices only if that core is equally free — which best-fit
        // packing guarantees here because an RT partition feasible on M−1
        // cores is also produced on M cores leaving at least one core empty
        // only under first-fit. We therefore check the weaker, still
        // paper-relevant direction on the *same* RT partition width: if
        // SingleCore succeeds, HYDRA must not fail on the RT side.
        if problem.cores >= 2 && SingleCoreAllocator::default().allocate(&problem).is_ok() {
            match HydraAllocator::default().allocate(&problem) {
                Ok(_) => {}
                Err(hydra_core::AllocationError::RtPartitionFailed { .. }) => {
                    prop_assert!(false, "HYDRA failed to partition RT tasks that fit on fewer cores");
                }
                // A security-side failure is theoretically possible when
                // best-fit leaves no lightly-loaded core; it must be rare
                // but is not a soundness violation.
                Err(_) => {}
            }
        }
    }

    #[test]
    fn optimal_dominates_hydra_in_cumulative_tightness(
        rt in prop::collection::vec(arb_rt_task(), 1..=6),
        sec in prop::collection::vec(arb_sec_task(), 1..=4),
        cores in 1usize..=2,
    ) {
        let problem = AllocationProblem::new(TaskSet::new(rt), SecurityTaskSet::new(sec), cores);
        let hydra = HydraAllocator::default().allocate(&problem);
        let optimal = OptimalAllocator::default().allocate(&problem);
        if let (Ok(h), Ok(o)) = (hydra, optimal) {
            let sec = &problem.security_tasks;
            prop_assert!(
                o.cumulative_tightness(sec) + 1e-6 >= h.cumulative_tightness(sec),
                "optimal {} < hydra {}",
                o.cumulative_tightness(sec),
                h.cumulative_tightness(sec)
            );
            prop_assert!(allocation_is_valid(&problem, &o));
        }
    }

    #[test]
    fn hydra_is_deterministic(problem in arb_problem(4)) {
        let a = HydraAllocator::default().allocate(&problem);
        let b = HydraAllocator::default().allocate(&problem);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn adding_a_core_never_hurts_hydra_feasibility(problem in arb_problem(3)) {
        // More cores = strictly more placement options with no extra
        // interference anywhere, and the RT best-fit partition can only
        // spread out further.
        if HydraAllocator::default().allocate(&problem).is_ok() {
            let bigger = AllocationProblem::new(
                problem.rt_tasks.clone(),
                problem.security_tasks.clone(),
                problem.cores + 1,
            );
            // Note: best-fit RT packing on more cores produces a partition at
            // most as loaded per core, so a feasible smaller platform implies
            // a feasible larger one.
            prop_assert!(HydraAllocator::default().allocate(&bigger).is_ok());
        }
    }

    #[test]
    fn cumulative_tightness_bounded_by_total_weight(problem in arb_problem(4)) {
        if let Ok(allocation) = HydraAllocator::default().allocate(&problem) {
            let total = allocation.cumulative_tightness(&problem.security_tasks);
            prop_assert!(total <= problem.security_tasks.total_weight() + 1e-9);
            prop_assert!(total >= 0.0);
        }
    }
}
