//! Monomial and posynomial expressions over positive variables.
//!
//! A *monomial* is `c · x_0^{a_0} · x_1^{a_1} · … · x_{n−1}^{a_{n−1}}` with a
//! positive coefficient `c > 0` and arbitrary real exponents. A *posynomial*
//! is a sum of monomials. In log-space (`y_i = log x_i`) a monomial becomes
//! the affine function `log c + a · y` and a posynomial becomes a log-sum-exp
//! of affine functions, which is smooth and convex — the property the solver
//! relies on.

use core::fmt;

/// A monomial `c · Π x_i^{a_i}` with positive coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct Monomial {
    coefficient: f64,
    exponents: Vec<f64>,
}

impl Monomial {
    /// Creates a monomial with the given coefficient and per-variable
    /// exponents (`exponents[i]` is the exponent of variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if the coefficient is not strictly positive and finite.
    #[must_use]
    pub fn new(coefficient: f64, exponents: Vec<f64>) -> Self {
        assert!(
            coefficient.is_finite() && coefficient > 0.0,
            "monomial coefficients must be positive and finite, got {coefficient}"
        );
        assert!(
            exponents.iter().all(|e| e.is_finite()),
            "monomial exponents must be finite"
        );
        Monomial {
            coefficient,
            exponents,
        }
    }

    /// A constant monomial `c` over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not strictly positive and finite.
    #[must_use]
    pub fn constant(c: f64, num_vars: usize) -> Self {
        Monomial::new(c, vec![0.0; num_vars])
    }

    /// The monomial `c · x_var` over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not strictly positive and finite or `var` is out of
    /// range.
    #[must_use]
    pub fn variable(c: f64, var: usize, num_vars: usize) -> Self {
        assert!(var < num_vars, "variable index {var} out of range");
        let mut exps = vec![0.0; num_vars];
        exps[var] = 1.0;
        Monomial::new(c, exps)
    }

    /// The monomial `c / x_var` over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not strictly positive and finite or `var` is out of
    /// range.
    #[must_use]
    pub fn inverse_variable(c: f64, var: usize, num_vars: usize) -> Self {
        assert!(var < num_vars, "variable index {var} out of range");
        let mut exps = vec![0.0; num_vars];
        exps[var] = -1.0;
        Monomial::new(c, exps)
    }

    /// Coefficient `c`.
    #[must_use]
    pub fn coefficient(&self) -> f64 {
        self.coefficient
    }

    /// Per-variable exponents.
    #[must_use]
    pub fn exponents(&self) -> &[f64] {
        &self.exponents
    }

    /// Number of variables this monomial is defined over.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.exponents.len()
    }

    /// Evaluates the monomial at the (positive) point `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the number of variables.
    #[must_use]
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.exponents.len(), "dimension mismatch");
        let mut v = self.coefficient;
        for (xi, ai) in x.iter().zip(&self.exponents) {
            if *ai != 0.0 {
                v *= xi.powf(*ai);
            }
        }
        v
    }

    /// Evaluates `log(monomial)` at the log-space point `y = log x`:
    /// `log c + a · y`.
    #[must_use]
    pub fn eval_log(&self, y: &[f64]) -> f64 {
        assert_eq!(y.len(), self.exponents.len(), "dimension mismatch");
        self.coefficient.ln()
            + y.iter()
                .zip(&self.exponents)
                .map(|(yi, ai)| yi * ai)
                .sum::<f64>()
    }

    /// Multiplies two monomials (coefficients multiply, exponents add).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn product(&self, other: &Monomial) -> Monomial {
        assert_eq!(self.num_vars(), other.num_vars(), "dimension mismatch");
        Monomial::new(
            self.coefficient * other.coefficient,
            self.exponents
                .iter()
                .zip(&other.exponents)
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// The reciprocal monomial `1 / m`.
    #[must_use]
    pub fn reciprocal(&self) -> Monomial {
        Monomial::new(
            1.0 / self.coefficient,
            self.exponents.iter().map(|a| -a).collect(),
        )
    }

    /// Scales the coefficient by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Monomial {
        Monomial::new(self.coefficient * factor, self.exponents.clone())
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.coefficient)?;
        for (i, a) in self.exponents.iter().enumerate() {
            if *a != 0.0 {
                write!(f, "·x{i}^{a}")?;
            }
        }
        Ok(())
    }
}

/// A posynomial: a sum of monomials over the same variable vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Posynomial {
    terms: Vec<Monomial>,
    num_vars: usize,
}

impl Posynomial {
    /// Creates an empty posynomial (identically zero) over `num_vars`
    /// variables. Note that the zero posynomial is not a valid GP objective
    /// or constraint body; add terms before using it.
    #[must_use]
    pub fn zero(num_vars: usize) -> Self {
        Posynomial {
            terms: Vec::new(),
            num_vars,
        }
    }

    /// Creates a posynomial from a list of monomials.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or the monomials have inconsistent
    /// dimensions.
    #[must_use]
    pub fn new(terms: Vec<Monomial>) -> Self {
        assert!(!terms.is_empty(), "a posynomial needs at least one term");
        let num_vars = terms[0].num_vars();
        assert!(
            terms.iter().all(|t| t.num_vars() == num_vars),
            "all monomials must range over the same variables"
        );
        Posynomial { terms, num_vars }
    }

    /// Adds a monomial term.
    ///
    /// # Panics
    ///
    /// Panics if the dimension of `term` is inconsistent with terms already
    /// present (an empty posynomial adopts the dimension of the first term,
    /// provided it matches `num_vars` given at construction).
    pub fn push(&mut self, term: Monomial) {
        assert_eq!(
            term.num_vars(),
            self.num_vars,
            "monomial dimension {} does not match posynomial dimension {}",
            term.num_vars(),
            self.num_vars
        );
        self.terms.push(term);
    }

    /// The monomial terms.
    #[must_use]
    pub fn terms(&self) -> &[Monomial] {
        &self.terms
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Whether the posynomial has no terms.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the posynomial at the positive point `x`.
    #[must_use]
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|t| t.eval(x)).sum()
    }

    /// Evaluates `log(posynomial)` at the log-space point `y = log x` using a
    /// numerically stable log-sum-exp.
    ///
    /// # Panics
    ///
    /// Panics if the posynomial is empty.
    #[must_use]
    pub fn eval_log(&self, y: &[f64]) -> f64 {
        assert!(
            !self.terms.is_empty(),
            "cannot evaluate an empty posynomial"
        );
        let logs: Vec<f64> = self.terms.iter().map(|t| t.eval_log(y)).collect();
        log_sum_exp(&logs)
    }

    /// Gradient of `log(posynomial)` with respect to `y` at the log-space
    /// point `y`: a convex combination of the monomial exponent vectors,
    /// weighted by the softmax of the per-term log values.
    ///
    /// # Panics
    ///
    /// Panics if the posynomial is empty.
    #[must_use]
    pub fn grad_log(&self, y: &[f64]) -> Vec<f64> {
        assert!(
            !self.terms.is_empty(),
            "cannot differentiate an empty posynomial"
        );
        let logs: Vec<f64> = self.terms.iter().map(|t| t.eval_log(y)).collect();
        let lse = log_sum_exp(&logs);
        let mut grad = vec![0.0; self.num_vars];
        for (term, lg) in self.terms.iter().zip(&logs) {
            let w = (lg - lse).exp();
            for (g, a) in grad.iter_mut().zip(term.exponents()) {
                *g += w * a;
            }
        }
        grad
    }

    /// Sum of two posynomials.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn sum(&self, other: &Posynomial) -> Posynomial {
        assert_eq!(self.num_vars, other.num_vars, "dimension mismatch");
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().cloned());
        Posynomial {
            terms,
            num_vars: self.num_vars,
        }
    }

    /// Multiplies every term by a monomial (posynomial × monomial is still a
    /// posynomial).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn times_monomial(&self, m: &Monomial) -> Posynomial {
        Posynomial {
            terms: self.terms.iter().map(|t| t.product(m)).collect(),
            num_vars: self.num_vars,
        }
    }

    /// Scales every coefficient by `factor > 0`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Posynomial {
        Posynomial {
            terms: self.terms.iter().map(|t| t.scaled(factor)).collect(),
            num_vars: self.num_vars,
        }
    }
}

impl From<Monomial> for Posynomial {
    fn from(m: Monomial) -> Self {
        Posynomial::new(vec![m])
    }
}

impl fmt::Display for Posynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let parts: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "{}", parts.join(" + "))
    }
}

/// Numerically stable `log(Σ exp(v_i))`.
#[must_use]
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    max + values.iter().map(|v| (v - max).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomial_eval_matches_definition() {
        // 2 · x0^2 · x1^-1 at (3, 4) = 2·9/4 = 4.5
        let m = Monomial::new(2.0, vec![2.0, -1.0]);
        assert!((m.eval(&[3.0, 4.0]) - 4.5).abs() < 1e-12);
        assert_eq!(m.num_vars(), 2);
    }

    #[test]
    fn monomial_log_eval_consistent_with_eval() {
        let m = Monomial::new(0.5, vec![1.5, -0.25, 3.0]);
        let x: [f64; 3] = [2.0, 5.0, 1.3];
        let y: Vec<f64> = x.iter().map(|v| v.ln()).collect();
        assert!((m.eval_log(&y) - m.eval(&x).ln()).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_coefficient_rejected() {
        let _ = Monomial::new(0.0, vec![1.0]);
    }

    #[test]
    fn monomial_constructors() {
        let c = Monomial::constant(3.0, 2);
        assert_eq!(c.eval(&[7.0, 11.0]), 3.0);
        let v = Monomial::variable(2.0, 1, 2);
        assert_eq!(v.eval(&[7.0, 11.0]), 22.0);
        let iv = Monomial::inverse_variable(2.0, 0, 2);
        assert!((iv.eval(&[4.0, 11.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monomial_algebra() {
        let a = Monomial::new(2.0, vec![1.0, 0.0]);
        let b = Monomial::new(3.0, vec![-1.0, 2.0]);
        let p = a.product(&b);
        assert_eq!(p.coefficient(), 6.0);
        assert_eq!(p.exponents(), &[0.0, 2.0]);
        let r = b.reciprocal();
        assert!((r.eval(&[2.0, 3.0]) * b.eval(&[2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(a.scaled(2.0).coefficient(), 4.0);
    }

    #[test]
    fn posynomial_eval_and_sum() {
        let p = Posynomial::new(vec![
            Monomial::new(1.0, vec![1.0]),
            Monomial::new(2.0, vec![-1.0]),
        ]);
        // x + 2/x at x = 2 → 2 + 1 = 3
        assert!((p.eval(&[2.0]) - 3.0).abs() < 1e-12);
        let q = Posynomial::from(Monomial::constant(1.0, 1));
        assert!((p.sum(&q).eval(&[2.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn posynomial_log_eval_matches_direct() {
        let p = Posynomial::new(vec![
            Monomial::new(1.5, vec![1.0, 0.5]),
            Monomial::new(0.3, vec![-2.0, 1.0]),
            Monomial::constant(2.0, 2),
        ]);
        let x: [f64; 2] = [0.7, 3.2];
        let y: Vec<f64> = x.iter().map(|v| v.ln()).collect();
        assert!((p.eval_log(&y) - p.eval(&x).ln()).abs() < 1e-10);
    }

    #[test]
    fn grad_log_matches_finite_differences() {
        let p = Posynomial::new(vec![
            Monomial::new(1.5, vec![1.0, 0.5]),
            Monomial::new(0.3, vec![-2.0, 1.0]),
            Monomial::constant(2.0, 2),
        ]);
        let y = [0.3, -0.7];
        let grad = p.grad_log(&y);
        let h = 1e-6;
        for i in 0..2 {
            let mut yp = y;
            yp[i] += h;
            let mut ym = y;
            ym[i] -= h;
            let fd = (p.eval_log(&yp) - p.eval_log(&ym)) / (2.0 * h);
            assert!(
                (grad[i] - fd).abs() < 1e-5,
                "gradient component {i}: analytic {} vs fd {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn times_monomial_distributes() {
        let p = Posynomial::new(vec![
            Monomial::new(1.0, vec![1.0]),
            Monomial::constant(3.0, 1),
        ]);
        let m = Monomial::inverse_variable(1.0, 0, 1);
        let q = p.times_monomial(&m);
        // (x + 3)/x at x = 2 → 2.5
        assert!((q.eval(&[2.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn push_checks_dimensions() {
        let mut p = Posynomial::zero(2);
        assert!(p.is_empty());
        p.push(Monomial::constant(1.0, 2));
        assert_eq!(p.terms().len(), 1);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn push_wrong_dimension_panics() {
        let mut p = Posynomial::zero(2);
        p.push(Monomial::constant(1.0, 3));
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_values() {
        let v = [1000.0, 1000.0];
        assert!((log_sum_exp(&v) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn display_is_nonempty() {
        let p = Posynomial::new(vec![Monomial::new(2.0, vec![1.0, -1.0])]);
        assert!(!p.to_string().is_empty());
        assert_eq!(Posynomial::zero(1).to_string(), "0");
    }
}
