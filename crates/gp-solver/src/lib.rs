//! # gp-solver — a small geometric-programming solver
//!
//! The HYDRA paper casts its period-adaptation problem as a geometric program
//! (GP) and solves it with GPkit/CVXOPT. This crate is the corresponding
//! substrate: it models monomials and posynomials over a vector of positive
//! variables, transforms a GP in standard form into a smooth convex problem
//! in log-space, and solves it with a penalty method driven by gradient
//! descent with backtracking line search.
//!
//! The problems produced by the HYDRA reproduction are tiny (one variable per
//! security task on a core, i.e. at most a dozen variables), so a compact
//! first-order method reaches more than enough accuracy; no external solver
//! is required.
//!
//! A GP in standard form is
//!
//! ```text
//! minimise    f0(x)                (posynomial)
//! subject to  fi(x) ≤ 1            (posynomials)
//!             gj(x) = 1            (monomials)
//!             x > 0
//! ```
//!
//! # Example
//!
//! ```
//! use gp_solver::{GpProblem, Monomial, Posynomial};
//!
//! # fn main() -> Result<(), gp_solver::GpError> {
//! // minimise 1/x  subject to  x ≤ 4   (so the optimum is x = 4)
//! let mut problem = GpProblem::new(1);
//! problem.set_objective(Posynomial::from(Monomial::new(1.0, vec![-1.0])));
//! problem.add_constraint_le(Posynomial::from(Monomial::new(0.25, vec![1.0])));
//! let solution = problem.solve(&Default::default())?;
//! assert!((solution.values[0] - 4.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod expr;
pub mod problem;
pub mod scalar;
pub mod solve;

pub use expr::{Monomial, Posynomial};
pub use problem::{GpError, GpProblem, GpSolution, GpStatus};
pub use solve::SolverOptions;
