//! Geometric programs in standard form and their solutions.

use core::fmt;

use crate::expr::{Monomial, Posynomial};
use crate::solve::{solve_penalty, SolverOptions};

/// Errors raised while building or solving a geometric program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpError {
    /// The objective was never set (or is empty).
    MissingObjective,
    /// A constraint or objective ranges over a different number of variables
    /// than the problem.
    DimensionMismatch {
        /// Expected number of variables.
        expected: usize,
        /// Number of variables found in the offending expression.
        found: usize,
    },
    /// The problem has no feasible point (detected by the phase-1 search).
    Infeasible,
    /// The iteration limit was reached before convergence.
    DidNotConverge,
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::MissingObjective => write!(f, "objective posynomial was not set"),
            GpError::DimensionMismatch { expected, found } => write!(
                f,
                "expression over {found} variables used in a problem with {expected} variables"
            ),
            GpError::Infeasible => write!(f, "no feasible point satisfies all constraints"),
            GpError::DidNotConverge => {
                write!(f, "solver reached its iteration limit before converging")
            }
        }
    }
}

impl std::error::Error for GpError {}

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpStatus {
    /// Converged to a point satisfying all constraints within tolerance.
    Optimal,
    /// Converged, but some constraint is violated beyond tolerance — the
    /// problem is (numerically) infeasible.
    Infeasible,
}

/// Solution of a geometric program.
#[derive(Debug, Clone, PartialEq)]
pub struct GpSolution {
    /// Status of the solve.
    pub status: GpStatus,
    /// Optimal variable values (in the original, not log, space).
    pub values: Vec<f64>,
    /// Objective value at `values`.
    pub objective: f64,
    /// Largest constraint violation `max_i (f_i(x) − 1)` at `values`
    /// (non-positive when feasible up to rounding).
    pub max_violation: f64,
    /// Number of gradient iterations used across all penalty stages.
    pub iterations: usize,
}

impl GpSolution {
    /// Whether the solution satisfies every constraint within the solver's
    /// feasibility tolerance.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.status == GpStatus::Optimal
    }
}

/// A geometric program in standard form.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct GpProblem {
    num_vars: usize,
    objective: Option<Posynomial>,
    le_constraints: Vec<Posynomial>,
    eq_constraints: Vec<Monomial>,
    initial_point: Option<Vec<f64>>,
}

impl GpProblem {
    /// Creates a problem over `num_vars` positive variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` is zero.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        assert!(
            num_vars > 0,
            "a geometric program needs at least one variable"
        );
        GpProblem {
            num_vars,
            objective: None,
            le_constraints: Vec::new(),
            eq_constraints: Vec::new(),
            initial_point: None,
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Sets the posynomial objective (to be minimised).
    pub fn set_objective(&mut self, objective: Posynomial) {
        self.objective = Some(objective);
    }

    /// Adds the constraint `posynomial ≤ 1`.
    pub fn add_constraint_le(&mut self, constraint: Posynomial) {
        self.le_constraints.push(constraint);
    }

    /// Adds the constraint `monomial = 1` (internally expanded into the two
    /// posynomial constraints `m ≤ 1` and `1/m ≤ 1`).
    pub fn add_constraint_eq(&mut self, constraint: Monomial) {
        self.eq_constraints.push(constraint);
    }

    /// Adds the box constraint `lower ≤ x_var ≤ upper` as two monomial
    /// constraints.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not positive and ordered, or `var` is out of
    /// range.
    pub fn add_bounds(&mut self, var: usize, lower: f64, upper: f64) {
        assert!(var < self.num_vars, "variable index {var} out of range");
        assert!(
            lower > 0.0 && upper >= lower && upper.is_finite(),
            "bounds must satisfy 0 < lower ≤ upper < ∞, got [{lower}, {upper}]"
        );
        // lower / x ≤ 1
        self.add_constraint_le(Posynomial::from(Monomial::inverse_variable(
            lower,
            var,
            self.num_vars,
        )));
        // x / upper ≤ 1
        self.add_constraint_le(Posynomial::from(Monomial::variable(
            1.0 / upper,
            var,
            self.num_vars,
        )));
    }

    /// Provides an initial (positive) point for the solver. A good warm start
    /// is not required but speeds up convergence.
    ///
    /// # Panics
    ///
    /// Panics if the point has the wrong dimension or non-positive entries.
    pub fn set_initial_point(&mut self, point: Vec<f64>) {
        assert_eq!(
            point.len(),
            self.num_vars,
            "initial point dimension mismatch"
        );
        assert!(
            point.iter().all(|v| *v > 0.0 && v.is_finite()),
            "initial point must be strictly positive and finite"
        );
        self.initial_point = Some(point);
    }

    /// Inequality constraints (`≤ 1` bodies), including the expansion of any
    /// equality constraints.
    #[must_use]
    pub fn all_le_constraints(&self) -> Vec<Posynomial> {
        let mut all = self.le_constraints.clone();
        for eq in &self.eq_constraints {
            all.push(Posynomial::from(eq.clone()));
            all.push(Posynomial::from(eq.reciprocal()));
        }
        all
    }

    /// Objective, if set.
    #[must_use]
    pub fn objective(&self) -> Option<&Posynomial> {
        self.objective.as_ref()
    }

    /// Initial point, if set.
    #[must_use]
    pub fn initial_point(&self) -> Option<&[f64]> {
        self.initial_point.as_deref()
    }

    fn validate(&self) -> Result<&Posynomial, GpError> {
        let objective = self
            .objective
            .as_ref()
            .filter(|o| !o.is_empty())
            .ok_or(GpError::MissingObjective)?;
        if objective.num_vars() != self.num_vars {
            return Err(GpError::DimensionMismatch {
                expected: self.num_vars,
                found: objective.num_vars(),
            });
        }
        for c in &self.le_constraints {
            if c.num_vars() != self.num_vars {
                return Err(GpError::DimensionMismatch {
                    expected: self.num_vars,
                    found: c.num_vars(),
                });
            }
        }
        for c in &self.eq_constraints {
            if c.num_vars() != self.num_vars {
                return Err(GpError::DimensionMismatch {
                    expected: self.num_vars,
                    found: c.num_vars(),
                });
            }
        }
        Ok(objective)
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::MissingObjective`] or [`GpError::DimensionMismatch`]
    /// for malformed problems. Numerical infeasibility is reported through
    /// [`GpSolution::status`], not as an error, so callers can still inspect
    /// the best point found.
    pub fn solve(&self, options: &SolverOptions) -> Result<GpSolution, GpError> {
        let objective = self.validate()?;
        Ok(solve_penalty(
            objective,
            &self.all_le_constraints(),
            self.initial_point.as_deref(),
            options,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_objective_is_an_error() {
        let p = GpProblem::new(1);
        assert_eq!(
            p.solve(&SolverOptions::default()),
            Err(GpError::MissingObjective)
        );
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let mut p = GpProblem::new(2);
        p.set_objective(Posynomial::from(Monomial::new(1.0, vec![1.0])));
        assert!(matches!(
            p.solve(&SolverOptions::default()),
            Err(GpError::DimensionMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn bounds_expand_to_two_constraints() {
        let mut p = GpProblem::new(1);
        p.add_bounds(0, 2.0, 8.0);
        assert_eq!(p.all_le_constraints().len(), 2);
    }

    #[test]
    fn equality_expands_to_two_constraints() {
        let mut p = GpProblem::new(2);
        p.add_constraint_eq(Monomial::new(1.0, vec![1.0, -1.0]));
        assert_eq!(p.all_le_constraints().len(), 2);
    }

    #[test]
    #[should_panic(expected = "bounds must satisfy")]
    fn inverted_bounds_panic() {
        let mut p = GpProblem::new(1);
        p.add_bounds(0, 8.0, 2.0);
    }

    #[test]
    fn error_display() {
        assert!(GpError::Infeasible.to_string().contains("feasible"));
        assert!(GpError::DidNotConverge.to_string().contains("iteration"));
    }
}
