//! Closed-form solutions for single-variable fractional-linear programs.
//!
//! The per-task period-adaptation problem of the HYDRA paper (Eq. 7) has the
//! shape
//!
//! ```text
//! minimise x   subject to   lower ≤ x ≤ upper,   a + b·x ≤ x
//! ```
//!
//! with `a ≥ 0` (the constant part of the interference plus the task's own
//! WCET) and `b ≥ 0` (the utilisation of the interfering tasks). Because
//! maximising the tightness `lower / x` is the same as minimising `x`, the
//! optimum is simply the smallest feasible `x`, which has a closed form:
//! `x* = max(lower, a / (1 − b))`, feasible iff `b < 1` and `x* ≤ upper`.
//! This module provides that closed form so the hot path of the HYDRA
//! allocator does not need the iterative solver; the iterative GP solver is
//! still used (and cross-checked against this) for the joint multi-variable
//! problem of the optimal baseline.

use core::fmt;

/// Outcome of [`minimize_linear_fractional`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarSolution {
    /// The smallest feasible value of the variable.
    Feasible(f64),
    /// No value in `[lower, upper]` satisfies the constraint.
    Infeasible,
}

impl ScalarSolution {
    /// The feasible value, if any.
    #[must_use]
    pub fn value(self) -> Option<f64> {
        match self {
            ScalarSolution::Feasible(v) => Some(v),
            ScalarSolution::Infeasible => None,
        }
    }

    /// Whether a feasible value exists.
    #[must_use]
    pub fn is_feasible(self) -> bool {
        matches!(self, ScalarSolution::Feasible(_))
    }
}

impl fmt::Display for ScalarSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarSolution::Feasible(v) => write!(f, "feasible at {v}"),
            ScalarSolution::Infeasible => write!(f, "infeasible"),
        }
    }
}

/// Minimises `x` subject to `lower ≤ x ≤ upper` and `a + b·x ≤ x`.
///
/// Returns the smallest feasible `x`, or [`ScalarSolution::Infeasible`] when
/// the constraint set is empty (`b ≥ 1`, or the required value exceeds
/// `upper`).
///
/// # Panics
///
/// Panics if `lower`, `upper`, `a` or `b` is negative or not finite, or if
/// `lower > upper` or `lower` is zero.
#[must_use]
pub fn minimize_linear_fractional(lower: f64, upper: f64, a: f64, b: f64) -> ScalarSolution {
    assert!(
        lower.is_finite() && upper.is_finite() && a.is_finite() && b.is_finite(),
        "all parameters must be finite"
    );
    assert!(lower > 0.0, "lower bound must be positive, got {lower}");
    assert!(
        upper >= lower,
        "upper bound {upper} below lower bound {lower}"
    );
    assert!(a >= 0.0 && b >= 0.0, "a and b must be non-negative");

    if b >= 1.0 {
        // The constraint a + b·x ≤ x can never hold for positive a (and for
        // a = 0 only in the degenerate limit), so the problem is infeasible
        // unless a == 0 and b == 1 exactly, which we still reject: an
        // interfering load of 100% leaves no slack for the task itself.
        return ScalarSolution::Infeasible;
    }
    let required = a / (1.0 - b);
    let x = required.max(lower);
    if x <= upper {
        ScalarSolution::Feasible(x)
    } else {
        ScalarSolution::Infeasible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Monomial, Posynomial};
    use crate::problem::GpProblem;
    use crate::solve::SolverOptions;

    #[test]
    fn unconstrained_by_interference_returns_lower_bound() {
        // No interference at all: the desired (lower) value is achievable.
        let s = minimize_linear_fractional(10.0, 100.0, 2.0, 0.0);
        assert_eq!(s, ScalarSolution::Feasible(10.0));
    }

    #[test]
    fn interference_pushes_value_up() {
        // a = 4, b = 0.5 → required 8; lower 5 → optimum 8.
        let s = minimize_linear_fractional(5.0, 100.0, 4.0, 0.5);
        assert_eq!(s, ScalarSolution::Feasible(8.0));
    }

    #[test]
    fn infeasible_when_requirement_exceeds_upper() {
        let s = minimize_linear_fractional(5.0, 7.9, 4.0, 0.5);
        assert_eq!(s, ScalarSolution::Infeasible);
        assert_eq!(s.value(), None);
        assert!(!s.is_feasible());
    }

    #[test]
    fn infeasible_when_interfering_load_saturates() {
        assert_eq!(
            minimize_linear_fractional(1.0, 1e9, 0.5, 1.0),
            ScalarSolution::Infeasible
        );
        assert_eq!(
            minimize_linear_fractional(1.0, 1e9, 0.5, 1.5),
            ScalarSolution::Infeasible
        );
    }

    #[test]
    fn boundary_feasibility_at_upper() {
        let s = minimize_linear_fractional(5.0, 8.0, 4.0, 0.5);
        assert_eq!(s, ScalarSolution::Feasible(8.0));
    }

    #[test]
    #[should_panic(expected = "lower bound must be positive")]
    fn zero_lower_bound_panics() {
        let _ = minimize_linear_fractional(0.0, 1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "below lower bound")]
    fn inverted_bounds_panic() {
        let _ = minimize_linear_fractional(2.0, 1.0, 0.0, 0.0);
    }

    #[test]
    fn closed_form_matches_iterative_gp_solver() {
        // minimise T (equivalently maximise lower/T) subject to
        // lower ≤ T ≤ upper and (a + b·T)/T ≤ 1, as a GP:
        //   objective: T        (we minimise T directly; same optimiser)
        //   constraint: a·T^-1 + b ≤ 1
        let cases = [
            (10.0, 200.0, 3.0, 0.4),
            (50.0, 500.0, 20.0, 0.7),
            (5.0, 50.0, 0.5, 0.05),
            (100.0, 1000.0, 90.0, 0.2),
        ];
        for (lower, upper, a, b) in cases {
            let closed = minimize_linear_fractional(lower, upper, a, b)
                .value()
                .expect("cases are feasible");

            let mut p = GpProblem::new(1);
            p.set_objective(Posynomial::from(Monomial::new(1.0, vec![1.0])));
            // a/T + b ≤ 1
            p.add_constraint_le(Posynomial::new(vec![
                Monomial::new(a.max(1e-12), vec![-1.0]),
                Monomial::constant(b.max(1e-12), 1),
            ]));
            p.add_bounds(0, lower, upper);
            p.set_initial_point(vec![upper]);
            let s = p.solve(&SolverOptions::default()).unwrap();
            assert!(s.is_feasible());
            let rel = (s.values[0] - closed).abs() / closed;
            assert!(
                rel < 1e-3,
                "GP solver {} vs closed form {closed} (case a={a}, b={b})",
                s.values[0]
            );
        }
    }
}
