//! Penalty-method solver for geometric programs in log-space.
//!
//! After the log transformation `y = log x`, a GP becomes
//!
//! ```text
//! minimise    F0(y) = log f0(e^y)
//! subject to  Fi(y) = log fi(e^y) ≤ 0
//! ```
//!
//! where every `F` is a smooth convex log-sum-exp function. The solver
//! minimises the quadratic-penalty merit function
//! `Φ_μ(y) = F0(y) + μ · Σ max(0, Fi(y))²` with gradient descent and Armijo
//! backtracking, increasing `μ` geometrically across stages. For the small,
//! well-scaled problems produced by the HYDRA reproduction this reliably
//! reaches ~1e-6 feasibility and ~1e-5 relative objective accuracy.

use crate::expr::Posynomial;
use crate::problem::{GpSolution, GpStatus};

/// Tunable parameters of the penalty solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Initial penalty weight `μ`.
    pub initial_penalty: f64,
    /// Multiplier applied to `μ` between stages.
    pub penalty_growth: f64,
    /// Number of penalty stages.
    pub stages: usize,
    /// Maximum gradient iterations per stage.
    pub max_iterations_per_stage: usize,
    /// Stop a stage when the merit-function gradient norm falls below this.
    pub gradient_tolerance: f64,
    /// A point is feasible when every constraint satisfies
    /// `f_i(x) ≤ 1 + feasibility_tolerance`.
    pub feasibility_tolerance: f64,
    /// Initial step length for the backtracking line search.
    pub initial_step: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            initial_penalty: 10.0,
            penalty_growth: 10.0,
            stages: 8,
            max_iterations_per_stage: 400,
            gradient_tolerance: 1e-9,
            feasibility_tolerance: 1e-6,
            initial_step: 1.0,
        }
    }
}

impl SolverOptions {
    /// A faster, slightly less accurate preset for use inside large
    /// experiment sweeps.
    #[must_use]
    pub fn fast() -> Self {
        SolverOptions {
            stages: 6,
            max_iterations_per_stage: 150,
            gradient_tolerance: 1e-7,
            ..SolverOptions::default()
        }
    }
}

fn merit_value(objective: &Posynomial, constraints: &[Posynomial], y: &[f64], mu: f64) -> f64 {
    let mut v = objective.eval_log(y);
    for c in constraints {
        let g = c.eval_log(y);
        if g > 0.0 {
            v += mu * g * g;
        }
    }
    v
}

fn merit_gradient(
    objective: &Posynomial,
    constraints: &[Posynomial],
    y: &[f64],
    mu: f64,
) -> Vec<f64> {
    let mut grad = objective.grad_log(y);
    for c in constraints {
        let g = c.eval_log(y);
        if g > 0.0 {
            let cg = c.grad_log(y);
            for (gi, ci) in grad.iter_mut().zip(cg) {
                *gi += 2.0 * mu * g * ci;
            }
        }
    }
    grad
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Solves `minimise objective(x)` subject to `constraints[i](x) ≤ 1`, `x > 0`
/// with the quadratic-penalty method described in the module documentation.
///
/// `initial` is an optional warm-start point in the original (positive)
/// variable space; the default start is `x = 1`.
#[must_use]
pub fn solve_penalty(
    objective: &Posynomial,
    constraints: &[Posynomial],
    initial: Option<&[f64]>,
    options: &SolverOptions,
) -> GpSolution {
    let n = objective.num_vars();
    let mut y: Vec<f64> = match initial {
        Some(x0) => x0.iter().map(|v| v.max(1e-12).ln()).collect(),
        None => vec![0.0; n],
    };

    let mut total_iterations = 0usize;
    let mut mu = options.initial_penalty;
    for _stage in 0..options.stages {
        for _ in 0..options.max_iterations_per_stage {
            total_iterations += 1;
            let grad = merit_gradient(objective, constraints, &y, mu);
            let gnorm = norm(&grad);
            if gnorm < options.gradient_tolerance {
                break;
            }
            // Backtracking (Armijo) line search along the steepest-descent
            // direction.
            let f0 = merit_value(objective, constraints, &y, mu);
            let mut step = options.initial_step;
            let mut accepted = false;
            for _ in 0..60 {
                let candidate: Vec<f64> =
                    y.iter().zip(&grad).map(|(yi, gi)| yi - step * gi).collect();
                let f1 = merit_value(objective, constraints, &candidate, mu);
                if f1 <= f0 - 1e-4 * step * gnorm * gnorm {
                    y = candidate;
                    accepted = true;
                    break;
                }
                step *= 0.5;
            }
            if !accepted {
                // No descent step of any useful size exists — the stage has
                // converged to numerical precision.
                break;
            }
        }
        mu *= options.penalty_growth;
    }

    let x: Vec<f64> = y.iter().map(|v| v.exp()).collect();
    let max_violation = constraints
        .iter()
        .map(|c| c.eval(&x) - 1.0)
        .fold(f64::NEG_INFINITY, f64::max)
        .max(0.0_f64.min(f64::NEG_INFINITY)); // empty constraint list → -inf
    let max_violation = if constraints.is_empty() {
        0.0
    } else {
        max_violation
    };
    let status = if max_violation <= options.feasibility_tolerance {
        GpStatus::Optimal
    } else {
        GpStatus::Infeasible
    };
    GpSolution {
        status,
        objective: objective.eval(&x),
        values: x,
        max_violation,
        iterations: total_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Monomial;
    use crate::problem::GpProblem;

    fn solve(problem: &GpProblem) -> GpSolution {
        problem
            .solve(&SolverOptions::default())
            .expect("well-formed problem")
    }

    #[test]
    fn unconstrained_sum_of_x_and_inverse() {
        // minimise x + 1/x → optimum at x = 1, value 2.
        let mut p = GpProblem::new(1);
        p.set_objective(Posynomial::new(vec![
            Monomial::new(1.0, vec![1.0]),
            Monomial::new(1.0, vec![-1.0]),
        ]));
        let s = solve(&p);
        assert!(s.is_feasible());
        assert!((s.values[0] - 1.0).abs() < 1e-4, "got {}", s.values[0]);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn upper_bound_becomes_active() {
        // minimise 1/x subject to x ≤ 4 → x* = 4.
        let mut p = GpProblem::new(1);
        p.set_objective(Posynomial::from(Monomial::new(1.0, vec![-1.0])));
        p.add_constraint_le(Posynomial::from(Monomial::new(0.25, vec![1.0])));
        let s = solve(&p);
        assert!(s.is_feasible());
        assert!((s.values[0] - 4.0).abs() < 1e-3, "got {}", s.values[0]);
    }

    #[test]
    fn box_constrained_minimum_at_lower_bound() {
        // minimise x subject to 2 ≤ x ≤ 8 → x* = 2.
        let mut p = GpProblem::new(1);
        p.set_objective(Posynomial::from(Monomial::new(1.0, vec![1.0])));
        p.add_bounds(0, 2.0, 8.0);
        let s = solve(&p);
        assert!(s.is_feasible());
        assert!((s.values[0] - 2.0).abs() < 1e-3, "got {}", s.values[0]);
    }

    #[test]
    fn two_variable_geometric_mean_tradeoff() {
        // minimise 1/(x·y) subject to x ≤ 2, y ≤ 3 → optimum x=2, y=3, obj 1/6.
        let mut p = GpProblem::new(2);
        p.set_objective(Posynomial::from(Monomial::new(1.0, vec![-1.0, -1.0])));
        p.add_constraint_le(Posynomial::from(Monomial::new(0.5, vec![1.0, 0.0])));
        p.add_constraint_le(Posynomial::from(Monomial::new(1.0 / 3.0, vec![0.0, 1.0])));
        let s = solve(&p);
        assert!(s.is_feasible());
        assert!((s.values[0] - 2.0).abs() < 5e-3);
        assert!((s.values[1] - 3.0).abs() < 5e-3);
        assert!((s.objective - 1.0 / 6.0).abs() < 1e-3);
    }

    #[test]
    fn classic_gp_with_coupled_constraint() {
        // minimise 1/(x·y) subject to x + y ≤ 2 → x = y = 1, objective 1.
        let mut p = GpProblem::new(2);
        p.set_objective(Posynomial::from(Monomial::new(1.0, vec![-1.0, -1.0])));
        p.add_constraint_le(Posynomial::new(vec![
            Monomial::new(0.5, vec![1.0, 0.0]),
            Monomial::new(0.5, vec![0.0, 1.0]),
        ]));
        let s = solve(&p);
        assert!(s.is_feasible());
        assert!((s.values[0] - 1.0).abs() < 1e-2, "x = {}", s.values[0]);
        assert!((s.values[1] - 1.0).abs() < 1e-2, "y = {}", s.values[1]);
        assert!((s.objective - 1.0).abs() < 1e-2);
    }

    #[test]
    fn infeasible_problem_is_flagged() {
        // x ≤ 1 and x ≥ 3 cannot both hold.
        let mut p = GpProblem::new(1);
        p.set_objective(Posynomial::from(Monomial::new(1.0, vec![1.0])));
        p.add_constraint_le(Posynomial::from(Monomial::new(1.0, vec![1.0]))); // x ≤ 1
        p.add_constraint_le(Posynomial::from(Monomial::new(3.0, vec![-1.0]))); // 3/x ≤ 1
        let s = solve(&p);
        assert_eq!(s.status, GpStatus::Infeasible);
        assert!(s.max_violation > 0.1);
    }

    #[test]
    fn warm_start_is_honoured_and_converges() {
        let mut p = GpProblem::new(1);
        p.set_objective(Posynomial::from(Monomial::new(1.0, vec![-1.0])));
        p.add_constraint_le(Posynomial::from(Monomial::new(0.1, vec![1.0]))); // x ≤ 10
        p.set_initial_point(vec![9.5]);
        let s = solve(&p);
        assert!(s.is_feasible());
        assert!((s.values[0] - 10.0).abs() < 1e-2);
        assert!(s.iterations > 0);
    }

    #[test]
    fn fast_preset_still_accurate_enough() {
        let mut p = GpProblem::new(1);
        p.set_objective(Posynomial::from(Monomial::new(1.0, vec![-1.0])));
        p.add_constraint_le(Posynomial::from(Monomial::new(0.25, vec![1.0])));
        let s = p.solve(&SolverOptions::fast()).unwrap();
        assert!(s.is_feasible());
        assert!((s.values[0] - 4.0).abs() < 1e-2);
    }

    #[test]
    fn no_constraints_reports_zero_violation() {
        let mut p = GpProblem::new(1);
        p.set_objective(Posynomial::new(vec![
            Monomial::new(1.0, vec![2.0]),
            Monomial::new(4.0, vec![-1.0]),
        ]));
        let s = solve(&p);
        assert_eq!(s.max_violation, 0.0);
        assert!(s.is_feasible());
        // d/dx (x² + 4/x) = 2x − 4/x² = 0 → x = 2^(1/3).
        assert!((s.values[0] - 2f64.powf(1.0 / 3.0)).abs() < 1e-3);
    }
}
