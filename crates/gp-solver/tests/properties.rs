//! Property-based tests for the geometric-programming solver.

use gp_solver::scalar::{minimize_linear_fractional, ScalarSolution};
use gp_solver::{GpProblem, Monomial, Posynomial, SolverOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn monomial_eval_log_consistency(
        c in 0.01f64..100.0,
        e0 in -3.0f64..3.0,
        e1 in -3.0f64..3.0,
        x0 in 0.1f64..10.0,
        x1 in 0.1f64..10.0,
    ) {
        let m = Monomial::new(c, vec![e0, e1]);
        let direct = m.eval(&[x0, x1]).ln();
        let logspace = m.eval_log(&[x0.ln(), x1.ln()]);
        prop_assert!((direct - logspace).abs() < 1e-8);
    }

    #[test]
    fn posynomial_is_monotone_in_coefficients(
        c in 0.01f64..10.0,
        extra in 0.01f64..10.0,
        x in 0.1f64..10.0,
    ) {
        let p = Posynomial::new(vec![Monomial::new(c, vec![1.0])]);
        let q = p.sum(&Posynomial::from(Monomial::constant(extra, 1)));
        prop_assert!(q.eval(&[x]) > p.eval(&[x]));
    }

    #[test]
    fn scalar_solution_satisfies_all_constraints(
        lower in 1.0f64..100.0,
        span in 1.0f64..1000.0,
        a in 0.0f64..200.0,
        b in 0.0f64..1.5,
    ) {
        let upper = lower + span;
        match minimize_linear_fractional(lower, upper, a, b) {
            ScalarSolution::Feasible(x) => {
                prop_assert!(x >= lower - 1e-9);
                prop_assert!(x <= upper + 1e-9);
                prop_assert!(a + b * x <= x + 1e-6);
            }
            ScalarSolution::Infeasible => {
                // The most generous candidate is x = upper; it must violate
                // the linear constraint (otherwise the problem was feasible).
                prop_assert!(a + b * upper > upper - 1e-9);
            }
        }
    }

    #[test]
    fn scalar_solution_is_minimal(
        lower in 1.0f64..100.0,
        span in 1.0f64..1000.0,
        a in 0.0f64..200.0,
        b in 0.0f64..0.95,
    ) {
        let upper = lower + span;
        if let ScalarSolution::Feasible(x) = minimize_linear_fractional(lower, upper, a, b) {
            // Any strictly smaller value within the box violates the linear
            // constraint, unless x is already at the lower bound.
            if x > lower + 1e-9 {
                let smaller = (x - 1e-6).max(lower);
                prop_assert!(a + b * smaller > smaller - 1e-4);
            }
        }
    }

    #[test]
    fn gp_minimum_of_bounded_variable_is_lower_bound(
        lower in 0.5f64..10.0,
        span in 0.5f64..20.0,
    ) {
        let upper = lower + span;
        let mut p = GpProblem::new(1);
        p.set_objective(Posynomial::from(Monomial::new(1.0, vec![1.0])));
        p.add_bounds(0, lower, upper);
        let s = p.solve(&SolverOptions::default()).unwrap();
        prop_assert!(s.is_feasible());
        prop_assert!((s.values[0] - lower).abs() / lower < 1e-2);
    }

    #[test]
    fn gp_maximum_of_bounded_variable_is_upper_bound(
        lower in 0.5f64..10.0,
        span in 0.5f64..20.0,
    ) {
        let upper = lower + span;
        // maximise x == minimise 1/x
        let mut p = GpProblem::new(1);
        p.set_objective(Posynomial::from(Monomial::new(1.0, vec![-1.0])));
        p.add_bounds(0, lower, upper);
        let s = p.solve(&SolverOptions::default()).unwrap();
        prop_assert!(s.is_feasible());
        prop_assert!((s.values[0] - upper).abs() / upper < 1e-2);
    }

    #[test]
    fn solver_result_never_violates_constraints_when_optimal(
        a in 0.1f64..5.0,
        b in 0.1f64..0.9,
        lower in 1.0f64..10.0,
    ) {
        // minimise x subject to a/x + b ≤ 1 and x ≥ lower.
        let mut p = GpProblem::new(1);
        p.set_objective(Posynomial::from(Monomial::new(1.0, vec![1.0])));
        p.add_constraint_le(Posynomial::new(vec![
            Monomial::new(a, vec![-1.0]),
            Monomial::constant(b, 1),
        ]));
        p.add_constraint_le(Posynomial::from(Monomial::new(lower, vec![-1.0])));
        let s = p.solve(&SolverOptions::default()).unwrap();
        if s.is_feasible() {
            let x = s.values[0];
            prop_assert!(a / x + b <= 1.0 + 1e-4);
            prop_assert!(x >= lower - 1e-4);
            // Optimal value matches the closed form max(lower, a/(1-b)).
            let expected = (a / (1.0 - b)).max(lower);
            prop_assert!((x - expected).abs() / expected < 5e-3,
                "x = {x}, expected {expected}");
        }
    }
}
