//! Structure-of-arrays batch kernels for the hot analysis math.
//!
//! The sweep engine evaluates thousands of closely related schedulability
//! questions: the same fixed-point recurrence (response-time analysis) and
//! the same demand sums (the Eq. (1) necessary condition) over task sets
//! that differ only in one column of the design grid. The scalar analyses
//! in [`crate::rta`] and [`crate::dbf`] walk those one task at a time; the
//! kernels here restructure the same math into **lanes**: fixed-width
//! arrays-of-[`LANES`] columns (`[u64; LANES]` per task row) advanced in
//! lockstep, one iteration moving all lanes at once behind per-lane
//! converged/unschedulable masks.
//!
//! Everything stays exact integer (tick) arithmetic in stable Rust — plain
//! arrays the auto-vectorizer can unroll, no `std::simd`. The per-lane
//! division chains of the RTA recurrence do not vectorize on most targets,
//! but eight independent chains give the out-of-order core real
//! instruction-level parallelism, and the surrounding bookkeeping
//! (interference sums, masks, demand accumulation) does vectorize.
//!
//! # Oracle contract
//!
//! The scalar implementations remain the differential oracle: for every
//! lane, [`BatchRtaKernel`] produces **bit-identical** [`ResponseTime`]
//! verdicts to [`crate::rta::response_time_with_interference`] over the
//! same rows, and [`BatchDemandKernel`] reproduces
//! [`crate::dbf::necessary_condition_default_horizon`] exactly. This holds
//! because every per-lane operation sequence is the scalar sequence:
//! saturating `u64` sums of non-negative terms are order-independent
//! (the result is `min(exact total, u64::MAX)` in every order), so adding
//! interferers in row order instead of task-id order cannot change a
//! single bit. The property is pinned by differential proptests below.

use crate::dbf::demand_check_points;
use crate::rta::ResponseTime;
use crate::task::TaskSet;
use crate::time::Time;

/// The fixed lane width of every batch kernel: eight 64-bit columns, one
/// 512-bit row per task parameter.
pub const LANES: usize = 8;

/// Whether a caller wants the batched kernels or the scalar reference
/// implementations. The scalar path is kept as the differential oracle;
/// both produce bit-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BatchMode {
    /// Evaluate through the structure-of-arrays lane kernels (default).
    #[default]
    Batch,
    /// Evaluate through the scalar reference implementations.
    Scalar,
}

/// Counters describing how well the batch kernels were fed: a histogram of
/// lane occupancy per dispatched batch, plus how often a caller fell back
/// to the scalar path (ragged remainders, shapes with fewer than two
/// lanes, or non-batchable configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// `lanes_filled[k]` counts batches dispatched with exactly `k` lanes
    /// occupied (index 0 is unused; kept so indices read naturally).
    pub lanes_filled: [u64; LANES + 1],
    /// Evaluations that bypassed the kernels entirely.
    pub scalar_fallbacks: u64,
}

impl BatchStats {
    /// Records one kernel dispatch with `lanes` occupied lanes.
    pub fn record_batch(&mut self, lanes: usize) {
        self.lanes_filled[lanes.min(LANES)] += 1;
    }

    /// Records one scalar-path evaluation.
    pub fn record_fallback(&mut self) {
        self.scalar_fallbacks += 1;
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &BatchStats) {
        for (acc, v) in self.lanes_filled.iter_mut().zip(other.lanes_filled) {
            *acc += v;
        }
        self.scalar_fallbacks += other.scalar_fallbacks;
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scalar_fallbacks == 0 && self.lanes_filled.iter().all(|&c| c == 0)
    }
}

/// A structure-of-arrays response-time kernel: up to [`LANES`] independent
/// rate-monotonic task columns verified in lockstep.
///
/// Each lane holds one core's candidate task list in **priority order**
/// (rows sorted highest priority first); rows are stored lane-major
/// (`row[j][lane]`), padded with neutral values (`wcet = 0`, `period = 1`)
/// so the inner loops stay branch-free across ragged lanes. A lane may set
/// a *start row*: rows before it are assumed schedulable with unchanged
/// response times (the partition heuristics use this for suffix-only
/// re-verification after inserting a candidate task, which is sound
/// because a row's interferer set is exactly the rows above it).
#[derive(Debug, Default)]
pub struct BatchRtaKernel {
    wcet: Vec<[u64; LANES]>,
    period: Vec<[u64; LANES]>,
    deadline: Vec<[u64; LANES]>,
    len: [usize; LANES],
    start: [usize; LANES],
    lanes: usize,
}

impl BatchRtaKernel {
    /// Creates an empty kernel.
    #[must_use]
    pub fn new() -> Self {
        BatchRtaKernel::default()
    }

    /// Resets the kernel for a batch of `lanes` occupied lanes, recycling
    /// the row storage.
    ///
    /// # Panics
    ///
    /// Panics if `lanes > LANES`.
    pub fn begin(&mut self, lanes: usize) {
        assert!(lanes <= LANES, "a batch holds at most {LANES} lanes");
        // Re-neutralise pooled rows so unwritten cells are harmless pads.
        for row in &mut self.wcet {
            *row = [0; LANES];
        }
        for row in &mut self.period {
            *row = [1; LANES];
        }
        for row in &mut self.deadline {
            *row = [0; LANES];
        }
        self.len = [0; LANES];
        self.start = [0; LANES];
        self.lanes = lanes;
    }

    /// Appends one task row (ticks) to `lane`, in priority order.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `period` is zero.
    pub fn push(&mut self, lane: usize, wcet: u64, period: u64, deadline: u64) {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        assert!(period > 0, "a task must have a positive period");
        let row = self.len[lane];
        if row == self.wcet.len() {
            self.wcet.push([0; LANES]);
            self.period.push([1; LANES]);
            self.deadline.push([0; LANES]);
        }
        self.wcet[row][lane] = wcet;
        self.period[row][lane] = period;
        self.deadline[row][lane] = deadline;
        self.len[lane] = row + 1;
    }

    /// Number of rows currently loaded into `lane`.
    #[must_use]
    pub fn rows(&self, lane: usize) -> usize {
        self.len[lane]
    }

    /// Verification starts at `row` for `lane`: rows before it are taken as
    /// schedulable without re-running their recurrences.
    ///
    /// # Panics
    ///
    /// Panics if `row` exceeds the lane's current length.
    pub fn set_start(&mut self, lane: usize, row: usize) {
        assert!(row <= self.len[lane], "start row past the lane's rows");
        self.start[lane] = row;
    }

    /// Runs the fixed-point recurrences of every lane in lockstep.
    ///
    /// Returns, per lane, whether every verified row (from the lane's start
    /// row down) is schedulable. `on_row` observes each verified row's
    /// verdict as it resolves — bit-identical to the scalar
    /// [`crate::rta::response_time_with_interference`] over the same rows.
    /// With `stop_on_failure` a lane abandons its remaining rows at the
    /// first unschedulable verdict (the admission-test shape); without it,
    /// every row is resolved (the full-analysis shape).
    pub fn solve<F>(&self, stop_on_failure: bool, mut on_row: F) -> [bool; LANES]
    where
        F: FnMut(usize, usize, ResponseTime),
    {
        let mut ok = [true; LANES];
        let mut active = [false; LANES];
        let mut cur = self.start;
        let mut r = [0u64; LANES];
        let mut base = [0u64; LANES];
        // Per-lane interference utilization of the rows above the current
        // row, folded incrementally as `cur` advances (rows below `start`
        // included — they interfere even when not re-verified). Feeds the
        // recurrence seed of `open_row`.
        let mut util = Acc {
            sum: [0.0; LANES],
            row: [0; LANES],
        };

        for lane in 0..self.lanes {
            self.open_row(
                lane,
                &mut cur,
                &mut r,
                &mut base,
                &mut active,
                &mut ok,
                &mut util,
                stop_on_failure,
                &mut on_row,
            );
        }

        loop {
            let mut deepest = 0usize;
            let mut any = false;
            for lane in 0..self.lanes {
                if active[lane] {
                    any = true;
                    deepest = deepest.max(cur[lane]);
                }
            }
            if !any {
                break;
            }
            // One lockstep recurrence iteration: every active lane's
            // candidate response time absorbs the interference of the rows
            // above its current row. Masked, branch-free accumulation: the
            // pad cells (wcet 0, period 1) and the `take` mask keep
            // off-lane work inert without branching.
            let mut next = base;
            for j in 0..deepest {
                let w = &self.wcet[j];
                let p = &self.period[j];
                for lane in 0..LANES {
                    let take = u64::from(j < cur[lane] && active[lane]);
                    let jobs = r[lane].div_ceil(p[lane]);
                    next[lane] = next[lane].saturating_add(take * w[lane].saturating_mul(jobs));
                }
            }
            for lane in 0..self.lanes {
                if !active[lane] {
                    continue;
                }
                let d = self.deadline[cur[lane]][lane];
                if next[lane] > d {
                    ok[lane] = false;
                    on_row(lane, cur[lane], ResponseTime::Unschedulable);
                    if stop_on_failure {
                        active[lane] = false;
                    } else {
                        cur[lane] += 1;
                        self.open_row(
                            lane,
                            &mut cur,
                            &mut r,
                            &mut base,
                            &mut active,
                            &mut ok,
                            &mut util,
                            stop_on_failure,
                            &mut on_row,
                        );
                    }
                } else if next[lane] == r[lane] {
                    on_row(
                        lane,
                        cur[lane],
                        ResponseTime::Schedulable(Time::from_ticks(r[lane])),
                    );
                    cur[lane] += 1;
                    self.open_row(
                        lane,
                        &mut cur,
                        &mut r,
                        &mut base,
                        &mut active,
                        &mut ok,
                        &mut util,
                        stop_on_failure,
                        &mut on_row,
                    );
                } else {
                    r[lane] = next[lane];
                }
            }
        }
        ok
    }

    /// Convenience wrapper over [`BatchRtaKernel::solve`] for admission
    /// tests: per-lane schedulability of the verified rows, abandoning a
    /// lane at its first failure.
    #[must_use]
    pub fn verdicts(&self) -> [bool; LANES] {
        self.solve(true, |_, _, _| ())
    }

    /// Positions `lane` at its next solvable row (skipping or failing rows
    /// whose WCET already exceeds their deadline, exactly like the scalar
    /// base check) and seeds its recurrence state from the
    /// utilization-derived lower bound of
    /// [`crate::rta::response_time_with_blocking`]: the fixed point
    /// satisfies `R ≥ wcet / (1 − U_hp)`, so rows on near-saturated lanes
    /// start their recurrence where it matters (or fail outright when the
    /// bound already misses the deadline — the recurrence converges to the
    /// identical fixed point either way, so verdicts stay bit-identical).
    #[allow(clippy::too_many_arguments)]
    fn open_row<F>(
        &self,
        lane: usize,
        cur: &mut [usize; LANES],
        r: &mut [u64; LANES],
        base: &mut [u64; LANES],
        active: &mut [bool; LANES],
        ok: &mut [bool; LANES],
        util: &mut Acc,
        stop_on_failure: bool,
        on_row: &mut F,
    ) where
        F: FnMut(usize, usize, ResponseTime),
    {
        loop {
            if cur[lane] >= self.len[lane] {
                active[lane] = false;
                return;
            }
            // Fold the interference utilization of rows newly above `cur`.
            while util.row[lane] < cur[lane] {
                let j = util.row[lane];
                util.sum[lane] += self.wcet[j][lane] as f64 / self.period[j][lane] as f64;
                util.row[lane] = j + 1;
            }
            let w = self.wcet[cur[lane]][lane];
            let d = self.deadline[cur[lane]][lane];
            let seed = crate::rta::seed_from_utilization(w, util.sum[lane]);
            if w > d || seed.is_none_or(|s| s > d) {
                ok[lane] = false;
                on_row(lane, cur[lane], ResponseTime::Unschedulable);
                if stop_on_failure {
                    active[lane] = false;
                    return;
                }
                cur[lane] += 1;
                continue;
            }
            base[lane] = w;
            r[lane] = seed.expect("checked above");
            active[lane] = true;
            return;
        }
    }
}

/// Incremental per-lane fold of the interference utilization above the
/// current row (see [`BatchRtaKernel::open_row`]).
struct Acc {
    sum: [f64; LANES],
    row: [usize; LANES],
}

/// A structure-of-arrays demand kernel for the Eq. (1) necessary condition:
/// up to [`LANES`] task sets checked in lockstep against the same core
/// count, each over its own absolute-deadline check points.
#[derive(Debug, Default)]
pub struct BatchDemandKernel {
    wcet: Vec<[u64; LANES]>,
    period: Vec<[u64; LANES]>,
    deadline: Vec<[u64; LANES]>,
    len: [usize; LANES],
    points: [Vec<u64>; LANES],
    /// A verdict decided before any demand evaluation (empty set, or the
    /// long-run utilisation precheck).
    prejudged: [Option<bool>; LANES],
    lanes: usize,
}

/// Mirrors the check-point cap of [`crate::dbf::necessary_condition_holds`].
const MAX_POINTS: usize = 8192;

impl BatchDemandKernel {
    /// Creates an empty kernel.
    #[must_use]
    pub fn new() -> Self {
        BatchDemandKernel::default()
    }

    /// Resets the kernel for a batch of `lanes` occupied lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes > LANES`.
    pub fn begin(&mut self, lanes: usize) {
        assert!(lanes <= LANES, "a batch holds at most {LANES} lanes");
        for row in &mut self.wcet {
            *row = [0; LANES];
        }
        for row in &mut self.period {
            *row = [1; LANES];
        }
        // A pad deadline of `u64::MAX` keeps pad cells demand-free at every
        // reachable check point (and wcet 0 covers the saturated corner).
        for row in &mut self.deadline {
            *row = [u64::MAX; LANES];
        }
        self.len = [0; LANES];
        for pts in &mut self.points {
            pts.clear();
        }
        self.prejudged = [None; LANES];
        self.lanes = lanes;
    }

    /// Loads `tasks` into `lane` with the customary default horizon of
    /// [`crate::dbf::necessary_condition_default_horizon`]: twice the
    /// largest period. `cores` feeds the long-run utilisation precheck.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn load_default_horizon(&mut self, lane: usize, tasks: &TaskSet, cores: usize) {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        if tasks.is_empty() {
            self.prejudged[lane] = Some(true);
            return;
        }
        if tasks.total_utilization() > cores as f64 + 1e-9 {
            self.prejudged[lane] = Some(false);
            return;
        }
        let horizon = tasks.max_period().unwrap_or(Time::ZERO).saturating_mul(2);
        for task in tasks.tasks() {
            let row = self.len[lane];
            if row == self.wcet.len() {
                self.wcet.push([0; LANES]);
                self.period.push([1; LANES]);
                self.deadline.push([u64::MAX; LANES]);
            }
            self.wcet[row][lane] = task.wcet().as_ticks();
            self.period[row][lane] = task.period().as_ticks();
            self.deadline[row][lane] = task.deadline().as_ticks();
            self.len[lane] = row + 1;
        }
        self.points[lane].clear();
        self.points[lane].extend(
            demand_check_points(tasks, horizon, MAX_POINTS)
                .iter()
                .map(|t| t.as_ticks()),
        );
    }

    /// Evaluates every lane's Eq. (1) verdict against `cores` cores,
    /// bit-identical per lane to
    /// [`crate::dbf::necessary_condition_default_horizon`].
    #[must_use]
    pub fn check(&self, cores: usize) -> [bool; LANES] {
        let m = cores as u64;
        let mut verdict = [true; LANES];
        let mut done = [false; LANES];
        let mut rows = 0usize;
        let mut max_points = 0usize;
        for lane in 0..self.lanes {
            if let Some(v) = self.prejudged[lane] {
                verdict[lane] = v;
                done[lane] = true;
            } else {
                rows = rows.max(self.len[lane]);
                max_points = max_points.max(self.points[lane].len());
            }
        }
        for k in 0..max_points {
            let mut t = [0u64; LANES];
            let mut live = false;
            for lane in 0..self.lanes {
                if done[lane] {
                    continue;
                }
                match self.points[lane].get(k) {
                    Some(&point) => {
                        t[lane] = point;
                        live = true;
                    }
                    None => done[lane] = true,
                }
            }
            if !live {
                break;
            }
            // Lockstep demand accumulation: exact integer DBF per cell.
            // Cells whose deadline lies past the check point (pad cells
            // included — their deadline is `u64::MAX`, and lanes past their
            // point list sit at t = 0) contribute nothing; the guard is a
            // branch rather than a mask because the `u64` division it
            // skips never vectorizes anyway, and most cells fail it at
            // early check points.
            let mut demand = [0u64; LANES];
            for j in 0..rows {
                let w = &self.wcet[j];
                let p = &self.period[j];
                let d = &self.deadline[j];
                for lane in 0..LANES {
                    if t[lane] >= d[lane] {
                        let jobs = (t[lane] - d[lane]) / p[lane] + 1;
                        demand[lane] = demand[lane].saturating_add(w[lane].saturating_mul(jobs));
                    }
                }
            }
            for lane in 0..self.lanes {
                if !done[lane] && demand[lane] > t[lane].saturating_mul(m) {
                    verdict[lane] = false;
                    done[lane] = true;
                }
            }
            if done[..self.lanes].iter().all(|&d| d) {
                break;
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbf::necessary_condition_default_horizon;
    use crate::priority::{PriorityAssignment, PriorityPolicy};
    use crate::rta::{response_time_with_interference, response_times};
    use crate::task::RtTask;
    use proptest::prelude::*;

    fn task(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    /// Loads a task set into `lane` in rate-monotonic order and returns the
    /// row order used, mirroring the scalar RM assignment exactly.
    fn load_rm(kernel: &mut BatchRtaKernel, lane: usize, set: &TaskSet) -> Vec<usize> {
        let pa = PriorityAssignment::assign(set, PriorityPolicy::RateMonotonic);
        let mut order: Vec<usize> = (0..set.len()).collect();
        order.sort_by_key(|&i| pa.priority(crate::task::TaskId(i)));
        for &i in &order {
            let t = &set[crate::task::TaskId(i)];
            kernel.push(
                lane,
                t.wcet().as_ticks(),
                t.period().as_ticks(),
                t.deadline().as_ticks(),
            );
        }
        order
    }

    #[test]
    fn batch_rta_matches_scalar_on_the_textbook_set() {
        let set: TaskSet = vec![task(1, 4), task(2, 6), task(3, 13)]
            .into_iter()
            .collect();
        let pa = PriorityAssignment::assign(&set, PriorityPolicy::RateMonotonic);
        let scalar = response_times(&set, &pa);
        let mut kernel = BatchRtaKernel::new();
        kernel.begin(1);
        let order = load_rm(&mut kernel, 0, &set);
        let mut got = vec![ResponseTime::Unschedulable; set.len()];
        let ok = kernel.solve(false, |_, row, rt| got[order[row]] = rt);
        assert!(ok[0]);
        assert_eq!(got, scalar);
    }

    #[test]
    fn all_lanes_unschedulable_at_iteration_zero() {
        // Regression for the lane mask: every lane's first row has
        // wcet > deadline, so every lane dies before a single recurrence
        // iteration runs — the engine must terminate with all-false
        // verdicts rather than spin on inactive lanes.
        let mut kernel = BatchRtaKernel::new();
        kernel.begin(LANES);
        for lane in 0..LANES {
            kernel.push(lane, 10, 20, 5); // wcet 10 > deadline 5
        }
        let mut seen = 0usize;
        let ok = kernel.solve(true, |_, _, rt| {
            assert_eq!(rt, ResponseTime::Unschedulable);
            seen += 1;
        });
        assert_eq!(ok, [false; LANES]);
        assert_eq!(seen, LANES);
    }

    #[test]
    fn suffix_start_skips_verified_prefix_rows() {
        // Two identical lanes; lane 1 starts at row 1 and must report only
        // the suffix rows, with verdicts identical to lane 0's suffix.
        let set: TaskSet = vec![task(1, 4), task(2, 6), task(3, 13)]
            .into_iter()
            .collect();
        let mut kernel = BatchRtaKernel::new();
        kernel.begin(2);
        load_rm(&mut kernel, 0, &set);
        load_rm(&mut kernel, 1, &set);
        kernel.set_start(1, 1);
        let mut rows = [Vec::new(), Vec::new()];
        let ok = kernel.solve(false, |lane, row, rt| rows[lane].push((row, rt)));
        assert_eq!(ok, [true; LANES]);
        assert_eq!(rows[0].len(), 3);
        assert_eq!(rows[1].len(), 2);
        assert_eq!(&rows[0][1..], &rows[1][..]);
    }

    #[test]
    fn empty_lanes_are_trivially_schedulable() {
        let kernel = BatchRtaKernel::new();
        assert_eq!(kernel.verdicts(), [true; LANES]);
        let mut kernel = BatchRtaKernel::new();
        kernel.begin(3);
        assert_eq!(kernel.verdicts(), [true; LANES]);
    }

    #[test]
    fn batch_stats_accumulate_and_merge() {
        let mut a = BatchStats::default();
        assert!(a.is_empty());
        a.record_batch(3);
        a.record_batch(LANES);
        a.record_fallback();
        let mut b = BatchStats::default();
        b.record_batch(3);
        b.merge(&a);
        assert_eq!(b.lanes_filled[3], 2);
        assert_eq!(b.lanes_filled[LANES], 1);
        assert_eq!(b.scalar_fallbacks, 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn batch_demand_matches_scalar_on_small_sets() {
        let feasible: TaskSet = vec![task(6, 10), task(6, 10)].into_iter().collect();
        let overloaded: TaskSet = vec![task(8, 10), task(8, 10), task(8, 10)]
            .into_iter()
            .collect();
        let mut kernel = BatchDemandKernel::new();
        kernel.begin(3);
        kernel.load_default_horizon(0, &feasible, 2);
        kernel.load_default_horizon(1, &overloaded, 2);
        kernel.load_default_horizon(2, &TaskSet::empty(), 2);
        let verdicts = kernel.check(2);
        assert_eq!(
            verdicts[0],
            necessary_condition_default_horizon(&feasible, 2)
        );
        assert_eq!(
            verdicts[1],
            necessary_condition_default_horizon(&overloaded, 2)
        );
        assert!(verdicts[2]);
    }

    /// Random constrained-deadline tasks, overload very much included: tight
    /// deadlines and WCETs up to the full period.
    fn arb_task() -> impl Strategy<Value = RtTask> {
        (1u64..400, 1u64..1000, 0.1f64..1.0).prop_map(|(c, t, d_frac)| {
            let period = c.max(t);
            let deadline = ((period as f64 * d_frac) as u64).clamp(c, period);
            RtTask::new(
                Time::from_ticks(c),
                Time::from_ticks(period),
                Time::from_ticks(deadline),
            )
            .unwrap()
        })
    }

    fn arb_set(max_len: usize) -> impl Strategy<Value = TaskSet> {
        prop::collection::vec(arb_task(), 1..=max_len).prop_map(TaskSet::new)
    }

    proptest! {
        #[test]
        fn batch_rta_is_bit_identical_to_scalar_lane_by_lane(
            sets in prop::collection::vec(arb_set(9), 1..=LANES)
        ) {
            // Ragged lane counts 1..=8, arbitrary utilisation (overload
            // included): every lane must reproduce the scalar RM analysis
            // verdict-for-verdict and tick-for-tick.
            let mut kernel = BatchRtaKernel::new();
            kernel.begin(sets.len());
            let mut orders = Vec::new();
            for (lane, set) in sets.iter().enumerate() {
                orders.push(load_rm(&mut kernel, lane, set));
            }
            let mut got: Vec<Vec<Option<ResponseTime>>> =
                sets.iter().map(|s| vec![None; s.len()]).collect();
            let ok = kernel.solve(false, |lane, row, rt| {
                got[lane][orders[lane][row]] = Some(rt);
            });
            for (lane, set) in sets.iter().enumerate() {
                let pa = PriorityAssignment::assign(set, PriorityPolicy::RateMonotonic);
                let scalar = response_times(set, &pa);
                for (i, want) in scalar.iter().enumerate() {
                    prop_assert_eq!(got[lane][i].unwrap(), *want);
                }
                prop_assert_eq!(ok[lane], scalar.iter().all(|r| r.is_schedulable()));
            }
        }

        #[test]
        fn batch_rta_admission_shape_matches_scalar_short_circuit(
            sets in prop::collection::vec(arb_set(9), 1..=LANES)
        ) {
            let mut kernel = BatchRtaKernel::new();
            kernel.begin(sets.len());
            for (lane, set) in sets.iter().enumerate() {
                load_rm(&mut kernel, lane, set);
            }
            let ok = kernel.verdicts();
            for (lane, set) in sets.iter().enumerate() {
                prop_assert_eq!(ok[lane], crate::rta::is_schedulable_rm(set));
            }
        }

        #[test]
        fn batch_demand_is_bit_identical_to_scalar_lane_by_lane(
            sets in prop::collection::vec(arb_set(12), 1..=LANES),
            cores in 1usize..5
        ) {
            let mut kernel = BatchDemandKernel::new();
            kernel.begin(sets.len());
            for (lane, set) in sets.iter().enumerate() {
                kernel.load_default_horizon(lane, set, cores);
            }
            let verdicts = kernel.check(cores);
            for (lane, set) in sets.iter().enumerate() {
                prop_assert_eq!(
                    verdicts[lane],
                    necessary_condition_default_horizon(set, cores)
                );
            }
        }

        #[test]
        fn suffix_verification_agrees_with_full_reverification(
            set in arb_set(9),
            extra in arb_task()
        ) {
            // The partition-admission shape: a fully schedulable prefix
            // plus one inserted candidate. Suffix-only verification (start
            // at the insertion row) must agree with re-verifying the whole
            // merged set, because rows above the insertion point keep their
            // interferer sets.
            if !crate::rta::is_schedulable_rm(&set) {
                return Ok(());
            }
            let mut merged: Vec<RtTask> = set.tasks().cloned().collect();
            merged.push(extra);
            let merged: TaskSet = merged.into_iter().collect();
            let pa = PriorityAssignment::assign(&merged, PriorityPolicy::RateMonotonic);
            let mut order: Vec<usize> = (0..merged.len()).collect();
            order.sort_by_key(|&i| pa.priority(crate::task::TaskId(i)));
            let inserted_at = order
                .iter()
                .position(|&i| i == merged.len() - 1)
                .unwrap();
            let mut kernel = BatchRtaKernel::new();
            kernel.begin(1);
            load_rm(&mut kernel, 0, &merged);
            kernel.set_start(0, inserted_at);
            let suffix_ok = kernel.verdicts()[0];
            prop_assert_eq!(suffix_ok, crate::rta::is_schedulable_rm(&merged));
        }

        #[test]
        fn single_row_lane_matches_interference_free_scalar(
            c in 1u64..100, d in 1u64..200
        ) {
            let mut kernel = BatchRtaKernel::new();
            kernel.begin(1);
            kernel.push(0, c, d.max(c), d);
            let scalar = response_time_with_interference(
                Time::from_ticks(c),
                Time::from_ticks(d),
                std::iter::empty(),
            );
            let mut got = None;
            let ok = kernel.solve(false, |_, _, rt| got = Some(rt));
            prop_assert_eq!(got.unwrap(), scalar);
            prop_assert_eq!(ok[0], scalar.is_schedulable());
        }
    }
}
