//! Demand-bound functions and the multiprocessor necessary condition.
//!
//! Eq. (1) of the HYDRA paper states the necessary schedulability condition
//! for a partitioned sporadic task system on `M` identical cores:
//!
//! ```text
//! Σ_τr DBF(τr, t) ≤ M · t      for all t > 0
//! ```
//!
//! with `DBF(τr, t) = max(0, (⌊(t − D_r)/T_r⌋ + 1) · C_r)`. The paper uses
//! this condition to discard trivially-unschedulable synthetic task sets
//! before running the allocators; we do the same in the Figure 2 experiment.

use crate::task::{RtTask, TaskSet};
use crate::time::Time;

/// Demand-bound function of a single sporadic task over an interval of length
/// `t`: the maximum cumulative execution demand of jobs that both arrive and
/// have their deadline within any window of length `t`.
///
/// # Example
///
/// ```
/// use rt_core::{RtTask, Time};
/// use rt_core::dbf::demand_bound;
///
/// # fn main() -> Result<(), rt_core::RtError> {
/// let task = RtTask::implicit_deadline(Time::from_millis(2), Time::from_millis(10))?;
/// assert_eq!(demand_bound(&task, Time::from_millis(9)), Time::ZERO);
/// assert_eq!(demand_bound(&task, Time::from_millis(10)), Time::from_millis(2));
/// assert_eq!(demand_bound(&task, Time::from_millis(25)), Time::from_millis(4));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn demand_bound(task: &RtTask, t: Time) -> Time {
    if t < task.deadline() {
        return Time::ZERO;
    }
    // ⌊(t − D)/T⌋ + 1 jobs have both release and deadline inside the window.
    let jobs = (t - task.deadline()).div_floor(task.period()) + 1;
    task.wcet().saturating_mul(jobs)
}

/// Total demand of a task set over an interval of length `t`.
#[must_use]
pub fn total_demand(tasks: &TaskSet, t: Time) -> Time {
    tasks.tasks().fold(Time::ZERO, |acc, task| {
        acc.saturating_add(demand_bound(task, t))
    })
}

/// The check points at which [`necessary_condition_holds`] evaluates the
/// demand: every absolute deadline `k · T_i + D_i ≤ horizon`, capped at
/// `max_points` values (the smallest deadlines are kept when capping).
#[must_use]
pub fn demand_check_points(tasks: &TaskSet, horizon: Time, max_points: usize) -> Vec<Time> {
    let mut points: Vec<Time> = Vec::new();
    for task in tasks.tasks() {
        let mut d = task.deadline();
        while d <= horizon {
            points.push(d);
            match d.checked_add(task.period()) {
                Some(next) => d = next,
                None => break,
            }
            if points.len() > max_points.saturating_mul(8) {
                break;
            }
        }
    }
    points.sort_unstable();
    points.dedup();
    if points.len() > max_points {
        points.truncate(max_points);
    }
    points
}

/// Checks the necessary condition of Eq. (1), `Σ DBF(τ, t) ≤ M·t`, at every
/// absolute deadline up to `horizon`.
///
/// A `false` result proves the task set unschedulable on `cores` cores under
/// *any* partitioning; a `true` result is only necessary, not sufficient.
///
/// The number of evaluated check points is capped (8192) so pathological
/// period ratios cannot blow up the filter; the cap is far above what the
/// paper's parameter ranges produce within two hyperperiods.
#[must_use]
pub fn necessary_condition_holds(tasks: &TaskSet, cores: usize, horizon: Time) -> bool {
    if tasks.is_empty() {
        return true;
    }
    if tasks.total_utilization() > cores as f64 + 1e-9 {
        return false;
    }
    const MAX_POINTS: usize = 8192;
    let m = cores as u64;
    for t in demand_check_points(tasks, horizon, MAX_POINTS) {
        let demand = total_demand(tasks, t);
        if demand > t.saturating_mul(m) {
            return false;
        }
    }
    true
}

/// Convenience wrapper for [`necessary_condition_holds`] using the customary
/// horizon of twice the largest period (sufficient to expose violations for
/// the implicit-deadline workloads used in the paper's experiments, where the
/// long-run rate check is `U ≤ M`).
#[must_use]
pub fn necessary_condition_default_horizon(tasks: &TaskSet, cores: usize) -> bool {
    let horizon = tasks.max_period().unwrap_or(Time::ZERO).saturating_mul(2);
    necessary_condition_holds(tasks, cores, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    fn task(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    #[test]
    fn dbf_is_zero_before_first_deadline() {
        let t = task(3, 10);
        assert_eq!(demand_bound(&t, Time::from_millis(0)), Time::ZERO);
        assert_eq!(demand_bound(&t, Time::from_millis(9)), Time::ZERO);
    }

    #[test]
    fn dbf_is_step_function_at_deadlines() {
        let t = task(3, 10);
        assert_eq!(
            demand_bound(&t, Time::from_millis(10)),
            Time::from_millis(3)
        );
        assert_eq!(
            demand_bound(&t, Time::from_millis(19)),
            Time::from_millis(3)
        );
        assert_eq!(
            demand_bound(&t, Time::from_millis(20)),
            Time::from_millis(6)
        );
        assert_eq!(
            demand_bound(&t, Time::from_millis(100)),
            Time::from_millis(30)
        );
    }

    #[test]
    fn dbf_with_constrained_deadline() {
        let t = RtTask::new(
            Time::from_millis(2),
            Time::from_millis(10),
            Time::from_millis(5),
        )
        .unwrap();
        assert_eq!(demand_bound(&t, Time::from_millis(4)), Time::ZERO);
        assert_eq!(demand_bound(&t, Time::from_millis(5)), Time::from_millis(2));
        assert_eq!(
            demand_bound(&t, Time::from_millis(15)),
            Time::from_millis(4)
        );
    }

    #[test]
    fn total_demand_sums_tasks() {
        let set: TaskSet = vec![task(2, 10), task(5, 20)].into_iter().collect();
        assert_eq!(
            total_demand(&set, Time::from_millis(20)),
            Time::from_millis(9)
        );
    }

    #[test]
    fn check_points_are_sorted_unique_and_capped() {
        let set: TaskSet = vec![task(1, 10), task(1, 15)].into_iter().collect();
        let pts = demand_check_points(&set, Time::from_millis(60), 100);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert!(pts.contains(&Time::from_millis(10)));
        assert!(pts.contains(&Time::from_millis(15)));
        assert!(pts.contains(&Time::from_millis(60)));
        let capped = demand_check_points(&set, Time::from_millis(60), 3);
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn necessary_condition_accepts_feasible_sets() {
        // Two cores, total utilisation 1.2 — fine for M = 2.
        let set: TaskSet = vec![task(6, 10), task(6, 10)].into_iter().collect();
        assert!(necessary_condition_default_horizon(&set, 2));
    }

    #[test]
    fn necessary_condition_rejects_overloaded_sets() {
        // Total utilisation 2.4 on 2 cores is impossible.
        let set: TaskSet = vec![task(8, 10), task(8, 10), task(8, 10)]
            .into_iter()
            .collect();
        assert!(!necessary_condition_default_horizon(&set, 2));
        assert!(necessary_condition_default_horizon(&set, 3));
    }

    #[test]
    fn single_overlong_task_caught_by_demand_not_rate() {
        // A constrained-deadline task whose demand in [0, D] exceeds M·D even
        // though its long-run utilisation is low.
        let heavy = RtTask::new(
            Time::from_millis(30),
            Time::from_millis(1000),
            Time::from_millis(30),
        )
        .unwrap();
        let fillers: Vec<RtTask> = (0..4).map(|_| task(29, 30)).collect();
        let mut tasks = vec![heavy];
        tasks.extend(fillers);
        let set: TaskSet = tasks.into_iter().collect();
        // On one core the demand at t = 30ms is 30 + 4·29 = 146 > 30.
        assert!(!necessary_condition_holds(&set, 1, Time::from_millis(2000)));
    }

    #[test]
    fn empty_set_is_trivially_fine() {
        assert!(necessary_condition_default_horizon(&TaskSet::empty(), 1));
    }
}
