//! Error type shared by the `rt-core` crate.

use core::fmt;

use crate::time::Time;

/// Errors produced while constructing or analysing real-time task sets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtError {
    /// A task was constructed with a zero worst-case execution time.
    ZeroWcet,
    /// A task was constructed with a zero period.
    ZeroPeriod,
    /// A task was constructed with a zero relative deadline.
    ZeroDeadline,
    /// The worst-case execution time exceeds the relative deadline, so the
    /// task can never meet its deadline even in isolation.
    WcetExceedsDeadline {
        /// Offending worst-case execution time.
        wcet: Time,
        /// Relative deadline that is too small.
        deadline: Time,
    },
    /// The relative deadline exceeds the period (constrained-deadline model
    /// required by the analysis in this crate).
    DeadlineExceedsPeriod {
        /// Offending relative deadline.
        deadline: Time,
        /// Period that is smaller than the deadline.
        period: Time,
    },
    /// A referenced task index was out of bounds for the task set.
    UnknownTask {
        /// Index that was requested.
        index: usize,
        /// Number of tasks in the set.
        len: usize,
    },
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::ZeroWcet => write!(f, "worst-case execution time must be positive"),
            RtError::ZeroPeriod => write!(f, "period must be positive"),
            RtError::ZeroDeadline => write!(f, "relative deadline must be positive"),
            RtError::WcetExceedsDeadline { wcet, deadline } => write!(
                f,
                "worst-case execution time {wcet} exceeds relative deadline {deadline}"
            ),
            RtError::DeadlineExceedsPeriod { deadline, period } => write!(
                f,
                "relative deadline {deadline} exceeds period {period}; only constrained deadlines are supported"
            ),
            RtError::UnknownTask { index, len } => {
                write!(f, "task index {index} out of bounds for task set of size {len}")
            }
        }
    }
}

impl std::error::Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            RtError::ZeroWcet.to_string(),
            RtError::ZeroPeriod.to_string(),
            RtError::ZeroDeadline.to_string(),
            RtError::WcetExceedsDeadline {
                wcet: Time::from_millis(5),
                deadline: Time::from_millis(2),
            }
            .to_string(),
            RtError::DeadlineExceedsPeriod {
                deadline: Time::from_millis(30),
                period: Time::from_millis(20),
            }
            .to_string(),
            RtError::UnknownTask { index: 7, len: 3 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<RtError>();
    }
}
