//! Hyperperiod (least common multiple of periods) computation.
//!
//! The discrete-event simulator and some analyses need the hyperperiod of a
//! task set. Synthetic workloads with co-prime microsecond periods can have
//! astronomically large hyperperiods, so the computation saturates at
//! [`Time::MAX`] instead of overflowing.

use crate::task::TaskSet;
use crate::time::Time;

/// Greatest common divisor of two tick counts.
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of two tick counts, saturating at `u64::MAX`.
#[must_use]
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    (a / g).saturating_mul(b)
}

/// Hyperperiod of a task set: the least common multiple of all periods,
/// saturating at [`Time::MAX`]. Returns [`Time::ZERO`] for an empty set.
///
/// # Example
///
/// ```
/// use rt_core::{RtTask, TaskSet, Time};
/// use rt_core::hyperperiod::hyperperiod;
///
/// # fn main() -> Result<(), rt_core::RtError> {
/// let set = TaskSet::new(vec![
///     RtTask::implicit_deadline(Time::from_millis(1), Time::from_millis(4))?,
///     RtTask::implicit_deadline(Time::from_millis(1), Time::from_millis(6))?,
/// ]);
/// assert_eq!(hyperperiod(&set), Time::from_millis(12));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn hyperperiod(tasks: &TaskSet) -> Time {
    tasks
        .tasks()
        .map(|t| t.period().as_ticks())
        .fold(None, |acc: Option<u64>, p| match acc {
            None => Some(p),
            Some(l) => Some(lcm(l, p)),
        })
        .map(Time::from_ticks)
        .unwrap_or(Time::ZERO)
}

/// Whether the hyperperiod is small enough (≤ `limit`) to be useful for
/// simulation or exhaustive analysis.
#[must_use]
pub fn hyperperiod_within(tasks: &TaskSet, limit: Time) -> bool {
    hyperperiod(tasks) <= limit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::RtTask;

    fn task(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    #[test]
    fn gcd_and_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(u64::MAX, 2), u64::MAX);
    }

    #[test]
    fn hyperperiod_of_harmonic_set() {
        let set: TaskSet = vec![task(1, 10), task(1, 20), task(1, 40)]
            .into_iter()
            .collect();
        assert_eq!(hyperperiod(&set), Time::from_millis(40));
    }

    #[test]
    fn hyperperiod_of_coprime_periods() {
        let set: TaskSet = vec![task(1, 3), task(1, 5), task(1, 7)]
            .into_iter()
            .collect();
        assert_eq!(hyperperiod(&set), Time::from_millis(105));
    }

    #[test]
    fn hyperperiod_of_empty_set_is_zero() {
        assert_eq!(hyperperiod(&TaskSet::empty()), Time::ZERO);
    }

    #[test]
    fn hyperperiod_within_limit() {
        let set: TaskSet = vec![task(1, 10), task(1, 15)].into_iter().collect();
        assert!(hyperperiod_within(&set, Time::from_millis(30)));
        assert!(!hyperperiod_within(&set, Time::from_millis(29)));
    }
}
