//! # rt-core — real-time task model and uniprocessor schedulability analysis
//!
//! This crate is the foundation substrate of the HYDRA reproduction
//! (Hasan et al., *A Design-Space Exploration for Allocating Security Tasks in
//! Multicore Real-Time Systems*, DATE 2018). It provides:
//!
//! * a fixed-point time representation ([`Time`]) in microsecond ticks,
//! * the sporadic real-time task model ([`RtTask`], [`TaskSet`]) with
//!   worst-case execution time, minimum inter-arrival time (period) and
//!   relative deadline,
//! * priority assignment policies ([`priority`]) including rate-monotonic and
//!   deadline-monotonic orders,
//! * utilisation accounting ([`util`]),
//! * the demand-bound function and the multiprocessor necessary condition of
//!   Eq. (1) of the paper ([`dbf`]),
//! * exact response-time analysis for fixed-priority preemptive uniprocessor
//!   scheduling ([`rta`]),
//! * structure-of-arrays batch kernels evaluating up to eight RTA / Eq. (1)
//!   instances per recurrence iteration ([`batch`]), and
//! * hyperperiod computation ([`hyperperiod`]).
//!
//! # Example
//!
//! ```
//! use rt_core::{RtTask, TaskSet, Time};
//! use rt_core::rta::is_schedulable_rm;
//!
//! # fn main() -> Result<(), rt_core::RtError> {
//! let tasks = TaskSet::new(vec![
//!     RtTask::implicit_deadline(Time::from_millis(5), Time::from_millis(20))?,
//!     RtTask::implicit_deadline(Time::from_millis(10), Time::from_millis(50))?,
//!     RtTask::implicit_deadline(Time::from_millis(20), Time::from_millis(100))?,
//! ]);
//! assert!(is_schedulable_rm(&tasks));
//! assert!(tasks.total_utilization() < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod dbf;
pub mod error;
pub mod hyperperiod;
pub mod priority;
pub mod rta;
pub mod task;
pub mod time;
pub mod util;

pub use batch::{BatchMode, BatchStats};
pub use error::RtError;
pub use priority::{Priority, PriorityAssignment, PriorityPolicy};
pub use task::{RtTask, TaskId, TaskSet};
pub use time::Time;
