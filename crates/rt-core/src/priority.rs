//! Fixed-priority assignment policies.
//!
//! The HYDRA paper assumes distinct, rate-monotonic priorities for real-time
//! tasks. This module provides the priority domain ([`Priority`]) and the
//! classic fixed-priority assignment policies (rate-monotonic and
//! deadline-monotonic) with deterministic tie breaking by task index so that
//! priorities are always distinct.

use crate::task::{TaskId, TaskSet};

/// A fixed priority level.
///
/// **Smaller numeric values denote higher priority** (level 0 is the highest
/// priority), matching the common convention in the real-time literature.
/// Use [`Priority::is_higher_than`] instead of `<`/`>` at call sites where the
/// direction matters for readability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Priority(pub u32);

impl Priority {
    /// The highest possible priority.
    pub const HIGHEST: Priority = Priority(0);

    /// Whether `self` is a strictly higher priority than `other`.
    #[must_use]
    pub fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }

    /// Whether `self` is a strictly lower priority than `other`.
    #[must_use]
    pub fn is_lower_than(self, other: Priority) -> bool {
        self.0 > other.0
    }

    /// The next lower priority level.
    #[must_use]
    pub fn lower(self) -> Priority {
        Priority(self.0 + 1)
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Fixed-priority assignment policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PriorityPolicy {
    /// Rate monotonic: shorter period ⇒ higher priority (Liu & Layland).
    /// This is the policy assumed by the HYDRA paper for real-time tasks.
    #[default]
    RateMonotonic,
    /// Deadline monotonic: shorter relative deadline ⇒ higher priority.
    DeadlineMonotonic,
    /// Priorities follow the task index order (task 0 is the highest). Useful
    /// for tests and for workloads whose priority order is externally given.
    IndexOrder,
}

/// A priority assignment for a task set: a mapping from [`TaskId`] to
/// [`Priority`] in which all priorities are distinct.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PriorityAssignment {
    /// `priorities[i]` is the priority of `TaskId(i)`.
    priorities: Vec<Priority>,
}

impl PriorityAssignment {
    /// Assigns priorities to `tasks` according to `policy`.
    ///
    /// Ties (equal period / deadline) are broken by task index, so the
    /// resulting priorities are always distinct — matching the paper's
    /// assumption of distinct RM priorities.
    #[must_use]
    pub fn assign(tasks: &TaskSet, policy: PriorityPolicy) -> Self {
        let mut order: Vec<TaskId> = tasks.ids().collect();
        match policy {
            PriorityPolicy::RateMonotonic => {
                order.sort_by_key(|&id| (tasks[id].period(), id.0));
            }
            PriorityPolicy::DeadlineMonotonic => {
                order.sort_by_key(|&id| (tasks[id].deadline(), id.0));
            }
            PriorityPolicy::IndexOrder => {}
        }
        let mut priorities = vec![Priority(0); tasks.len()];
        for (level, id) in order.iter().enumerate() {
            priorities[id.0] = Priority(level as u32);
        }
        PriorityAssignment { priorities }
    }

    /// Builds an assignment from an explicit priority vector
    /// (`priorities[i]` is the priority of `TaskId(i)`).
    #[must_use]
    pub fn from_priorities(priorities: Vec<Priority>) -> Self {
        PriorityAssignment { priorities }
    }

    /// Number of tasks covered by this assignment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.priorities.len()
    }

    /// Whether the assignment covers no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.priorities.is_empty()
    }

    /// Priority of a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn priority(&self, id: TaskId) -> Priority {
        self.priorities[id.0]
    }

    /// Task ids sorted from highest to lowest priority.
    #[must_use]
    pub fn ids_by_priority(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = (0..self.priorities.len()).map(TaskId).collect();
        ids.sort_by_key(|&id| self.priorities[id.0]);
        ids
    }

    /// Ids of the tasks with a strictly higher priority than `id`.
    #[must_use]
    pub fn higher_priority_than(&self, id: TaskId) -> Vec<TaskId> {
        let p = self.priority(id);
        (0..self.priorities.len())
            .map(TaskId)
            .filter(|&other| other != id && self.priorities[other.0].is_higher_than(p))
            .collect()
    }

    /// Whether all priorities in the assignment are distinct.
    #[must_use]
    pub fn is_distinct(&self) -> bool {
        let mut seen = vec![false; self.priorities.len()];
        for p in &self.priorities {
            let Some(slot) = seen.get_mut(p.0 as usize) else {
                return false;
            };
            if *slot {
                return false;
            }
            *slot = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::RtTask;
    use crate::time::Time;

    fn task(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    fn sample_set() -> TaskSet {
        // Periods 50, 20, 100, 20 — note the tie between index 1 and 3.
        vec![task(5, 50), task(2, 20), task(10, 100), task(3, 20)]
            .into_iter()
            .collect()
    }

    #[test]
    fn priority_ordering_helpers() {
        assert!(Priority(0).is_higher_than(Priority(1)));
        assert!(Priority(2).is_lower_than(Priority(1)));
        assert_eq!(Priority::HIGHEST.lower(), Priority(1));
        assert_eq!(Priority(3).to_string(), "P3");
    }

    #[test]
    fn rate_monotonic_orders_by_period_with_index_tiebreak() {
        let set = sample_set();
        let pa = PriorityAssignment::assign(&set, PriorityPolicy::RateMonotonic);
        // Period-20 tasks first (index 1 then 3), then 50, then 100.
        assert_eq!(pa.priority(TaskId(1)), Priority(0));
        assert_eq!(pa.priority(TaskId(3)), Priority(1));
        assert_eq!(pa.priority(TaskId(0)), Priority(2));
        assert_eq!(pa.priority(TaskId(2)), Priority(3));
        assert!(pa.is_distinct());
    }

    #[test]
    fn deadline_monotonic_uses_deadlines() {
        let set: TaskSet = vec![
            RtTask::new(
                Time::from_millis(1),
                Time::from_millis(100),
                Time::from_millis(10),
            )
            .unwrap(),
            RtTask::new(
                Time::from_millis(1),
                Time::from_millis(50),
                Time::from_millis(50),
            )
            .unwrap(),
        ]
        .into_iter()
        .collect();
        let rm = PriorityAssignment::assign(&set, PriorityPolicy::RateMonotonic);
        let dm = PriorityAssignment::assign(&set, PriorityPolicy::DeadlineMonotonic);
        // RM ranks task 1 (period 50) above task 0 (period 100)...
        assert!(rm
            .priority(TaskId(1))
            .is_higher_than(rm.priority(TaskId(0))));
        // ...while DM ranks task 0 (deadline 10) above task 1 (deadline 50).
        assert!(dm
            .priority(TaskId(0))
            .is_higher_than(dm.priority(TaskId(1))));
    }

    #[test]
    fn index_order_is_identity() {
        let set = sample_set();
        let pa = PriorityAssignment::assign(&set, PriorityPolicy::IndexOrder);
        for (i, id) in set.ids().enumerate() {
            assert_eq!(pa.priority(id), Priority(i as u32));
        }
    }

    #[test]
    fn ids_by_priority_is_high_to_low() {
        let set = sample_set();
        let pa = PriorityAssignment::assign(&set, PriorityPolicy::RateMonotonic);
        let order = pa.ids_by_priority();
        assert_eq!(order, vec![TaskId(1), TaskId(3), TaskId(0), TaskId(2)]);
    }

    #[test]
    fn higher_priority_than_returns_strictly_higher() {
        let set = sample_set();
        let pa = PriorityAssignment::assign(&set, PriorityPolicy::RateMonotonic);
        let hp = pa.higher_priority_than(TaskId(0));
        assert_eq!(hp.len(), 2);
        assert!(hp.contains(&TaskId(1)));
        assert!(hp.contains(&TaskId(3)));
        assert!(pa.higher_priority_than(TaskId(1)).is_empty());
    }

    #[test]
    fn distinctness_detects_duplicates() {
        let pa = PriorityAssignment::from_priorities(vec![Priority(0), Priority(0)]);
        assert!(!pa.is_distinct());
        let pa = PriorityAssignment::from_priorities(vec![Priority(1), Priority(0)]);
        assert!(pa.is_distinct());
        assert_eq!(pa.len(), 2);
        assert!(!pa.is_empty());
    }
}
