//! Exact response-time analysis (RTA) for fixed-priority preemptive
//! uniprocessor scheduling.
//!
//! The classic Joseph & Pandya / Audsley et al. recurrence: the worst-case
//! response time of task `τ_i` released simultaneously with all
//! higher-priority tasks (the critical instant) is the least fixed point of
//!
//! ```text
//! R = C_i + Σ_{j ∈ hp(i)} ⌈R / T_j⌉ · C_j
//! ```
//!
//! The task is schedulable iff the fixed point exists and `R ≤ D_i`.
//! This is used to validate real-time partitions, as the admission test of
//! the partitioning heuristics, and to cross-check the discrete-event
//! simulator.

use crate::priority::{PriorityAssignment, PriorityPolicy};
use crate::task::{RtTask, TaskId, TaskSet};
use crate::time::Time;

/// Outcome of a response-time computation for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseTime {
    /// The recurrence converged to this worst-case response time, which is
    /// within the task's deadline.
    Schedulable(Time),
    /// The recurrence exceeded the deadline (or diverged); the task can miss
    /// deadlines in the worst case.
    Unschedulable,
}

impl ResponseTime {
    /// The response time if schedulable.
    #[must_use]
    pub fn time(self) -> Option<Time> {
        match self {
            ResponseTime::Schedulable(t) => Some(t),
            ResponseTime::Unschedulable => None,
        }
    }

    /// Whether the task meets its deadline.
    #[must_use]
    pub fn is_schedulable(self) -> bool {
        matches!(self, ResponseTime::Schedulable(_))
    }
}

/// Computes the worst-case response time of a task with WCET `wcet` and
/// deadline `deadline`, suffering preemption from `interferers`
/// (higher-priority tasks on the same core).
///
/// The iteration starts at `wcet` and stops as soon as the candidate exceeds
/// `deadline`, so it always terminates even for overloaded cores.
#[must_use]
pub fn response_time_with_interference<'a, I>(
    wcet: Time,
    deadline: Time,
    interferers: I,
) -> ResponseTime
where
    I: IntoIterator<Item = &'a RtTask> + Clone,
{
    response_time_with_blocking(wcet, deadline, Time::ZERO, interferers)
}

/// Computes the worst-case response time of a task that, in addition to
/// preemption from `interferers`, can be blocked for up to `blocking` time
/// units by a lower-priority non-preemptive region (the classic
/// blocking-aware recurrence `R = C + B + Σ ⌈R/T_j⌉·C_j`).
///
/// This supports the paper's Section V extension where some security tasks
/// execute non-preemptively: a non-preemptive lower-priority task can delay
/// every task above it by up to its own WCET.
#[must_use]
pub fn response_time_with_blocking<'a, I>(
    wcet: Time,
    deadline: Time,
    blocking: Time,
    interferers: I,
) -> ResponseTime
where
    I: IntoIterator<Item = &'a RtTask> + Clone,
{
    let base = wcet.saturating_add(blocking);
    if base > deadline {
        return ResponseTime::Unschedulable;
    }
    let mut util = 0.0f64;
    for hp in interferers.clone() {
        util += hp.wcet().ratio(hp.period());
    }
    let mut r = match seed_from_utilization(base.as_ticks(), util) {
        Some(seed) => Time::from_ticks(seed),
        // The interference alone saturates the core: the recurrence
        // diverges, so the task cannot meet any deadline.
        None => return ResponseTime::Unschedulable,
    };
    if r > deadline {
        // The lower bound already misses the deadline; the fixed point can
        // only be larger.
        return ResponseTime::Unschedulable;
    }
    loop {
        let mut next = base;
        for hp in interferers.clone() {
            let jobs = r.div_ceil(hp.period());
            next = next.saturating_add(hp.wcet().saturating_mul(jobs));
        }
        if next > deadline {
            return ResponseTime::Unschedulable;
        }
        if next == r {
            return ResponseTime::Schedulable(r);
        }
        r = next;
    }
}

/// A sound starting point for the response-time recurrence: the fixed point
/// satisfies `R ≥ base / (1 − U_hp)` (drop the ceilings of the interference
/// terms), so iterating from that bound converges to the *same* least fixed
/// point in far fewer steps — the closer the core is to saturation, the
/// more of the creeping early iterations the seed skips.
///
/// Returns `None` when the higher-priority utilization provably saturates
/// the core (the recurrence diverges). The utilization margin keeps the
/// bound conservative against `f64` rounding in `util`: underestimating the
/// divisor can only lower the seed, never push it past the fixed point.
pub(crate) fn seed_from_utilization(base: u64, util: f64) -> Option<u64> {
    const MARGIN: f64 = 1e-9;
    if base == 0 {
        return Some(0);
    }
    if util - MARGIN >= 1.0 {
        return None;
    }
    let headroom = 1.0 - (util - MARGIN);
    let bound = (base as f64 / headroom).floor();
    if bound.is_finite() && bound > base as f64 {
        Some(bound as u64)
    } else {
        Some(base)
    }
}

/// Computes the worst-case response time of `task` within `tasks` under the
/// given priority assignment, assuming all tasks share one core.
#[must_use]
pub fn response_time(
    tasks: &TaskSet,
    priorities: &PriorityAssignment,
    task: TaskId,
) -> ResponseTime {
    let target = &tasks[task];
    let hp_ids = priorities.higher_priority_than(task);
    let interferers: Vec<&RtTask> = hp_ids.iter().map(|&id| &tasks[id]).collect();
    response_time_with_interference(
        target.wcet(),
        target.deadline(),
        interferers.iter().copied(),
    )
}

/// Response times of every task in the set under the given priority
/// assignment (single core). Entry `i` corresponds to `TaskId(i)`.
#[must_use]
pub fn response_times(tasks: &TaskSet, priorities: &PriorityAssignment) -> Vec<ResponseTime> {
    let mut out = Vec::new();
    response_times_into(tasks, priorities, &mut out);
    out
}

/// Allocation-free variant of [`response_times`]: clears `out` and fills it
/// with entry `i` corresponding to `TaskId(i)`, reusing its capacity.
///
/// Unlike [`response_time`], no per-task interferer `Vec` is materialised —
/// the higher-priority filter runs directly over the id range — so hot
/// callers (the partition admission path) can verify a candidate core
/// without touching the allocator.
pub fn response_times_into(
    tasks: &TaskSet,
    priorities: &PriorityAssignment,
    out: &mut Vec<ResponseTime>,
) {
    out.clear();
    out.reserve(tasks.len());
    for id in tasks.ids() {
        let target = &tasks[id];
        let p = priorities.priority(id);
        let interferers = (0..tasks.len())
            .map(TaskId)
            .filter(|&other| priorities.priority(other).is_higher_than(p))
            .map(|other| &tasks[other]);
        out.push(response_time_with_interference(
            target.wcet(),
            target.deadline(),
            interferers,
        ));
    }
}

/// Whether every task meets its deadline on a single core under the given
/// priority assignment.
#[must_use]
pub fn is_schedulable(tasks: &TaskSet, priorities: &PriorityAssignment) -> bool {
    tasks
        .ids()
        .all(|id| response_time(tasks, priorities, id).is_schedulable())
}

/// Whether every task meets its deadline on a single core under
/// rate-monotonic priorities — the admission test used when partitioning the
/// real-time tasks of the HYDRA experiments.
#[must_use]
pub fn is_schedulable_rm(tasks: &TaskSet) -> bool {
    let pa = PriorityAssignment::assign(tasks, PriorityPolicy::RateMonotonic);
    is_schedulable(tasks, &pa)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    fn rm(tasks: &TaskSet) -> PriorityAssignment {
        PriorityAssignment::assign(tasks, PriorityPolicy::RateMonotonic)
    }

    #[test]
    fn textbook_example_response_times() {
        // Classic example: C/T = 1/4, 2/6, 3/13 — all schedulable under RM.
        let set: TaskSet = vec![task(1, 4), task(2, 6), task(3, 13)]
            .into_iter()
            .collect();
        let pa = rm(&set);
        let r = response_times(&set, &pa);
        assert_eq!(r[0], ResponseTime::Schedulable(Time::from_millis(1)));
        assert_eq!(r[1], ResponseTime::Schedulable(Time::from_millis(3)));
        // R2 = 3 + ⌈R/4⌉·1 + ⌈R/6⌉·2 → fixed point at 10.
        assert_eq!(r[2], ResponseTime::Schedulable(Time::from_millis(10)));
        assert!(is_schedulable(&set, &pa));
        assert!(is_schedulable_rm(&set));
    }

    #[test]
    fn overload_is_detected() {
        let set: TaskSet = vec![task(3, 4), task(3, 6)].into_iter().collect();
        let pa = rm(&set);
        assert!(response_time(&set, &pa, TaskId(0)).is_schedulable());
        assert_eq!(
            response_time(&set, &pa, TaskId(1)),
            ResponseTime::Unschedulable
        );
        assert!(!is_schedulable_rm(&set));
    }

    #[test]
    fn full_utilization_harmonic_set_is_schedulable() {
        // Harmonic periods can reach 100% utilisation under RM.
        // An over-utilised variant (U = 1.25) can never be schedulable.
        let set: TaskSet = vec![task(1, 2), task(2, 4), task(2, 8)]
            .into_iter()
            .collect();
        assert!((set.total_utilization() - 1.25).abs() < 1e-12);
        assert!(!is_schedulable_rm(&set));
        let set: TaskSet = vec![task(1, 2), task(1, 4), task(2, 8)]
            .into_iter()
            .collect();
        assert!((set.total_utilization() - 1.0).abs() < 1e-12);
        assert!(is_schedulable_rm(&set));
    }

    #[test]
    fn wcet_longer_than_deadline_is_immediately_unschedulable() {
        let r = response_time_with_interference(
            Time::from_millis(10),
            Time::from_millis(5),
            std::iter::empty(),
        );
        assert_eq!(r, ResponseTime::Unschedulable);
    }

    #[test]
    fn no_interference_means_response_equals_wcet() {
        let r = response_time_with_interference(
            Time::from_millis(7),
            Time::from_millis(100),
            std::iter::empty(),
        );
        assert_eq!(r, ResponseTime::Schedulable(Time::from_millis(7)));
    }

    #[test]
    fn constrained_deadline_tightens_the_test() {
        // Same tasks; shrinking the deadline of the low-priority task below
        // its response time flips the verdict.
        // hi has D = 5, so it stays the higher-priority task under DM in both
        // sets; the low task's response time is 8.
        let hi = task(2, 5);
        let lo_ok = RtTask::new(
            Time::from_millis(4),
            Time::from_millis(30),
            Time::from_millis(10),
        )
        .unwrap();
        let lo_bad = RtTask::new(
            Time::from_millis(4),
            Time::from_millis(30),
            Time::from_millis(7),
        )
        .unwrap();
        let ok: TaskSet = vec![hi.clone(), lo_ok].into_iter().collect();
        let bad: TaskSet = vec![hi, lo_bad].into_iter().collect();
        let pa_ok = PriorityAssignment::assign(&ok, PriorityPolicy::DeadlineMonotonic);
        let pa_bad = PriorityAssignment::assign(&bad, PriorityPolicy::DeadlineMonotonic);
        assert!(is_schedulable(&ok, &pa_ok));
        assert!(!is_schedulable(&bad, &pa_bad));
    }

    #[test]
    fn response_time_accessors() {
        assert_eq!(
            ResponseTime::Schedulable(Time::from_millis(3)).time(),
            Some(Time::from_millis(3))
        );
        assert_eq!(ResponseTime::Unschedulable.time(), None);
        assert!(!ResponseTime::Unschedulable.is_schedulable());
    }

    #[test]
    fn blocking_increases_response_time_and_can_break_schedulability() {
        let hp = task(2, 6);
        // Without blocking: R = 3 + ⌈R/6⌉·2 → 5.
        let plain = response_time_with_blocking(
            Time::from_millis(3),
            Time::from_millis(10),
            Time::ZERO,
            [&hp],
        );
        assert_eq!(plain, ResponseTime::Schedulable(Time::from_millis(5)));
        // With 2 ms of blocking: R = 3 + 2 + ⌈R/6⌉·2 → 7 → 9 → 9.
        let blocked = response_time_with_blocking(
            Time::from_millis(3),
            Time::from_millis(10),
            Time::from_millis(2),
            [&hp],
        );
        assert_eq!(blocked, ResponseTime::Schedulable(Time::from_millis(9)));
        // With 6 ms of blocking the deadline of 10 ms cannot be met.
        let too_much = response_time_with_blocking(
            Time::from_millis(3),
            Time::from_millis(10),
            Time::from_millis(6),
            [&hp],
        );
        assert_eq!(too_much, ResponseTime::Unschedulable);
    }

    #[test]
    fn zero_blocking_matches_the_plain_recurrence() {
        let set: TaskSet = vec![task(1, 4), task(2, 6), task(3, 13)]
            .into_iter()
            .collect();
        let pa = rm(&set);
        for id in set.ids() {
            let hp_ids = pa.higher_priority_than(id);
            let interferers: Vec<&RtTask> = hp_ids.iter().map(|&i| &set[i]).collect();
            let a = response_time_with_interference(
                set[id].wcet(),
                set[id].deadline(),
                interferers.iter().copied(),
            );
            let b = response_time_with_blocking(
                set[id].wcet(),
                set[id].deadline(),
                Time::ZERO,
                interferers.iter().copied(),
            );
            assert_eq!(a, b);
        }
    }

    #[test]
    fn response_times_into_reuses_the_buffer_and_matches_the_allocating_variant() {
        let set: TaskSet = vec![task(1, 4), task(2, 6), task(3, 13)]
            .into_iter()
            .collect();
        let pa = rm(&set);
        let mut buf = vec![ResponseTime::Unschedulable; 17];
        response_times_into(&set, &pa, &mut buf);
        assert_eq!(buf, response_times(&set, &pa));
        // A second fill must fully replace the previous contents.
        let smaller: TaskSet = vec![task(3, 4)].into_iter().collect();
        let pa2 = rm(&smaller);
        response_times_into(&smaller, &pa2, &mut buf);
        assert_eq!(buf, response_times(&smaller, &pa2));
    }

    #[test]
    fn rta_respects_priority_assignment_not_declaration_order() {
        // Declared low-priority first; RM must still figure out the order.
        let set: TaskSet = vec![task(6, 20), task(1, 5)].into_iter().collect();
        let pa = rm(&set);
        let r = response_times(&set, &pa);
        assert_eq!(r[1], ResponseTime::Schedulable(Time::from_millis(1)));
        // R0 = 6 + ⌈R/5⌉·1 → 6→8→8 (⌈8/5⌉ = 2) → 8.
        assert_eq!(r[0], ResponseTime::Schedulable(Time::from_millis(8)));
    }

    /// The naive recurrence — iterate from `base` with no seeding — kept as
    /// the reference the seeded production path is differentially tested
    /// against (a shared soundness bug in the seed cannot hide here).
    fn naive_response_time(
        wcet: Time,
        deadline: Time,
        blocking: Time,
        interferers: &[&RtTask],
    ) -> ResponseTime {
        let base = wcet.saturating_add(blocking);
        if base > deadline {
            return ResponseTime::Unschedulable;
        }
        let mut r = base;
        loop {
            let mut next = base;
            for hp in interferers {
                let jobs = r.div_ceil(hp.period());
                next = next.saturating_add(hp.wcet().saturating_mul(jobs));
            }
            if next > deadline {
                return ResponseTime::Unschedulable;
            }
            if next == r {
                return ResponseTime::Schedulable(r);
            }
            r = next;
        }
    }

    mod seeded_vs_naive {
        use super::*;
        use proptest::prelude::*;

        fn arb_task() -> impl Strategy<Value = RtTask> {
            (1u64..400, 1u64..1000, 0.1f64..1.0).prop_map(|(c, t, d_frac)| {
                let period = c.max(t);
                let deadline = ((period as f64 * d_frac) as u64).clamp(c, period);
                RtTask::new(
                    Time::from_ticks(c),
                    Time::from_ticks(period),
                    Time::from_ticks(deadline),
                )
                .unwrap()
            })
        }

        proptest! {
            #[test]
            fn seeded_recurrence_is_bit_identical_to_the_naive_iteration(
                interferers in prop::collection::vec(arb_task(), 0..10),
                c in 1u64..400,
                d in 1u64..2000,
                b in 0u64..50,
            ) {
                // Saturated cores very much included: the interferer
                // utilization is unconstrained, so the divergence early-out
                // and near-saturation seeds are exercised.
                let refs: Vec<&RtTask> = interferers.iter().collect();
                let seeded = response_time_with_blocking(
                    Time::from_ticks(c),
                    Time::from_ticks(d),
                    Time::from_ticks(b),
                    refs.iter().copied(),
                );
                let naive = naive_response_time(
                    Time::from_ticks(c),
                    Time::from_ticks(d),
                    Time::from_ticks(b),
                    &refs,
                );
                prop_assert_eq!(seeded, naive);
            }
        }
    }
}
