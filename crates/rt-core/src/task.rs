//! Sporadic real-time task model.
//!
//! A real-time task `τ_r` is characterised by the tuple `(C_r, T_r, D_r)`
//! where `C_r` is the worst-case execution time (WCET), `T_r` the minimum
//! separation between successive invocations (the period of the sporadic
//! task) and `D_r` the relative deadline. The HYDRA paper assumes implicit
//! deadlines (`D_r = T_r`); this crate supports the more general constrained
//! deadline model (`D_r ≤ T_r`) because the analysis does not get harder and
//! it allows richer test workloads.

use core::fmt;

use crate::error::RtError;
use crate::time::Time;

/// Index of a task inside a [`TaskSet`].
///
/// Task ids are stable: they are the position of the task in the owning set
/// and never change once the set is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// A sporadic real-time task `(C, T, D)` with an optional human-readable name.
///
/// # Example
///
/// ```
/// use rt_core::{RtTask, Time};
///
/// # fn main() -> Result<(), rt_core::RtError> {
/// let controller = RtTask::new(
///     Time::from_millis(5),
///     Time::from_millis(40),
///     Time::from_millis(40),
/// )?
/// .with_name("controller");
/// assert_eq!(controller.utilization(), 0.125);
/// assert!(controller.has_implicit_deadline());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RtTask {
    wcet: Time,
    period: Time,
    deadline: Time,
    name: Option<String>,
}

impl RtTask {
    /// Creates a task with explicit WCET, period and relative deadline.
    ///
    /// # Errors
    ///
    /// Returns an error if any parameter is zero, if `wcet > deadline`
    /// (the task could never meet its deadline), or if
    /// `deadline > period` (unconstrained deadlines are not supported).
    pub fn new(wcet: Time, period: Time, deadline: Time) -> Result<Self, RtError> {
        if wcet.is_zero() {
            return Err(RtError::ZeroWcet);
        }
        if period.is_zero() {
            return Err(RtError::ZeroPeriod);
        }
        if deadline.is_zero() {
            return Err(RtError::ZeroDeadline);
        }
        if wcet > deadline {
            return Err(RtError::WcetExceedsDeadline { wcet, deadline });
        }
        if deadline > period {
            return Err(RtError::DeadlineExceedsPeriod { deadline, period });
        }
        Ok(RtTask {
            wcet,
            period,
            deadline,
            name: None,
        })
    }

    /// Creates an implicit-deadline task (`D = T`), the model used by the
    /// HYDRA paper for every real-time task.
    ///
    /// # Errors
    ///
    /// Returns an error if `wcet` or `period` is zero or `wcet > period`.
    pub fn implicit_deadline(wcet: Time, period: Time) -> Result<Self, RtError> {
        RtTask::new(wcet, period, period)
    }

    /// Attaches a human-readable name (used by the case-study workloads and
    /// by trace output).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Worst-case execution time `C`.
    #[must_use]
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// Minimum inter-arrival time (period) `T`.
    #[must_use]
    pub fn period(&self) -> Time {
        self.period
    }

    /// Relative deadline `D`.
    #[must_use]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Optional task name.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Task utilisation `C / T`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.wcet.ratio(self.period)
    }

    /// Task density `C / min(D, T)`.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.wcet.ratio(self.deadline.min(self.period))
    }

    /// Whether the task has an implicit deadline (`D = T`).
    #[must_use]
    pub fn has_implicit_deadline(&self) -> bool {
        self.deadline == self.period
    }
}

impl fmt::Display for RtTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(name) => write!(
                f,
                "{name}(C={}, T={}, D={})",
                self.wcet, self.period, self.deadline
            ),
            None => write!(
                f,
                "task(C={}, T={}, D={})",
                self.wcet, self.period, self.deadline
            ),
        }
    }
}

/// An ordered collection of real-time tasks.
///
/// The order is significant: [`TaskId`]s are indices into this set, and the
/// priority-assignment policies in [`crate::priority`] produce permutations
/// of these indices.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskSet {
    tasks: Vec<RtTask>,
}

impl TaskSet {
    /// Creates a task set from a vector of tasks.
    #[must_use]
    pub fn new(tasks: Vec<RtTask>) -> Self {
        TaskSet { tasks }
    }

    /// Creates an empty task set.
    #[must_use]
    pub fn empty() -> Self {
        TaskSet { tasks: Vec::new() }
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Appends a task, returning its id.
    pub fn push(&mut self, task: RtTask) -> TaskId {
        self.tasks.push(task);
        TaskId(self.tasks.len() - 1)
    }

    /// Returns the task with the given id, if it exists.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&RtTask> {
        self.tasks.get(id.0)
    }

    /// Returns the task with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::UnknownTask`] if the id is out of bounds.
    pub fn try_get(&self, id: TaskId) -> Result<&RtTask, RtError> {
        self.tasks.get(id.0).ok_or(RtError::UnknownTask {
            index: id.0,
            len: self.tasks.len(),
        })
    }

    /// Iterates over `(TaskId, &RtTask)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &RtTask)> + '_ {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// Iterates over the tasks in id order.
    pub fn tasks(&self) -> impl Iterator<Item = &RtTask> + '_ {
        self.tasks.iter()
    }

    /// All task ids in the set.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// Total utilisation `Σ C_i / T_i`.
    #[must_use]
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(RtTask::utilization).sum()
    }

    /// The largest period in the set, or `None` when empty.
    #[must_use]
    pub fn max_period(&self) -> Option<Time> {
        self.tasks.iter().map(RtTask::period).max()
    }

    /// The smallest period in the set, or `None` when empty.
    #[must_use]
    pub fn min_period(&self) -> Option<Time> {
        self.tasks.iter().map(RtTask::period).min()
    }

    /// Builds a sub-set containing the tasks with the given ids, in the given
    /// order. Ids that are out of bounds are silently skipped.
    #[must_use]
    pub fn subset(&self, ids: &[TaskId]) -> TaskSet {
        TaskSet {
            tasks: ids
                .iter()
                .filter_map(|id| self.tasks.get(id.0).cloned())
                .collect(),
        }
    }
}

impl FromIterator<RtTask> for TaskSet {
    fn from_iter<I: IntoIterator<Item = RtTask>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl Extend<RtTask> for TaskSet {
    fn extend<I: IntoIterator<Item = RtTask>>(&mut self, iter: I) {
        self.tasks.extend(iter);
    }
}

impl IntoIterator for TaskSet {
    type Item = RtTask;
    type IntoIter = std::vec::IntoIter<RtTask>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a RtTask;
    type IntoIter = std::slice::Iter<'a, RtTask>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

impl std::ops::Index<TaskId> for TaskSet {
    type Output = RtTask;
    fn index(&self, id: TaskId) -> &RtTask {
        &self.tasks[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    #[test]
    fn implicit_deadline_sets_deadline_to_period() {
        let t = task(5, 20);
        assert_eq!(t.deadline(), t.period());
        assert!(t.has_implicit_deadline());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert_eq!(
            RtTask::new(Time::ZERO, Time::from_millis(10), Time::from_millis(10)),
            Err(RtError::ZeroWcet)
        );
        assert_eq!(
            RtTask::new(Time::from_millis(1), Time::ZERO, Time::from_millis(10)),
            Err(RtError::ZeroDeadline).or(Err(RtError::ZeroPeriod))
        );
        assert!(matches!(
            RtTask::new(
                Time::from_millis(10),
                Time::from_millis(10),
                Time::from_millis(5)
            ),
            Err(RtError::WcetExceedsDeadline { .. })
        ));
        assert!(matches!(
            RtTask::new(
                Time::from_millis(1),
                Time::from_millis(10),
                Time::from_millis(20)
            ),
            Err(RtError::DeadlineExceedsPeriod { .. })
        ));
    }

    #[test]
    fn utilization_and_density() {
        let t = RtTask::new(
            Time::from_millis(2),
            Time::from_millis(10),
            Time::from_millis(5),
        )
        .unwrap();
        assert!((t.utilization() - 0.2).abs() < 1e-12);
        assert!((t.density() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn names_round_trip() {
        let t = task(1, 10).with_name("guidance");
        assert_eq!(t.name(), Some("guidance"));
        assert!(t.to_string().contains("guidance"));
    }

    #[test]
    fn taskset_accessors() {
        let mut set = TaskSet::empty();
        assert!(set.is_empty());
        let a = set.push(task(1, 10));
        let b = set.push(task(2, 20));
        assert_eq!(set.len(), 2);
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(set[a].wcet(), Time::from_millis(1));
        assert_eq!(set.get(TaskId(5)), None);
        assert!(set.try_get(TaskId(5)).is_err());
        assert!((set.total_utilization() - 0.2).abs() < 1e-12);
        assert_eq!(set.max_period(), Some(Time::from_millis(20)));
        assert_eq!(set.min_period(), Some(Time::from_millis(10)));
    }

    #[test]
    fn taskset_from_iterator_and_extend() {
        let mut set: TaskSet = vec![task(1, 10)].into_iter().collect();
        set.extend(vec![task(2, 20), task(3, 30)]);
        assert_eq!(set.len(), 3);
        let ids: Vec<TaskId> = set.ids().collect();
        assert_eq!(ids, vec![TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn subset_preserves_requested_order() {
        let set: TaskSet = vec![task(1, 10), task(2, 20), task(3, 30)]
            .into_iter()
            .collect();
        let sub = set.subset(&[TaskId(2), TaskId(0), TaskId(9)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[TaskId(0)].period(), Time::from_millis(30));
        assert_eq!(sub[TaskId(1)].period(), Time::from_millis(10));
    }

    #[test]
    fn display_for_task_id() {
        assert_eq!(TaskId(3).to_string(), "τ3");
    }
}
