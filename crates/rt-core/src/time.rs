//! Fixed-point time representation.
//!
//! All timing parameters (worst-case execution times, periods, deadlines,
//! response times, simulation timestamps) are expressed as an integral number
//! of *ticks*, where one tick is one microsecond. Using integers keeps the
//! schedulability analysis and the discrete-event simulator exact and free of
//! floating-point drift; utilisations and tightness metrics are the only
//! quantities computed in `f64`.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Number of ticks per microsecond (the tick *is* a microsecond).
pub const TICKS_PER_MICRO: u64 = 1;
/// Number of ticks per millisecond.
pub const TICKS_PER_MILLI: u64 = 1_000;
/// Number of ticks per second.
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// A non-negative duration or instant measured in microsecond ticks.
///
/// `Time` is used both as a *duration* (WCET, period, deadline, response
/// time) and as an *instant* on the simulator's time line; the two uses never
/// mix in a way that requires distinct types, and keeping a single newtype
/// keeps the arithmetic ergonomic.
///
/// # Example
///
/// ```
/// use rt_core::Time;
///
/// let period = Time::from_millis(20);
/// let wcet = Time::from_micros(2_500);
/// assert_eq!(period.as_micros(), 20_000);
/// assert!(wcet < period);
/// assert_eq!((period - wcet).as_micros(), 17_500);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Time(u64);

impl Time {
    /// The zero duration.
    pub const ZERO: Time = Time(0);
    /// The largest representable time value.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time value from raw ticks (microseconds).
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Creates a time value from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Time(micros * TICKS_PER_MICRO)
    }

    /// Creates a time value from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Time(millis * TICKS_PER_MILLI)
    }

    /// Creates a time value from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Time(secs * TICKS_PER_SEC)
    }

    /// Creates a time value from a fractional number of milliseconds,
    /// rounding to the nearest tick.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    #[must_use]
    pub fn from_millis_f64(millis: f64) -> Self {
        assert!(
            millis.is_finite() && millis >= 0.0,
            "time must be finite and non-negative, got {millis}"
        );
        Time((millis * TICKS_PER_MILLI as f64).round() as u64)
    }

    /// Creates a time value from a fractional number of seconds, rounding to
    /// the nearest tick.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time must be finite and non-negative, got {secs}"
        );
        Time((secs * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Raw number of ticks.
    #[must_use]
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// Number of whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / TICKS_PER_MICRO
    }

    /// Number of whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / TICKS_PER_MILLI
    }

    /// Fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_MILLI as f64
    }

    /// Fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Whether this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[must_use]
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Checked multiplication by a scalar.
    #[must_use]
    pub const fn checked_mul(self, rhs: u64) -> Option<Time> {
        match self.0.checked_mul(rhs) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication by a scalar.
    #[must_use]
    pub const fn saturating_mul(self, rhs: u64) -> Time {
        Time(self.0.saturating_mul(rhs))
    }

    /// Integer ceiling division `⌈self / rhs⌉`, as used by the response-time
    /// recurrence.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[must_use]
    pub const fn div_ceil(self, rhs: Time) -> u64 {
        assert!(rhs.0 != 0, "division by zero time");
        self.0.div_ceil(rhs.0)
    }

    /// Integer floor division `⌊self / rhs⌋`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[must_use]
    pub const fn div_floor(self, rhs: Time) -> u64 {
        assert!(rhs.0 != 0, "division by zero time");
        self.0 / rhs.0
    }

    /// Ratio of two durations as `f64` (e.g. a utilisation `C / T`).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[must_use]
    pub fn ratio(self, rhs: Time) -> f64 {
        assert!(!rhs.is_zero(), "division by zero time");
        self.0 as f64 / rhs.0 as f64
    }

    /// The smaller of two times.
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two times.
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({}us)", self.as_micros())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= TICKS_PER_SEC && self.0.is_multiple_of(TICKS_PER_SEC) {
            write!(f, "{}s", self.0 / TICKS_PER_SEC)
        } else if self.0 >= TICKS_PER_MILLI && self.0.is_multiple_of(TICKS_PER_MILLI) {
            write!(f, "{}ms", self.0 / TICKS_PER_MILLI)
        } else {
            write!(f, "{}us", self.as_micros())
        }
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("time addition overflowed"))
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(
            self.0
                .checked_sub(rhs.0)
                .expect("time subtraction underflowed"),
        )
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(
            self.0
                .checked_mul(rhs)
                .expect("time multiplication overflowed"),
        )
    }
}

impl Mul<Time> for u64 {
    type Output = Time;
    fn mul(self, rhs: Time) -> Time {
        rhs * self
    }
}

impl Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Rem for Time {
    type Output = Time;
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc + t)
    }
}

impl From<u64> for Time {
    fn from(ticks: u64) -> Self {
        Time::from_ticks(ticks)
    }
}

impl From<Time> for u64 {
    fn from(t: Time) -> Self {
        t.as_ticks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(Time::from_secs(1), Time::from_millis(1_000));
        assert_eq!(Time::from_millis(1), Time::from_micros(1_000));
        assert_eq!(Time::from_micros(1).as_ticks(), TICKS_PER_MICRO);
    }

    #[test]
    fn float_constructors_round_to_nearest() {
        assert_eq!(Time::from_millis_f64(1.5), Time::from_micros(1_500));
        assert_eq!(Time::from_millis_f64(0.0004), Time::from_ticks(0));
        assert_eq!(Time::from_secs_f64(2.5), Time::from_millis(2_500));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_float_panics() {
        let _ = Time::from_millis_f64(-1.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Time::from_millis(10);
        let b = Time::from_millis(4);
        assert_eq!(a + b, Time::from_millis(14));
        assert_eq!(a - b, Time::from_millis(6));
        assert_eq!(a * 3, Time::from_millis(30));
        assert_eq!(a / 2, Time::from_millis(5));
        assert_eq!(a % b, Time::from_millis(2));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
    }

    #[test]
    fn div_ceil_and_floor() {
        let a = Time::from_millis(10);
        let b = Time::from_millis(3);
        assert_eq!(a.div_ceil(b), 4);
        assert_eq!(a.div_floor(b), 3);
        assert_eq!(a.div_ceil(Time::from_millis(5)), 2);
    }

    #[test]
    fn ratio_is_exact_for_small_values() {
        let c = Time::from_millis(5);
        let t = Time::from_millis(20);
        assert!((c.ratio(t) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn sub_underflow_panics() {
        let _ = Time::from_millis(1) - Time::from_millis(2);
    }

    #[test]
    fn display_uses_natural_units() {
        assert_eq!(Time::from_secs(2).to_string(), "2s");
        assert_eq!(Time::from_millis(20).to_string(), "20ms");
        assert_eq!(Time::from_micros(1_500).to_string(), "1500us");
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [
            Time::from_millis(1),
            Time::from_millis(2),
            Time::from_millis(3),
        ]
        .into_iter()
        .sum();
        assert_eq!(total, Time::from_millis(6));
    }

    #[test]
    fn min_max() {
        let a = Time::from_millis(1);
        let b = Time::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn checked_and_saturating_ops() {
        assert_eq!(Time::MAX.checked_add(Time::from_ticks(1)), None);
        assert_eq!(Time::MAX.saturating_add(Time::from_ticks(1)), Time::MAX);
        assert_eq!(Time::MAX.checked_mul(2), None);
        assert_eq!(Time::MAX.saturating_mul(2), Time::MAX);
        assert_eq!(
            Time::from_ticks(3).checked_mul(4),
            Some(Time::from_ticks(12))
        );
    }
}
