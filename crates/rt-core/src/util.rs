//! Utilisation accounting helpers.
//!
//! These free functions complement the methods on [`RtTask`] / [`TaskSet`]
//! with the aggregate quantities used throughout the experiments: per-core
//! utilisation of a partition slice, the Liu & Layland rate-monotonic bound,
//! and the hyperbolic bound of Bini & Buttazzo.

use crate::task::{RtTask, TaskSet};

/// Total utilisation of an arbitrary iterator of tasks.
///
/// # Example
///
/// ```
/// use rt_core::{RtTask, Time};
/// use rt_core::util::total_utilization;
///
/// # fn main() -> Result<(), rt_core::RtError> {
/// let tasks = [
///     RtTask::implicit_deadline(Time::from_millis(1), Time::from_millis(4))?,
///     RtTask::implicit_deadline(Time::from_millis(1), Time::from_millis(2))?,
/// ];
/// assert!((total_utilization(tasks.iter()) - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn total_utilization<'a, I>(tasks: I) -> f64
where
    I: IntoIterator<Item = &'a RtTask>,
{
    tasks.into_iter().map(RtTask::utilization).sum()
}

/// The Liu & Layland rate-monotonic utilisation bound `n (2^{1/n} − 1)`.
///
/// A set of `n` implicit-deadline tasks is schedulable under preemptive
/// rate-monotonic scheduling on one core if its utilisation does not exceed
/// this bound. The bound is sufficient but not necessary.
///
/// Returns `0.0` for `n = 0` and tends to `ln 2 ≈ 0.693` as `n → ∞`.
#[must_use]
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        let n = n as f64;
        n * (2f64.powf(1.0 / n) - 1.0)
    }
}

/// The hyperbolic bound of Bini & Buttazzo: a set of implicit-deadline tasks
/// is RM-schedulable on one core if `Π (U_i + 1) ≤ 2`.
///
/// Sharper than the Liu & Layland bound, still only sufficient.
#[must_use]
pub fn hyperbolic_bound_holds<'a, I>(tasks: I) -> bool
where
    I: IntoIterator<Item = &'a RtTask>,
{
    let product: f64 = tasks.into_iter().map(|t| t.utilization() + 1.0).product();
    product <= 2.0 + 1e-12
}

/// Whether the task set passes the trivial necessary condition `U ≤ m` for a
/// platform with `m` cores.
#[must_use]
pub fn utilization_fits_cores(tasks: &TaskSet, cores: usize) -> bool {
    tasks.total_utilization() <= cores as f64 + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::RtTask;
    use crate::time::Time;

    fn task(c_ms: u64, t_ms: u64) -> RtTask {
        RtTask::implicit_deadline(Time::from_millis(c_ms), Time::from_millis(t_ms)).unwrap()
    }

    #[test]
    fn liu_layland_known_values() {
        assert_eq!(liu_layland_bound(0), 0.0);
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284271247).abs() < 1e-9);
        assert!((liu_layland_bound(3) - 0.7797631497).abs() < 1e-9);
        // Monotone decreasing towards ln 2.
        assert!(liu_layland_bound(100) > 2f64.ln());
        assert!(liu_layland_bound(100) < liu_layland_bound(10));
    }

    #[test]
    fn hyperbolic_bound_cases() {
        // Two tasks at U = 0.41 each: (1.41)^2 = 1.9881 ≤ 2 → holds.
        let ok = [task(41, 100), task(41, 100)];
        assert!(hyperbolic_bound_holds(ok.iter()));
        // Two tasks at U = 0.45 each: (1.45)^2 = 2.1025 > 2 → fails.
        let not_ok = [task(45, 100), task(45, 100)];
        assert!(!hyperbolic_bound_holds(not_ok.iter()));
    }

    #[test]
    fn hyperbolic_no_sharper_than_ll_is_violated_here() {
        // A set accepted by the hyperbolic bound but rejected by Liu & Layland:
        // U = 0.7 + 0.15 = 0.85 > 0.828, product 1.7 · 1.15 = 1.955 ≤ 2.
        let set = [task(7, 10), task(6, 40)];
        let u = total_utilization(set.iter());
        assert!(u > liu_layland_bound(2));
        assert!(hyperbolic_bound_holds(set.iter()));
    }

    #[test]
    fn utilization_fits_cores_boundary() {
        let set: TaskSet = vec![task(10, 10), task(10, 10)].into_iter().collect();
        assert!(utilization_fits_cores(&set, 2));
        assert!(!utilization_fits_cores(&set, 1));
    }

    #[test]
    fn total_utilization_of_empty_is_zero() {
        assert_eq!(total_utilization(std::iter::empty()), 0.0);
    }
}
