//! Property-based tests for the rt-core substrate.

use proptest::prelude::*;
use rt_core::dbf::{demand_bound, necessary_condition_default_horizon, total_demand};
use rt_core::hyperperiod::{gcd, hyperperiod, lcm};
use rt_core::priority::{PriorityAssignment, PriorityPolicy};
use rt_core::rta::{response_time, response_times, ResponseTime};
use rt_core::util::{liu_layland_bound, total_utilization};
use rt_core::{RtTask, TaskId, TaskSet, Time};

fn arb_task() -> impl Strategy<Value = RtTask> {
    // WCET in [100us, 50ms], period in [1ms, 1000ms], WCET ≤ period.
    (100u64..=50_000, 1_000u64..=1_000_000).prop_filter_map(
        "wcet must not exceed period",
        |(c, t)| {
            if c <= t {
                RtTask::implicit_deadline(Time::from_micros(c), Time::from_micros(t)).ok()
            } else {
                None
            }
        },
    )
}

fn arb_taskset(max_len: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(arb_task(), 1..=max_len).prop_map(TaskSet::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dbf_is_monotone_in_t(task in arb_task(), a in 0u64..2_000_000, b in 0u64..2_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let d_lo = demand_bound(&task, Time::from_micros(lo));
        let d_hi = demand_bound(&task, Time::from_micros(hi));
        prop_assert!(d_lo <= d_hi);
    }

    #[test]
    fn dbf_never_exceeds_utilization_bound_plus_one_job(task in arb_task(), t in 0u64..5_000_000) {
        // DBF(t) ≤ (t/T + 1)·C for all t.
        let t = Time::from_micros(t);
        let d = demand_bound(&task, t);
        let bound = t.as_ticks() as f64 * task.utilization() + task.wcet().as_ticks() as f64;
        prop_assert!(d.as_ticks() as f64 <= bound + 1e-6);
    }

    #[test]
    fn total_demand_is_sum_of_parts(set in arb_taskset(6), t in 0u64..3_000_000) {
        let t = Time::from_micros(t);
        let sum: u64 = set.tasks().map(|task| demand_bound(task, t).as_ticks()).sum();
        prop_assert_eq!(total_demand(&set, t).as_ticks(), sum);
    }

    #[test]
    fn rm_priorities_are_distinct_and_period_ordered(set in arb_taskset(10)) {
        let pa = PriorityAssignment::assign(&set, PriorityPolicy::RateMonotonic);
        prop_assert!(pa.is_distinct());
        let order = pa.ids_by_priority();
        for w in order.windows(2) {
            prop_assert!(set[w[0]].period() <= set[w[1]].period());
        }
    }

    #[test]
    fn response_time_at_least_wcet_and_within_deadline(set in arb_taskset(6)) {
        let pa = PriorityAssignment::assign(&set, PriorityPolicy::RateMonotonic);
        for (id, task) in set.iter() {
            if let ResponseTime::Schedulable(r) = response_time(&set, &pa, id) {
                prop_assert!(r >= task.wcet());
                prop_assert!(r <= task.deadline());
            }
        }
    }

    #[test]
    fn highest_priority_task_response_equals_wcet(set in arb_taskset(6)) {
        let pa = PriorityAssignment::assign(&set, PriorityPolicy::RateMonotonic);
        let top = pa.ids_by_priority()[0];
        let r = response_time(&set, &pa, top);
        prop_assert_eq!(r, ResponseTime::Schedulable(set[top].wcet()));
    }

    #[test]
    fn adding_a_task_never_improves_response_times(set in arb_taskset(5), extra in arb_task()) {
        let pa_before = PriorityAssignment::assign(&set, PriorityPolicy::RateMonotonic);
        let before = response_times(&set, &pa_before);
        let mut bigger = set.clone();
        bigger.push(extra);
        let pa_after = PriorityAssignment::assign(&bigger, PriorityPolicy::RateMonotonic);
        for id in set.ids() {
            let after = response_time(&bigger, &pa_after, id);
            match (before[id.0], after) {
                (ResponseTime::Schedulable(b), ResponseTime::Schedulable(a)) => {
                    prop_assert!(a >= b, "response time improved from {b:?} to {a:?}");
                }
                (ResponseTime::Unschedulable, ResponseTime::Schedulable(_)) => {
                    prop_assert!(false, "task became schedulable after adding interference");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn utilization_below_ll_bound_implies_rm_schedulable(set in arb_taskset(8)) {
        let u = total_utilization(set.tasks());
        if u <= liu_layland_bound(set.len()) {
            prop_assert!(rt_core::rta::is_schedulable_rm(&set));
        }
    }

    #[test]
    fn unschedulable_on_m_cores_implies_unschedulable_on_fewer(set in arb_taskset(8)) {
        // Necessary condition is monotone in the number of cores.
        for m in 1..4usize {
            let small = necessary_condition_default_horizon(&set, m);
            let large = necessary_condition_default_horizon(&set, m + 1);
            prop_assert!(!small || large);
        }
    }

    #[test]
    fn gcd_divides_both_and_lcm_is_multiple(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let g = gcd(a, b);
        prop_assert_eq!(a % g, 0);
        prop_assert_eq!(b % g, 0);
        let l = lcm(a, b);
        if l != u64::MAX {
            prop_assert_eq!(l % a, 0);
            prop_assert_eq!(l % b, 0);
        }
    }

    #[test]
    fn hyperperiod_is_multiple_of_each_period(set in arb_taskset(4)) {
        let h = hyperperiod(&set);
        if h != Time::MAX {
            for t in set.tasks() {
                prop_assert_eq!(h.as_ticks() % t.period().as_ticks(), 0);
            }
        }
    }

    #[test]
    fn taskset_indexing_is_consistent(set in arb_taskset(8)) {
        for (i, (id, task)) in set.iter().enumerate() {
            prop_assert_eq!(id, TaskId(i));
            prop_assert_eq!(task, &set[id]);
        }
    }
}
