//! A deliberately small HTTP/1.1 implementation over `std::net` — exactly
//! what the serve protocol needs and nothing more: one request per
//! connection (`Connection: close`), `Content-Length` bodies on the way in,
//! fixed-length or chunked (`Transfer-Encoding: chunked`) bodies on the way
//! out. Streaming sweeps ride the chunked path: each JSONL line becomes one
//! chunk frame, so a client can consume results while the sweep runs.

use std::io::{self, Read, Write};

/// Cap on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Cap on the request body (`Content-Length`).
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request: method, path, body. Headers beyond `Content-Length`
/// are read and discarded — the protocol keys on method + path alone.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// The request target path (query strings are not part of the protocol
    /// and are kept attached).
    pub path: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Reads one HTTP/1.1 request from `stream`.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on malformed framing, oversized heads or
/// bodies, plus any transport error.
pub fn read_request(stream: &mut impl Read) -> io::Result<Request> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Byte-at-a-time until CRLFCRLF: head sizes here are hundreds of bytes,
    // and this keeps the reader from consuming body bytes.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(invalid("request head exceeds 64 KiB"));
        }
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(invalid("connection closed mid-head"));
        }
        head.push(byte[0]);
    }
    let head = std::str::from_utf8(&head).map_err(|_| invalid("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    if method.is_empty() || !path.starts_with('/') || !version.starts_with("HTTP/1.") {
        return Err(invalid("malformed request line"));
    }

    let mut content_length: usize = 0;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| invalid("malformed Content-Length"))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(invalid("chunked request bodies are not supported"));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(invalid("request body exceeds 4 MiB"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body,
    })
}

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// The reason phrase for the handful of status codes the protocol uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete fixed-length response and flushes it.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes the head of a chunked streaming response (the body follows
/// through a [`ChunkedWriter`]). `extra` headers let the sweep endpoint
/// hand the client its job id before the stream starts.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_chunked_head(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
        reason(status),
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "\r\n")?;
    stream.flush()
}

/// An `io::Write` adapter that frames every `write` call as one HTTP chunk.
/// Dropping the writer without [`ChunkedWriter::finish`] leaves the stream
/// unterminated — which is exactly what a cancelled/failed transfer should
/// look like to a client (truncation is detectable, silence is not).
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    inner: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Wraps a transport writer.
    pub fn new(inner: W) -> Self {
        ChunkedWriter { inner }
    }

    /// Writes the terminal zero-length chunk and flushes.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for ChunkedWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0); // an empty chunk would terminate the stream
        }
        write!(self.inner, "{:x}\r\n", buf.len())?;
        self.inner.write_all(buf)?;
        self.inner.write_all(b"\r\n")?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Decodes a chunked transfer encoding back to the raw body (test helper
/// for clients; the server never receives chunked bodies).
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on malformed chunk framing.
pub fn dechunk(mut encoded: &[u8]) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let line_end = encoded
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| invalid("missing chunk-size line"))?;
        let size_line = std::str::from_utf8(&encoded[..line_end])
            .map_err(|_| invalid("chunk size is not UTF-8"))?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| invalid("malformed chunk size"))?;
        encoded = &encoded[line_end + 2..];
        if size == 0 {
            return Ok(body);
        }
        if encoded.len() < size + 2 || &encoded[size..size + 2] != b"\r\n" {
            return Err(invalid("truncated chunk"));
        }
        body.extend_from_slice(&encoded[..size]);
        encoded = &encoded[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_bodies_arrive_whole() {
        let raw = b"POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let req = read_request(&mut &raw[..]).expect("well-formed request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sweep");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET noslash HTTP/1.1\r\n\r\n"[..],
            &b"GET / SPDY/9\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nContent-Length: zap\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
        ] {
            assert!(read_request(&mut &raw[..]).is_err());
        }
    }

    #[test]
    fn chunked_writes_round_trip_through_dechunk() {
        let mut w = ChunkedWriter::new(Vec::new());
        w.write_all(b"hello ").expect("vec write");
        w.write_all(b"world").expect("vec write");
        let encoded = w.finish().expect("finish writes the terminal chunk");
        assert_eq!(dechunk(&encoded).expect("valid framing"), b"hello world");
        assert!(encoded.ends_with(b"0\r\n\r\n"));
    }

    #[test]
    fn truncated_chunk_streams_are_detected() {
        let mut w = ChunkedWriter::new(Vec::new());
        w.write_all(b"partial results").expect("vec write");
        let unterminated = w.inner; // dropped without finish()
        assert!(dechunk(&unterminated).is_err());
    }
}
