//! The shared job pool: every sweep POSTed by any client lands in one FIFO
//! queue drained by a fixed set of runner threads, so concurrent clients
//! share the machine instead of oversubscribing it. Each job is one
//! [`SweepSession`] whose outcomes stream straight onto the client's
//! connection as chunked JSONL — the engine's [`rt_dse::sink::OutcomeSink`]
//! seam is the transport seam.
//!
//! A job's [`SweepHandle`] is registered before the session runs, so
//! `cancel` works in every state: a job cancelled while queued starts its
//! session pre-cancelled (delivers nothing, terminates its stream cleanly)
//! and one cancelled mid-run stops after in-flight scenarios.

use std::collections::{BTreeMap, VecDeque};
use std::io::BufWriter;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rt_dse::prelude::*;
use rt_dse::{JsonlSink, SweepObs, ENGINE_TRACK};
use rt_obs::Counter;

use crate::http::{self, ChunkedWriter};
use crate::json;
use crate::proto::SweepRequest;

/// The lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a runner thread.
    Queued,
    /// A runner is streaming it.
    Running,
    /// Ran to completion; the stream was terminated cleanly.
    Done,
    /// Stopped by `cancel` (queued or mid-run); the stream was terminated
    /// cleanly after the outcomes delivered so far.
    Cancelled,
    /// The sweep or its transport failed; the stream was left unterminated
    /// so the client sees the truncation.
    Failed,
}

impl JobState {
    /// The wire label used in status documents.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

/// The mutable half of a job record.
#[derive(Debug)]
struct JobStatus {
    state: JobState,
    error: Option<String>,
    started: Option<Instant>,
    elapsed: Option<Duration>,
    store_hits: u64,
    store_misses: u64,
}

/// One submitted sweep job: identity, live progress, terminal statistics.
#[derive(Debug)]
pub struct JobRecord {
    id: u64,
    name: String,
    handle: SweepHandle,
    status: Mutex<JobStatus>,
}

impl JobRecord {
    /// The job's id (unique within one server process, dense from 1).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The sweep's name (the request's `name` field).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Requests cancellation (idempotent, valid in every state).
    pub fn cancel(&self) {
        self.handle.cancel();
    }

    /// The job's current state.
    #[must_use]
    pub fn state(&self) -> JobState {
        self.status.lock().expect("job status poisoned").state
    }

    /// Renders the status document — field order is pinned to
    /// [`crate::proto::STATUS_FIELDS`] (unit-tested below, machine-checked
    /// against the README by xtask D006).
    #[must_use]
    pub fn status_json(&self) -> String {
        let progress = self.handle.progress();
        let status = self.status.lock().expect("job status poisoned");
        let elapsed = status
            .elapsed
            .or_else(|| status.started.map(|t| t.elapsed()));
        let elapsed =
            elapsed.map_or_else(|| "null".to_owned(), |d| format!("{:.6}", d.as_secs_f64()));
        let error = status
            .error
            .as_deref()
            .map_or_else(|| "null".to_owned(), json::quote);
        format!(
            "{{\"schema\":\"dse-serve-job/v1\",\"id\":{},\"name\":{},\"state\":\"{}\",\
             \"done\":{},\"total\":{},\"elapsed_secs\":{elapsed},\
             \"store_hits\":{},\"store_misses\":{},\"error\":{error}}}",
            self.id,
            json::quote(&self.name),
            status.state.label(),
            progress.done,
            progress.total,
            status.store_hits,
            status.store_misses,
        )
    }
}

/// One queued unit of work: the pre-built session plus the client
/// connection its outcomes stream onto.
struct QueuedJob {
    record: Arc<JobRecord>,
    session: SweepSession,
    stream: TcpStream,
}

/// The shared pool: job registry, FIFO queue, shutdown latch, and the
/// engine resources every job shares (observability registry, persistent
/// memo store, per-job thread budget).
pub struct JobPool {
    queue: Mutex<VecDeque<QueuedJob>>,
    available: Condvar,
    jobs: Mutex<BTreeMap<u64, Arc<JobRecord>>>,
    next_id: Mutex<u64>,
    shutdown: AtomicBool,
    obs: SweepObs,
    store: Option<Arc<MemoStore>>,
    threads_per_job: usize,
    jobs_accepted: Counter,
    jobs_completed: Counter,
    jobs_cancelled: Counter,
    jobs_failed: Counter,
}

impl std::fmt::Debug for JobPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPool")
            .field("threads_per_job", &self.threads_per_job)
            .field("shutdown", &self.shutdown)
            .finish_non_exhaustive()
    }
}

impl JobPool {
    /// A pool sharing one observability bundle and (optionally) one
    /// persistent memo store across every job. `threads_per_job` is the
    /// worker-thread count each sweep session runs with (`0` = auto).
    #[must_use]
    pub fn new(obs: SweepObs, store: Option<Arc<MemoStore>>, threads_per_job: usize) -> Arc<Self> {
        let shard = obs.registry().shard(ENGINE_TRACK);
        let jobs_accepted = shard.counter("serve.jobs_accepted");
        let jobs_completed = shard.counter("serve.jobs_completed");
        let jobs_cancelled = shard.counter("serve.jobs_cancelled");
        let jobs_failed = shard.counter("serve.jobs_failed");
        Arc::new(JobPool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            next_id: Mutex::new(1),
            shutdown: AtomicBool::new(false),
            obs,
            store,
            threads_per_job,
            jobs_accepted,
            jobs_completed,
            jobs_cancelled,
            jobs_failed,
        })
    }

    /// The shared observability bundle (the `/metrics` document).
    #[must_use]
    pub fn obs(&self) -> &SweepObs {
        &self.obs
    }

    /// Accepts a sweep: registers the job, writes the streaming response
    /// head (including the `X-Job-Id` header, so the client learns its id
    /// before the first result), and enqueues it. Returns `None` when the
    /// pool is shutting down (the caller answers 503).
    ///
    /// # Errors
    ///
    /// Transport errors writing the response head; the job is not enqueued.
    pub fn submit(
        &self,
        request: SweepRequest,
        mut stream: TcpStream,
    ) -> std::io::Result<Option<Arc<JobRecord>>> {
        // SeqCst everywhere the latch is touched: shutdown is rare and cold,
        // simplicity beats shaving an ordering here.
        if self.shutdown.load(Ordering::SeqCst) {
            let body = format!("{{\"error\":{}}}\n", json::quote("shutting down"));
            let _ = http::write_response(&mut stream, 503, "application/json", body.as_bytes());
            return Ok(None);
        }
        let id = {
            let mut next = self.next_id.lock().expect("id counter poisoned");
            let id = *next;
            *next += 1;
            id
        };
        let mut session = SweepSession::new(request.spec)
            .threads(self.threads_per_job)
            .batch_mode(request.batch)
            .observability(self.obs.clone());
        if let Some(store) = &self.store {
            session = session.memo_store(Arc::clone(store));
        }
        let record = Arc::new(JobRecord {
            id,
            name: session.spec().name.clone(),
            handle: session.handle(),
            status: Mutex::new(JobStatus {
                state: JobState::Queued,
                error: None,
                started: None,
                elapsed: None,
                store_hits: 0,
                store_misses: 0,
            }),
        });
        // Register before the head goes out: the moment the client reads
        // `X-Job-Id` it may act on it (status poll, cancel), so the id must
        // already resolve.
        self.jobs
            .lock()
            .expect("job registry poisoned")
            .insert(id, Arc::clone(&record));
        if let Err(error) = http::write_chunked_head(
            &mut stream,
            200,
            "application/x-ndjson",
            &[("X-Job-Id", &id.to_string())],
        ) {
            self.jobs.lock().expect("job registry poisoned").remove(&id);
            return Err(error);
        }
        self.queue
            .lock()
            .expect("job queue poisoned")
            .push_back(QueuedJob {
                record: Arc::clone(&record),
                session,
                stream,
            });
        self.available.notify_one();
        self.jobs_accepted.inc();
        Ok(Some(record))
    }

    /// Looks up one job.
    #[must_use]
    pub fn job(&self, id: u64) -> Option<Arc<JobRecord>> {
        self.jobs
            .lock()
            .expect("job registry poisoned")
            .get(&id)
            .cloned()
    }

    /// Every job, in id order.
    #[must_use]
    pub fn all_jobs(&self) -> Vec<Arc<JobRecord>> {
        self.jobs
            .lock()
            .expect("job registry poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Cancels one job. Returns whether the id was known.
    #[must_use]
    pub fn cancel(&self, id: u64) -> bool {
        match self.job(id) {
            Some(record) => {
                record.cancel();
                true
            }
            None => false,
        }
    }

    /// Flips the shutdown latch: new submissions are refused, idle runners
    /// wake up and exit once the queue drains. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    /// Whether [`JobPool::begin_shutdown`] has been called.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// A runner thread's main loop: drain jobs until shutdown empties the
    /// queue. Already-queued jobs still run to completion (graceful drain).
    pub fn run_worker(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("job queue poisoned");
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.is_shutting_down() {
                        return;
                    }
                    queue = self.available.wait(queue).expect("job queue poisoned");
                }
            };
            self.run_job(job);
        }
    }

    /// Runs one job to a terminal state, streaming its outcomes onto the
    /// client connection.
    fn run_job(&self, job: QueuedJob) {
        let QueuedJob {
            record,
            session,
            stream,
        } = job;
        {
            let mut status = record.status.lock().expect("job status poisoned");
            status.state = JobState::Running;
            // Job wall-clock: elapsed_secs in the status document is operator
            // telemetry; sweep output bytes come from the engine, which this
            // crate never times (see the D002 allow in crates/xtask/lints.toml).
            #[allow(clippy::disallowed_methods)]
            let started = Instant::now();
            status.started = Some(started);
        }
        let mut sink = JsonlSink::new(ChunkedWriter::new(BufWriter::new(stream)));
        // Frontier jobs run the adaptive driver: Phase A probes locate each
        // slice's acceptance cliff without emitting anything, then the
        // planned refinement stream arrives on the same JSONL transport —
        // byte-identical to a CLI frontier run of the same spec. The job's
        // handle was registered at submit time and FrontierRunner carries it
        // forward, so cancel keeps working in both phases.
        let explore = session.spec().explore;
        let result = match explore {
            ExploreMode::Frontier(_) => FrontierRunner::new(session)
                .explore(&mut sink)
                .map(|(_, summary)| summary),
            ExploreMode::Exhaustive => session.run(&mut sink),
        };
        let mut status = record.status.lock().expect("job status poisoned");
        status.elapsed = status.started.map(|t| t.elapsed());
        match result {
            Ok(summary) => {
                status.store_hits = summary.memo.store_hits;
                status.store_misses = summary.memo.store_misses;
                // Terminate the chunked stream cleanly — also after a
                // cancellation, so the client can tell "stopped on purpose"
                // (terminal chunk) from "something died" (truncation).
                let finish = sink.into_inner().finish().map(drop);
                if summary.cancelled {
                    status.state = JobState::Cancelled;
                    self.jobs_cancelled.inc();
                } else if let Err(error) = finish {
                    status.state = JobState::Failed;
                    status.error = Some(format!("client transport failed: {error}"));
                    self.jobs_failed.inc();
                } else {
                    status.state = JobState::Done;
                    self.jobs_completed.inc();
                }
            }
            Err(error) => {
                // No terminal chunk: the truncated stream is the client's
                // failure signal.
                status.state = JobState::Failed;
                status.error = Some(format!("sweep aborted: {error}"));
                self.jobs_failed.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::STATUS_FIELDS;

    fn fabricated_record() -> JobRecord {
        JobRecord {
            id: 3,
            name: "mini \"quoted\"".to_owned(),
            handle: SweepHandle::new(),
            status: Mutex::new(JobStatus {
                state: JobState::Failed,
                error: Some("sweep aborted: broken pipe".to_owned()),
                started: None,
                elapsed: Some(Duration::from_millis(1500)),
                store_hits: 4,
                store_misses: 1,
            }),
        }
    }

    #[test]
    fn status_json_renders_fields_in_the_documented_order() {
        let rendered = fabricated_record().status_json();
        let doc = json::parse(&rendered).expect("status documents are valid JSON");
        let json::Json::Obj(members) = doc else {
            panic!("status document is an object");
        };
        let rendered_order: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        let documented: Vec<&str> = STATUS_FIELDS.split(',').map(str::trim).collect();
        assert_eq!(
            rendered_order, documented,
            "STATUS_FIELDS and status_json must agree on names and order"
        );
    }

    #[test]
    fn status_json_carries_state_error_and_store_counters() {
        let rendered = fabricated_record().status_json();
        let doc = json::parse(&rendered).expect("valid JSON");
        assert_eq!(
            doc.get("state").and_then(json::Json::as_str),
            Some("failed")
        );
        assert_eq!(doc.get("store_hits").and_then(json::Json::as_u64), Some(4));
        assert_eq!(
            doc.get("store_misses").and_then(json::Json::as_u64),
            Some(1)
        );
        assert_eq!(
            doc.get("elapsed_secs").and_then(json::Json::as_f64),
            Some(1.5)
        );
        assert_eq!(
            doc.get("error").and_then(json::Json::as_str),
            Some("sweep aborted: broken pipe")
        );
        assert_eq!(
            doc.get("name").and_then(json::Json::as_str),
            Some("mini \"quoted\"")
        );
    }
}
