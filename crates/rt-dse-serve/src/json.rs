//! A minimal hand-rolled JSON reader/writer (the container vendors no
//! `serde`). The parser covers exactly what the serve protocol needs —
//! objects, arrays, strings, numbers, booleans, `null` — and keeps every
//! number's **lexeme** instead of eagerly converting to `f64`, so a 64-bit
//! seed survives the trip without floating-point rounding.

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved (the protocol
/// rejects duplicate and unknown fields, so ordering never matters for
/// semantics — keeping it makes error messages predictable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source lexeme (convert via [`Json::as_u64`] /
    /// [`Json::as_f64`] / [`Json::as_usize`]).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned 64-bit integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(lexeme) => lexeme.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is one.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(lexeme) => lexeme.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(lexeme) => lexeme.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// A human-readable description of the first syntax error, with its byte
/// offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.at));
    }
    Ok(value)
}

/// Renders `s` as a JSON string literal (quotes included).
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Nesting depth cap — the protocol never nests deeper than 3; 32 keeps the
/// recursive-descent parser safe from stack-exhaustion payloads.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                expected as char, self.at
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.at
            ));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.at)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.at))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate field \"{key}\""));
            }
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_owned());
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.at += 4;
                            // Surrogates (paired or lone) are out of protocol
                            // scope; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                            out.push(c);
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.at - 1;
                    let mut end = self.at;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(s);
                    self.at = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let lexeme =
            std::str::from_utf8(&self.bytes[start..self.at]).expect("number lexemes are ASCII");
        if lexeme.parse::<f64>().is_err() {
            return Err(format!("malformed number `{lexeme}` at byte {start}"));
        }
        Ok(Json::Num(lexeme.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_round_trip() {
        let doc = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#)
            .expect("valid document");
        assert_eq!(
            doc.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("a")
                .and_then(|a| a.as_arr())
                .and_then(|a| a[1].as_f64()),
            Some(2.5)
        );
        assert_eq!(
            doc.get("b")
                .and_then(|b| b.get("d"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(doc.get("e").and_then(Json::as_str), Some("x\ny"));
    }

    #[test]
    fn big_seeds_survive_without_float_rounding() {
        let doc = parse(r#"{"seed": 18446744073709551615}"#).expect("valid document");
        assert_eq!(doc.get("seed").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} x",
            "{\"a\": 1, \"a\": 2}",
            "\"\\q\"",
            "01e",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn quoting_escapes_controls() {
        assert_eq!(quote("a\"b\\c\n\u{1}"), "\"a\\\"b\\\\c\\n\\u0001\"");
    }
}
