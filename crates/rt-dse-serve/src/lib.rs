//! # rt-dse-serve — sweep-as-a-service over the embeddable engine API
//!
//! A long-running, std-only HTTP/1.1 server (hand-rolled on
//! [`std::net::TcpListener`] — the container vendors no async stack) that
//! accepts design-space sweeps as JSON jobs, schedules them on one shared
//! runner pool across concurrent clients, and **streams** each job's
//! results back in grid order as chunked JSONL. The bytes on the wire are
//! identical to what `dse sweep` writes to disk for the same spec — both
//! are one [`rt_dse::api::SweepSession`] feeding an
//! [`rt_dse::sink::OutcomeSink`]; the CI `serve-smoke` job `cmp`s the two.
//!
//! Backed by a persistent [`MemoStore`] (`--store`), repeat jobs are
//! answered from disk: the second POST of an identical sweep re-streams the
//! same bytes at memo-hit speed with zero store misses.
//!
//! ## Endpoints
//!
//! | Method + path          | Purpose                                        |
//! |------------------------|------------------------------------------------|
//! | `GET /`                | Index: endpoint list as JSON                   |
//! | `GET /healthz`         | Liveness probe                                 |
//! | `POST /v1/sweep`       | Submit a sweep; response streams JSONL (chunked, `X-Job-Id` header) |
//! | `GET /v1/jobs`         | Status documents for every job, id order       |
//! | `GET /v1/jobs/{id}`    | One job's status document                      |
//! | `POST /v1/jobs/{id}/cancel` | Cooperative cancel (queued or running)    |
//! | `GET /metrics`         | The shared rt-obs `rt-obs/v1` metrics snapshot |
//! | `POST /v1/shutdown`    | Refuse new work, drain the queue, exit         |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod http;
pub mod jobs;
pub mod json;
pub mod proto;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use rt_dse::{MemoStore, SweepObs};

use jobs::JobPool;

/// How long a connection may dribble its request before the handler gives
/// up on it (a stuck client must not pin a handler thread forever).
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Server configuration (the `dse-serve` CLI flags).
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port `0` = ephemeral).
    pub addr: String,
    /// Job-runner threads — how many sweeps run concurrently (min 1).
    pub workers: usize,
    /// Engine worker threads per job (`0` = machine parallelism).
    pub threads_per_job: usize,
    /// The shared persistent memo store, if any.
    pub store: Option<Arc<MemoStore>>,
}

/// A bound, not-yet-serving server. [`Server::serve`] blocks until a
/// `POST /v1/shutdown` drains it.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    pool: Arc<JobPool>,
    workers: usize,
}

impl Server {
    /// Binds the listener and builds the shared job pool (metrics on, so
    /// `/metrics` always has a registry to snapshot).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let pool = JobPool::new(
            SweepObs::new(true, false),
            config.store,
            config.threads_per_job,
        );
        Ok(Server {
            listener,
            pool,
            workers: config.workers.max(1),
        })
    }

    /// The bound address (resolves an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared job pool (exposed for embedding and tests).
    #[must_use]
    pub fn pool(&self) -> &Arc<JobPool> {
        &self.pool
    }

    /// Serves until shutdown: spawns the runner pool, accepts connections
    /// (one short-lived handler thread each), and on `POST /v1/shutdown`
    /// stops accepting, drains the queue, joins the runners and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop and thread-spawn errors; per-connection I/O
    /// errors only fail their own connection.
    pub fn serve(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut runners = Vec::with_capacity(self.workers);
        for index in 0..self.workers {
            let pool = Arc::clone(&self.pool);
            runners.push(
                std::thread::Builder::new()
                    .name(format!("dse-serve-runner-{index}"))
                    .spawn(move || pool.run_worker())?,
            );
        }
        for connection in self.listener.incoming() {
            if self.pool.is_shutting_down() {
                break;
            }
            let Ok(stream) = connection else {
                continue; // a failed accept poisons nothing
            };
            let pool = Arc::clone(&self.pool);
            std::thread::Builder::new()
                .name("dse-serve-conn".to_owned())
                .spawn(move || handle_connection(&pool, stream, addr))?;
        }
        // Idempotent (the shutdown endpoint already flipped the latch when
        // we got here via it) — wakes any runner idling on the queue.
        self.pool.begin_shutdown();
        for runner in runners {
            let _ = runner.join();
        }
        Ok(())
    }
}

/// Handles one connection: parse, route, respond. All transport errors are
/// swallowed — the peer is gone, there is nobody left to tell.
fn handle_connection(pool: &Arc<JobPool>, mut stream: TcpStream, addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(error) => {
            let _ = respond_json(&mut stream, 400, &error_body(&error.to_string()));
            return;
        }
    };
    let _ = route(pool, request, stream, addr);
}

/// Renders `{"error": …}`.
fn error_body(message: &str) -> String {
    format!("{{\"error\":{}}}\n", json::quote(message))
}

/// Writes one JSON response.
fn respond_json(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    http::write_response(stream, status, "application/json", body.as_bytes())
}

/// Routes one parsed request. Consumes the stream — the sweep endpoint
/// hands it to the job pool, everything else answers inline.
fn route(
    pool: &Arc<JobPool>,
    request: http::Request,
    mut stream: TcpStream,
    addr: SocketAddr,
) -> io::Result<()> {
    let method = request.method.as_str();
    match (method, request.path.as_str()) {
        ("GET", "/") => respond_json(&mut stream, 200, &index_body()),
        ("GET", "/healthz") => respond_json(&mut stream, 200, "{\"ok\":true}\n"),
        ("POST", "/v1/sweep") => {
            let parsed = std::str::from_utf8(&request.body)
                .map_err(|_| "the request body must be UTF-8".to_owned())
                .and_then(json::parse)
                .and_then(|doc| proto::parse_request(&doc));
            match parsed {
                Err(reason) => respond_json(&mut stream, 400, &error_body(&reason)),
                // Some: the runner owns the stream now. None: the pool is
                // shutting down and already answered 503 on the stream.
                Ok(sweep) => pool.submit(sweep, stream).map(drop),
            }
        }
        ("GET", "/v1/jobs") => {
            let docs: Vec<String> = pool
                .all_jobs()
                .iter()
                .map(|job| job.status_json())
                .collect();
            let body = format!(
                "{{\"schema\":\"dse-serve-jobs/v1\",\"jobs\":[{}]}}\n",
                docs.join(",")
            );
            respond_json(&mut stream, 200, &body)
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => match job_id(path, "") {
            Some(id) => match pool.job(id) {
                Some(job) => {
                    let mut body = job.status_json();
                    body.push('\n');
                    respond_json(&mut stream, 200, &body)
                }
                None => respond_json(&mut stream, 404, &error_body("no such job")),
            },
            None => respond_json(&mut stream, 404, &error_body("no such job")),
        },
        ("POST", path) if path.starts_with("/v1/jobs/") && path.ends_with("/cancel") => {
            match job_id(path, "/cancel") {
                Some(id) if pool.cancel(id) => {
                    respond_json(&mut stream, 200, "{\"ok\":true,\"cancelled\":true}\n")
                }
                _ => respond_json(&mut stream, 404, &error_body("no such job")),
            }
        }
        ("GET", "/metrics") => {
            let body = pool.obs().metrics_json();
            respond_json(&mut stream, 200, &body)
        }
        ("POST", "/v1/shutdown") => {
            pool.begin_shutdown();
            respond_json(&mut stream, 200, "{\"ok\":true,\"draining\":true}\n")?;
            // Unblock the accept loop so `serve` notices the latch; the
            // throwaway connection is closed unused by the handler thread.
            let _ = TcpStream::connect(addr);
            Ok(())
        }
        ("GET" | "POST", _) => respond_json(&mut stream, 404, &error_body("no such endpoint")),
        _ => respond_json(&mut stream, 405, &error_body("method not allowed")),
    }
}

/// Extracts the numeric id from `/v1/jobs/{id}{suffix}`.
fn job_id(path: &str, suffix: &str) -> Option<u64> {
    path.strip_prefix("/v1/jobs/")?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// The `GET /` index document.
fn index_body() -> String {
    format!(
        "{{\"schema\":\"dse-serve/v1\",\"endpoints\":[\
         \"GET /healthz\",\"POST /v1/sweep\",\"GET /v1/jobs\",\"GET /v1/jobs/{{id}}\",\
         \"POST /v1/jobs/{{id}}/cancel\",\"GET /metrics\",\"POST /v1/shutdown\"],\
         \"request_fields\":{},\"status_fields\":{}}}\n",
        json::quote(proto::REQUEST_FIELDS),
        json::quote(proto::STATUS_FIELDS),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_parse_from_paths() {
        assert_eq!(job_id("/v1/jobs/17", ""), Some(17));
        assert_eq!(job_id("/v1/jobs/17/cancel", "/cancel"), Some(17));
        assert_eq!(job_id("/v1/jobs/x", ""), None);
        assert_eq!(job_id("/v1/jobs/", ""), None);
        assert_eq!(job_id("/v1/jobs/17/extra", ""), None);
    }

    #[test]
    fn the_index_is_valid_json() {
        let doc = json::parse(&index_body()).expect("index is valid JSON");
        assert_eq!(
            doc.get("schema").and_then(json::Json::as_str),
            Some("dse-serve/v1")
        );
        assert!(doc.get("endpoints").and_then(json::Json::as_arr).is_some());
    }
}
