//! `dse-serve` — run design-space sweeps as a service.
//!
//! ```text
//! dse-serve --addr 127.0.0.1:7878 --workers 2 --store results/store
//! curl -sN localhost:7878/v1/sweep -d '{"cores": [2], "trials": 5}'
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use rt_dse::MemoStore;
use rt_dse_serve::{Server, ServerConfig};

const USAGE: &str = "\
dse-serve — sweep-as-a-service over the rt-dse engine

USAGE:
    dse-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT      bind address                      [default: 127.0.0.1:7878]
    --workers N           concurrent sweep jobs             [default: 2]
    --threads-per-job N   engine threads per job, 0 = auto  [default: 0]
    --store DIR           persistent content-addressed memo store shared by
                          every job (and by `dse sweep --store DIR`); repeat
                          jobs are answered from disk
    --help                show this message

ENDPOINTS:
    GET  /                endpoint index
    GET  /healthz         liveness probe
    POST /v1/sweep        submit a sweep (JSON body, `dse sweep` field names);
                          the response streams JSONL results in grid order
                          (chunked; the X-Job-Id header names the job)
    GET  /v1/jobs         every job's status document, id order
    GET  /v1/jobs/ID      one job's status document
    POST /v1/jobs/ID/cancel   cooperative cancel (queued or running)
    GET  /metrics         shared rt-obs/v1 metrics snapshot
    POST /v1/shutdown     refuse new work, drain the queue, exit
";

fn value_of<'a>(argv: &'a [String], key: &str) -> Option<&'a str> {
    argv.iter()
        .position(|a| a == key)
        .and_then(|i| argv.get(i + 1))
        .map(String::as_str)
}

fn parsed<T: std::str::FromStr>(argv: &[String], key: &str, default: T) -> Result<T, String> {
    match value_of(argv, key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value for {key}: {raw}")),
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    if argv
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        print!("{USAGE}");
        return Ok(());
    }
    let addr = value_of(argv, "--addr")
        .unwrap_or("127.0.0.1:7878")
        .to_owned();
    let workers = parsed(argv, "--workers", 2)?;
    let threads_per_job = parsed(argv, "--threads-per-job", 0)?;
    let store = match value_of(argv, "--store") {
        Some(dir) => Some(Arc::new(
            MemoStore::open(dir).map_err(|e| format!("cannot open memo store {dir}: {e}"))?,
        )),
        None => None,
    };

    let server = Server::bind(ServerConfig {
        addr,
        workers,
        threads_per_job,
        store: store.clone(),
    })
    .map_err(|e| format!("cannot bind: {e}"))?;
    let bound = server
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    eprintln!(
        "dse-serve listening on {bound} ({workers} job runner(s), {} engine thread(s)/job, store: {})",
        if threads_per_job == 0 {
            "auto".to_owned()
        } else {
            threads_per_job.to_string()
        },
        store
            .as_ref()
            .map_or_else(|| "off".to_owned(), |s| s.root().display().to_string()),
    );
    server.serve().map_err(|e| format!("serve failed: {e}"))?;
    eprintln!("dse-serve drained and stopped");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
