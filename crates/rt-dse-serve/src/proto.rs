//! The serve wire protocol: JSON sweep requests in, status documents and
//! JSONL streams out.
//!
//! A request body is one JSON object whose fields mirror the `dse sweep`
//! CLI flags one-for-one — same names (modulo `-`/`_`), same defaults, same
//! validation — so a request and a CLI invocation describing the same sweep
//! produce **byte-identical** JSONL. Unknown and duplicate fields are
//! rejected rather than ignored: a typo'd axis name must not silently run
//! the default sweep.

use rt_dse::prelude::*;
use rt_dse::Time;

use crate::json::Json;

/// Every accepted sweep-request field, in documentation order. The README
/// request-schema table is machine-checked against this list (xtask D006).
pub const REQUEST_FIELDS: &str = "name, workload, eval, horizon, attacks, cores, util_steps, \
                                  utils, allocators, period_policies, trials, seed, sec_tasks, \
                                  sample, batch, explore, refine_budget";

/// Every job-status field, in render order. The README status-schema table
/// and the `status_json` render order are both machine-checked against this
/// list (xtask D006 and a unit test in `jobs`).
pub const STATUS_FIELDS: &str = "schema, id, name, state, done, total, elapsed_secs, \
                                 store_hits, store_misses, error";

/// A validated sweep request: the spec plus the engine knobs that ride
/// along with it.
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// The sweep to run.
    pub spec: ScenarioSpec,
    /// Kernel mode (`"batch": false` selects the scalar reference kernels;
    /// output bytes are identical either way).
    pub batch: BatchMode,
}

fn want_u64(value: &Json, key: &str) -> Result<Option<u64>, String> {
    match value {
        Json::Null => Ok(None),
        v => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("\"{key}\" must be an unsigned integer")),
    }
}

fn want_usize(value: &Json, key: &str) -> Result<Option<usize>, String> {
    match value {
        Json::Null => Ok(None),
        v => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| format!("\"{key}\" must be an unsigned integer")),
    }
}

fn want_str<'a>(value: &'a Json, key: &str) -> Result<Option<&'a str>, String> {
    match value {
        Json::Null => Ok(None),
        v => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("\"{key}\" must be a string")),
    }
}

fn want_list<T>(
    value: &Json,
    key: &str,
    what: &str,
    convert: impl Fn(&Json) -> Option<T>,
) -> Result<Option<Vec<T>>, String> {
    match value {
        Json::Null => Ok(None),
        Json::Arr(items) => items
            .iter()
            .map(|item| convert(item).ok_or_else(|| format!("\"{key}\" must be a list of {what}")))
            .collect::<Result<Vec<T>, String>>()
            .map(Some),
        _ => Err(format!("\"{key}\" must be a list of {what}")),
    }
}

/// Parses and validates one sweep-request document.
///
/// # Errors
///
/// A human-readable reason: unknown field, wrong type, or a value outside
/// the same bounds the CLI enforces.
pub fn parse_request(doc: &Json) -> Result<SweepRequest, String> {
    let Json::Obj(members) = doc else {
        return Err("the request body must be a JSON object".to_owned());
    };
    let known: Vec<&str> = REQUEST_FIELDS.split(',').map(str::trim).collect();
    for (key, _) in members {
        if !known.contains(&key.as_str()) {
            return Err(format!(
                "unknown field \"{key}\" (accepted: {REQUEST_FIELDS})"
            ));
        }
    }
    let get = |key: &str| doc.get(key).unwrap_or(&Json::Null);

    let workload = match want_str(get("workload"), "workload")?.unwrap_or("synthetic") {
        "synthetic" => {
            let mut overrides = SyntheticOverrides::default();
            if let Some(range) =
                want_list(get("sec_tasks"), "sec_tasks", "integers", Json::as_usize)?
            {
                let [lo, hi] = range[..] else {
                    return Err("\"sec_tasks\" expects [lo, hi]".to_owned());
                };
                if lo == 0 || lo > hi {
                    return Err(format!("\"sec_tasks\" range [{lo}, {hi}] is empty or zero"));
                }
                overrides.security_tasks = Some((lo, hi));
            }
            Workload::Synthetic(overrides)
        }
        "uav" => Workload::CaseStudyUav,
        other => return Err(format!("unknown workload: {other}")),
    };

    let evaluation = match want_str(get("eval"), "eval")?.unwrap_or("allocate") {
        "allocate" => Evaluation::Allocate,
        "detection" => Evaluation::Detection {
            horizon: Time::from_secs(want_u64(get("horizon"), "horizon")?.unwrap_or(120)),
            attacks: want_usize(get("attacks"), "attacks")?.unwrap_or(100),
        },
        other => return Err(format!("unknown evaluation: {other}")),
    };

    let utilizations = if matches!(workload, Workload::CaseStudyUav) {
        UtilizationGrid::NotApplicable
    } else if let Some(fractions) = want_list(get("utils"), "utils", "numbers", Json::as_f64)? {
        if fractions.iter().any(|f| !(*f > 0.0 && *f <= 1.0)) {
            return Err("\"utils\" fractions must lie in (0, 1]".to_owned());
        }
        UtilizationGrid::Fractions(fractions)
    } else {
        UtilizationGrid::NormalizedSteps(want_usize(get("util_steps"), "util_steps")?.unwrap_or(13))
    };

    let allocators = match want_list(get("allocators"), "allocators", "strings", |v| {
        v.as_str().map(str::to_owned)
    })? {
        None => vec![
            AllocatorKind::Hydra,
            AllocatorKind::SingleCore,
            AllocatorKind::NpHydra,
        ],
        Some(labels) => labels
            .iter()
            .map(|label| {
                AllocatorKind::parse(label).ok_or_else(|| format!("unknown allocator: {label}"))
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    if allocators.is_empty() {
        return Err("at least one allocator is required".to_owned());
    }

    let period_policies =
        match want_list(get("period_policies"), "period_policies", "strings", |v| {
            v.as_str().map(str::to_owned)
        })? {
            None => vec![PeriodPolicy::Fixed],
            Some(labels) => labels
                .iter()
                .map(|label| {
                    PeriodPolicy::parse(label)
                        .ok_or_else(|| format!("unknown period policy: {label}"))
                })
                .collect::<Result<Vec<_>, String>>()?,
        };
    if period_policies.is_empty() {
        return Err("at least one period policy is required".to_owned());
    }

    let expansion = match want_usize(get("sample"), "sample")? {
        Some(n) => Expansion::Sampled(n),
        None => Expansion::Cartesian,
    };

    let cores = want_list(get("cores"), "cores", "integers", Json::as_usize)?
        .unwrap_or_else(|| vec![2, 4, 8]);
    if cores.is_empty() || cores.contains(&0) {
        return Err("\"cores\" requires one or more core counts >= 1".to_owned());
    }

    let refine_budget = want_usize(get("refine_budget"), "refine_budget")?;
    let explore = match want_str(get("explore"), "explore")?.unwrap_or("exhaustive") {
        "exhaustive" => {
            if refine_budget.is_some() {
                return Err(
                    "\"refine_budget\" only applies to the frontier explore mode".to_owned(),
                );
            }
            ExploreMode::Exhaustive
        }
        "frontier" => ExploreMode::Frontier(FrontierConfig {
            refine_budget: refine_budget.unwrap_or(FrontierConfig::default().refine_budget),
        }),
        other => return Err(format!("unknown explore mode: {other}")),
    };

    let batch = match get("batch") {
        Json::Null => BatchMode::Batch,
        v => {
            if v.as_bool()
                .ok_or_else(|| "\"batch\" must be a boolean".to_owned())?
            {
                BatchMode::Batch
            } else {
                BatchMode::Scalar
            }
        }
    };

    Ok(SweepRequest {
        spec: ScenarioSpec {
            name: want_str(get("name"), "name")?.unwrap_or("sweep").to_owned(),
            workload,
            evaluation,
            cores,
            utilizations,
            allocators,
            period_policies,
            trials: want_usize(get("trials"), "trials")?.unwrap_or(5),
            base_seed: want_u64(get("seed"), "seed")?.unwrap_or(2018),
            expansion,
            explore,
        },
        batch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn an_empty_request_matches_the_cli_defaults() {
        let req = parse_request(&json::parse("{}").expect("valid json")).expect("valid request");
        assert_eq!(req.spec.name, "sweep");
        assert_eq!(req.spec.cores, vec![2, 4, 8]);
        assert_eq!(req.spec.trials, 5);
        assert_eq!(req.spec.base_seed, 2018);
        assert_eq!(
            req.spec.allocators,
            vec![
                AllocatorKind::Hydra,
                AllocatorKind::SingleCore,
                AllocatorKind::NpHydra
            ]
        );
        assert_eq!(req.spec.period_policies, vec![PeriodPolicy::Fixed]);
        assert!(matches!(
            req.spec.utilizations,
            UtilizationGrid::NormalizedSteps(13)
        ));
        assert!(matches!(req.batch, BatchMode::Batch));
        assert_eq!(req.spec.explore, ExploreMode::Exhaustive);
    }

    #[test]
    fn frontier_requests_parse_the_adaptive_fields() {
        let req = parse_request(
            &json::parse(r#"{"explore": "frontier", "refine_budget": 12}"#).expect("valid json"),
        )
        .expect("valid request");
        assert_eq!(
            req.spec.explore,
            ExploreMode::Frontier(FrontierConfig { refine_budget: 12 })
        );
        // The budget defaults like the CLI's when omitted.
        let req = parse_request(&json::parse(r#"{"explore": "frontier"}"#).expect("valid json"))
            .expect("valid request");
        assert_eq!(
            req.spec.explore,
            ExploreMode::Frontier(FrontierConfig::default())
        );
    }

    #[test]
    fn explicit_fields_reach_the_spec() {
        let body = r#"{
            "name": "mini", "cores": [2], "utils": [0.3, 0.6], "trials": 2,
            "seed": 7, "allocators": ["hydra"], "period_policies": ["fixed"],
            "batch": false
        }"#;
        let req = parse_request(&json::parse(body).expect("valid json")).expect("valid request");
        assert_eq!(req.spec.name, "mini");
        assert_eq!(req.spec.cores, vec![2]);
        assert_eq!(req.spec.base_seed, 7);
        assert!(matches!(req.batch, BatchMode::Scalar));
        match &req.spec.utilizations {
            UtilizationGrid::Fractions(f) => assert_eq!(f, &vec![0.3, 0.6]),
            other => panic!("expected fractions, got {other:?}"),
        }
    }

    #[test]
    fn unknown_fields_and_bad_values_are_rejected() {
        for (body, needle) in [
            (r#"{"coores": [2]}"#, "unknown field"),
            (r#"{"cores": [0]}"#, "core counts"),
            (r#"{"utils": [1.5]}"#, "(0, 1]"),
            (r#"{"allocators": []}"#, "at least one allocator"),
            (r#"{"allocators": ["warpdrive"]}"#, "unknown allocator"),
            (r#"{"sec_tasks": [5, 2]}"#, "empty or zero"),
            (r#"{"trials": "many"}"#, "unsigned integer"),
            (r#"{"workload": "quantum"}"#, "unknown workload"),
            (r#"{"explore": "random"}"#, "unknown explore mode"),
            (
                r#"{"refine_budget": 4}"#,
                "only applies to the frontier explore mode",
            ),
            (r#"[1]"#, "must be a JSON object"),
        ] {
            let doc = json::parse(body).expect("valid json");
            let err = parse_request(&doc).expect_err("must be rejected");
            assert!(
                err.contains(needle),
                "`{body}` -> `{err}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn request_fields_list_is_canonical() {
        // Guards the D006 contract: every field the parser consults appears
        // in REQUEST_FIELDS (the parser rejects anything outside the list,
        // so a field missing from the list would be unreachable).
        for key in [
            "name",
            "workload",
            "eval",
            "horizon",
            "attacks",
            "cores",
            "util_steps",
            "utils",
            "allocators",
            "period_policies",
            "trials",
            "seed",
            "sec_tasks",
            "sample",
            "batch",
            "explore",
            "refine_budget",
        ] {
            assert!(
                REQUEST_FIELDS.split(',').any(|f| f.trim() == key),
                "{key} missing from REQUEST_FIELDS"
            );
        }
    }
}
