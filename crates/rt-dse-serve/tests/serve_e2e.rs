//! End-to-end tests over real sockets: a [`Server`] bound to an ephemeral
//! port, exercised by a hand-rolled HTTP client. The headline assertions:
//! the streamed JSONL is byte-identical to an embedded engine run of the
//! same spec, a warm persistent store answers a repeat job without a single
//! disk miss, cancel works queued and running, and shutdown drains.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rt_dse::prelude::*;
use rt_dse::JsonlSink;
use rt_dse_serve::{http, json, proto, Server, ServerConfig};

/// Starts a server on an ephemeral port; returns its address and the
/// `serve()` join handle (detached unless the test shuts the server down).
fn start_server(
    workers: usize,
    store: Option<Arc<MemoStore>>,
) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        threads_per_job: 1,
        store,
    })
    .expect("ephemeral bind succeeds");
    let addr = server.local_addr().expect("bound address resolves");
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dse-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes one request on a fresh connection.
fn send_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("server accepts connections");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout applies");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("request writes");
    stream
}

/// Reads the response head (status line + headers) without touching body
/// bytes.
fn read_head(stream: &mut TcpStream) -> (u16, Vec<(String, String)>) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("head read succeeds");
        assert!(n != 0, "connection closed mid-head");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).expect("head is UTF-8");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line parses");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    (status, headers)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// One complete request/response exchange; chunked bodies are de-chunked.
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = send_request(addr, method, path, body);
    let (status, headers) = read_head(&mut stream);
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("body read succeeds");
    let body = if header(&headers, "transfer-encoding") == Some("chunked") {
        http::dechunk(&raw).expect("chunk framing is valid")
    } else {
        raw
    };
    (status, body)
}

fn json_of(body: &[u8]) -> json::Json {
    json::parse(std::str::from_utf8(body).expect("body is UTF-8")).expect("body is valid JSON")
}

/// The engine-side reference bytes for a request body: parse it with the
/// same protocol code and run it through a [`SweepSession`] into a JSONL
/// sink.
fn engine_reference_jsonl(request_body: &str) -> Vec<u8> {
    let doc = json::parse(request_body).expect("request body is valid JSON");
    let request = proto::parse_request(&doc).expect("request is valid");
    let mut sink = JsonlSink::new(Vec::new());
    let session = SweepSession::new(request.spec)
        .threads(1)
        .batch_mode(request.batch);
    match session.spec().explore {
        ExploreMode::Frontier(_) => {
            FrontierRunner::new(session)
                .explore(&mut sink)
                .expect("in-memory sink is infallible");
        }
        ExploreMode::Exhaustive => {
            session
                .run(&mut sink)
                .expect("in-memory sink is infallible");
        }
    }
    sink.into_inner()
}

const MINI_SWEEP: &str = r#"{"name": "mini", "cores": [2], "utils": [0.3, 0.6], "trials": 2,
                             "allocators": ["hydra", "singlecore"], "seed": 77}"#;

#[test]
fn health_index_and_404s() {
    let (addr, _server) = start_server(1, None);
    let (status, body) = exchange(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(
        json_of(&body).get("ok").and_then(json::Json::as_bool),
        Some(true)
    );

    let (status, body) = exchange(addr, "GET", "/", "");
    assert_eq!(status, 200);
    assert!(json_of(&body).get("endpoints").is_some());

    let (status, _) = exchange(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = exchange(addr, "GET", "/v1/jobs/999", "");
    assert_eq!(status, 404);
    let (status, body) = exchange(addr, "POST", "/v1/sweep", r#"{"coores": [2]}"#);
    assert_eq!(status, 400);
    let reason = json_of(&body);
    let error = reason
        .get("error")
        .and_then(json::Json::as_str)
        .expect("error field");
    assert!(error.contains("unknown field"), "{error}");
}

#[test]
fn streamed_jsonl_is_byte_identical_to_the_embedded_engine() {
    let (addr, _server) = start_server(2, None);
    let mut stream = send_request(addr, "POST", "/v1/sweep", MINI_SWEEP);
    let (status, headers) = read_head(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "transfer-encoding"), Some("chunked"));
    assert_eq!(
        header(&headers, "content-type"),
        Some("application/x-ndjson")
    );
    let id: u64 = header(&headers, "x-job-id")
        .and_then(|v| v.parse().ok())
        .expect("X-Job-Id header names the job");

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("stream drains");
    let streamed = http::dechunk(&raw).expect("terminated cleanly");
    assert_eq!(
        streamed,
        engine_reference_jsonl(MINI_SWEEP),
        "the wire bytes must match the engine's JSONL exactly"
    );

    // The job's terminal status document.
    let (status, body) = exchange(addr, "GET", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 200);
    let doc = json_of(&body);
    assert_eq!(
        doc.get("schema").and_then(json::Json::as_str),
        Some("dse-serve-job/v1")
    );
    assert_eq!(doc.get("state").and_then(json::Json::as_str), Some("done"));
    assert_eq!(doc.get("name").and_then(json::Json::as_str), Some("mini"));
    let done = doc.get("done").and_then(json::Json::as_u64).expect("done");
    let total = doc
        .get("total")
        .and_then(json::Json::as_u64)
        .expect("total");
    assert_eq!(done, total);
    assert_eq!(done, 8, "2 utils x 2 allocators x 2 trials");
    assert!(doc
        .get("elapsed_secs")
        .and_then(json::Json::as_f64)
        .is_some());
    assert_eq!(doc.get("error"), Some(&json::Json::Null));

    // And the job listing carries it.
    let (status, body) = exchange(addr, "GET", "/v1/jobs", "");
    assert_eq!(status, 200);
    let listing = json_of(&body);
    let jobs = listing
        .get("jobs")
        .and_then(json::Json::as_arr)
        .expect("jobs array");
    assert!(jobs
        .iter()
        .any(|j| j.get("id").and_then(json::Json::as_u64) == Some(id)));
}

const FRONTIER_SWEEP: &str = r#"{"name": "fr", "cores": [2], "trials": 2, "seed": 77,
    "utils": [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5,
              0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0],
    "allocators": ["hydra", "singlecore"],
    "explore": "frontier", "refine_budget": 4}"#;

#[test]
fn frontier_jobs_stream_the_adaptive_plan_byte_identically() {
    let (addr, _server) = start_server(2, None);
    let mut stream = send_request(addr, "POST", "/v1/sweep", FRONTIER_SWEEP);
    let (status, headers) = read_head(&mut stream);
    assert_eq!(status, 200);
    let id: u64 = header(&headers, "x-job-id")
        .and_then(|v| v.parse().ok())
        .expect("X-Job-Id header names the job");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("stream drains");
    let streamed = http::dechunk(&raw).expect("terminated cleanly");
    assert_eq!(
        streamed,
        engine_reference_jsonl(FRONTIER_SWEEP),
        "frontier wire bytes must match the embedded adaptive driver exactly"
    );

    // The plan must genuinely prune the grid: fewer emitted records than
    // the exhaustive 20 utils x 2 allocators x 2 trials, but not zero.
    let lines = streamed.iter().filter(|b| **b == b'\n').count();
    assert!(lines > 0, "a frontier job still emits its refined points");
    assert!(
        lines < 20 * 2 * 2,
        "adaptive emission ({lines} records) must undercut the exhaustive grid"
    );

    let (status, body) = exchange(addr, "GET", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 200);
    let doc = json_of(&body);
    assert_eq!(doc.get("state").and_then(json::Json::as_str), Some("done"));
}

#[test]
fn a_warm_store_answers_a_repeat_job_without_disk_misses() {
    let dir = scratch("warm");
    let store = Arc::new(
        MemoStore::open(&dir)
            .expect("store opens")
            .with_fsync(false),
    );
    let (addr, _server) = start_server(1, Some(store));

    let (status, cold) = exchange(addr, "POST", "/v1/sweep", MINI_SWEEP);
    assert_eq!(status, 200);
    let mut stream = send_request(addr, "POST", "/v1/sweep", MINI_SWEEP);
    let (status, headers) = read_head(&mut stream);
    assert_eq!(status, 200);
    let id: u64 = header(&headers, "x-job-id")
        .and_then(|v| v.parse().ok())
        .expect("X-Job-Id header");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("stream drains");
    let warm = http::dechunk(&raw).expect("terminated cleanly");

    assert_eq!(cold, warm, "warm bytes match cold bytes exactly");
    let (_, body) = exchange(addr, "GET", &format!("/v1/jobs/{id}"), "");
    let doc = json_of(&body);
    assert_eq!(doc.get("state").and_then(json::Json::as_str), Some("done"));
    assert_eq!(
        doc.get("store_misses").and_then(json::Json::as_u64),
        Some(0),
        "a repeat job must be answered entirely from the store"
    );
    assert!(
        doc.get("store_hits")
            .and_then(json::Json::as_u64)
            .expect("hits")
            > 0
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_works_queued_and_running_and_streams_terminate_cleanly() {
    // One runner: the first (large) job occupies it, the second queues.
    let (addr, _server) = start_server(1, None);
    let big = r#"{"name": "big", "cores": [2, 4, 8], "trials": 500}"#;

    let mut first = send_request(addr, "POST", "/v1/sweep", big);
    let (status, headers) = read_head(&mut first);
    assert_eq!(status, 200);
    let first_id: u64 = header(&headers, "x-job-id")
        .and_then(|v| v.parse().ok())
        .expect("X-Job-Id header");

    let mut second = send_request(addr, "POST", "/v1/sweep", big);
    let (status, headers) = read_head(&mut second);
    assert_eq!(status, 200);
    let second_id: u64 = header(&headers, "x-job-id")
        .and_then(|v| v.parse().ok())
        .expect("X-Job-Id header");

    // Cancel both: the second while (most likely) still queued, the first
    // mid-run. Either way the state machine must land on `cancelled` and
    // both chunk streams must terminate cleanly.
    let (status, body) = exchange(addr, "POST", &format!("/v1/jobs/{second_id}/cancel"), "");
    assert_eq!(status, 200);
    assert_eq!(
        json_of(&body).get("ok").and_then(json::Json::as_bool),
        Some(true)
    );
    let (status, _) = exchange(addr, "POST", &format!("/v1/jobs/{first_id}/cancel"), "");
    assert_eq!(status, 200);
    let (status, _) = exchange(addr, "POST", "/v1/jobs/424242/cancel", "");
    assert_eq!(status, 404);

    for stream in [&mut first, &mut second] {
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("stream drains");
        let body = http::dechunk(&raw).expect("cancelled streams still terminate cleanly");
        // Whatever was delivered is whole lines in grid order.
        assert!(body.is_empty() || body.ends_with(b"\n"));
    }
    for id in [first_id, second_id] {
        let (_, body) = exchange(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(
            json_of(&body).get("state").and_then(json::Json::as_str),
            Some("cancelled"),
            "job {id} must end cancelled"
        );
    }
}

#[test]
fn metrics_exposes_the_shared_registry() {
    let (addr, _server) = start_server(1, None);
    let (status, _) = exchange(addr, "POST", "/v1/sweep", MINI_SWEEP);
    assert_eq!(status, 200);
    let (status, body) = exchange(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("metrics are UTF-8");
    assert!(
        text.contains("rt-obs/v1"),
        "metrics carry the rt-obs schema"
    );
    assert!(
        text.contains("serve.jobs_accepted"),
        "serve counters are registered"
    );
    assert!(
        text.contains("sweep.scenarios_done"),
        "engine counters accumulate"
    );
}

#[test]
fn shutdown_refuses_new_work_drains_and_returns() {
    let (addr, server) = start_server(1, None);
    let (status, body) = exchange(addr, "POST", "/v1/sweep", MINI_SWEEP);
    assert_eq!(status, 200);
    assert!(!body.is_empty());

    let (status, body) = exchange(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(
        json_of(&body).get("draining").and_then(json::Json::as_bool),
        Some(true)
    );
    server
        .join()
        .expect("serve thread joins")
        .expect("serve returns cleanly");
    assert!(
        TcpStream::connect(addr).is_err(),
        "the listener is closed after shutdown"
    );
}
