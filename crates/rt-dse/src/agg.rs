//! Online aggregation of scenario outcomes into summary series.
//!
//! Two views cover the paper's evaluation and most follow-on questions:
//!
//! * [`SweepAccumulator`] / [`aggregate`] — per `(cores, allocator, period
//!   policy, utilization)` group: acceptance ratio over the
//!   Eq. (1)-feasible task sets, and mean / p50 / p99 of the cumulative
//!   tightness over the scheduled ones;
//! * [`PairedSink`] / [`paired_comparison`] — joins two allocators' outcomes
//!   on the shared problem instance (same seed-stream address, same period
//!   policy) and reports the tightness gap over the task sets **both**
//!   schemes scheduled, which is exactly the Figure 3 metric.
//!
//! Both are **online**: they fold outcomes one at a time, so the streaming
//! executor never has to retain the full outcome vector. The executor keeps
//! one [`SweepAccumulator`] per worker and merges the partials at the end
//! (built on [`AcceptanceCounter::merge`]); results are independent of the
//! fold order because every finalization step sorts before summing. Per
//! group, only the scheduled scenarios' tightness samples are retained
//! (8 bytes each — required for exact percentiles); everything else is O(1)
//! counters.
//!
//! All group state lives in `BTreeMap`s (lint rule D001): rendering walks
//! the maps in key order directly, so determinism is a property of the
//! container, not of a sort step someone could forget.

use std::collections::BTreeMap;

use hydra_core::metrics::{mean, percentile_sorted, AcceptanceCounter};

use crate::scenario::ScenarioOutcome;
use crate::sink::OutcomeSink;
use crate::spec::{AllocatorKind, PeriodPolicy};

/// Summary statistics of one `(cores, allocator, policy, utilization)`
/// group.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateRow {
    /// Number of cores.
    pub cores: usize,
    /// Allocation scheme.
    pub allocator: AllocatorKind,
    /// Period policy applied after allocation.
    pub policy: PeriodPolicy,
    /// Utilization grid value (`None` for fixed workloads).
    pub utilization: Option<f64>,
    /// Scenarios in the group.
    pub scenarios: usize,
    /// Scenarios whose task set passed the Eq. (1) filter.
    pub feasible: usize,
    /// Scenarios the scheme scheduled.
    pub scheduled: usize,
    /// `scheduled / feasible` (`0` when nothing was feasible).
    pub acceptance_ratio: f64,
    /// Mean cumulative tightness over the scheduled scenarios.
    pub mean_tightness: f64,
    /// Median cumulative tightness over the scheduled scenarios.
    pub p50_tightness: f64,
    /// 99th-percentile cumulative tightness over the scheduled scenarios.
    pub p99_tightness: f64,
    /// Mean achieved-vs-desired monitoring-frequency ratio over the
    /// scheduled scenarios that reported one (`0` when none did).
    pub mean_freq_ratio: f64,
}

/// Group key: `(cores, allocator, policy, utilization bit pattern)`. A
/// `None` utilization is stored as bit pattern `0`, which no positive grid
/// value collides with.
type GroupKey = (usize, AllocatorKind, PeriodPolicy, u64);

fn group_key(outcome: &ScenarioOutcome) -> GroupKey {
    (
        outcome.scenario.cores,
        outcome.scenario.allocator,
        outcome.scenario.policy,
        outcome.scenario.utilization.map_or(0, f64::to_bits),
    )
}

/// Per-group online state.
#[derive(Debug, Clone, Default)]
struct GroupAcc {
    /// `accepted` = Eq. (1)-feasible scenarios, `total` = all scenarios.
    feasible: AcceptanceCounter,
    /// `accepted` = scheduled scenarios, `total` = feasible scenarios.
    scheduled: AcceptanceCounter,
    /// Cumulative tightness of every scheduled scenario.
    tightness: Vec<f64>,
    /// Achieved-vs-desired frequency ratio of every scheduled scenario that
    /// reported one (scheduled scenarios with an empty security set do not).
    freq_ratio: Vec<f64>,
}

impl GroupAcc {
    fn record(&mut self, outcome: &ScenarioOutcome) {
        self.feasible.record(outcome.feasible);
        if outcome.feasible {
            self.scheduled.record(outcome.schedulable);
        }
        if let Some(t) = outcome.cumulative_tightness {
            self.tightness.push(t);
        }
        if let Some(f) = outcome.freq_ratio {
            self.freq_ratio.push(f);
        }
    }

    fn merge(&mut self, other: GroupAcc) {
        self.feasible.merge(&other.feasible);
        self.scheduled.merge(&other.scheduled);
        self.tightness.extend(other.tightness);
        self.freq_ratio.extend(other.freq_ratio);
    }
}

/// Online per-group aggregation state: fold outcomes in with
/// [`SweepAccumulator::record`] (any order), combine partials with
/// [`SweepAccumulator::merge`], and render the deterministic summary with
/// [`SweepAccumulator::rows`].
#[derive(Debug, Clone, Default)]
pub struct SweepAccumulator {
    groups: BTreeMap<GroupKey, GroupAcc>,
}

impl SweepAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        SweepAccumulator::default()
    }

    /// Folds one outcome in.
    pub fn record(&mut self, outcome: &ScenarioOutcome) {
        self.groups
            .entry(group_key(outcome))
            .or_default()
            .record(outcome);
    }

    /// Merges another accumulator (e.g. a worker's partial) into this one.
    /// The final [`SweepAccumulator::rows`] are independent of merge order.
    pub fn merge(&mut self, other: SweepAccumulator) {
        for (key, acc) in other.groups {
            self.groups.entry(key).or_default().merge(acc);
        }
    }

    /// Number of outcomes folded in so far.
    #[must_use]
    pub fn recorded(&self) -> usize {
        self.groups
            .values()
            .map(|g| g.feasible.total() as usize)
            .sum()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Renders the aggregate rows, sorted by `(cores, allocator, policy,
    /// utilization)` so the output is deterministic (the `BTreeMap` walks
    /// its keys in exactly that order).
    #[must_use]
    pub fn rows(&self) -> Vec<AggregateRow> {
        self.groups
            .iter()
            .map(|(key, group)| {
                let mut tightness = group.tightness.clone();
                tightness.sort_by(f64::total_cmp);
                let mut freq_ratio = group.freq_ratio.clone();
                freq_ratio.sort_by(f64::total_cmp);
                AggregateRow {
                    cores: key.0,
                    allocator: key.1,
                    policy: key.2,
                    utilization: (key.3 != 0).then(|| f64::from_bits(key.3)),
                    scenarios: group.feasible.total() as usize,
                    feasible: group.feasible.accepted() as usize,
                    scheduled: group.scheduled.accepted() as usize,
                    acceptance_ratio: group.scheduled.ratio(),
                    // Sorted input keeps the float sum independent of arrival order.
                    mean_tightness: mean(&tightness),
                    p50_tightness: percentile_sorted(&tightness, 50.0),
                    p99_tightness: percentile_sorted(&tightness, 99.0),
                    mean_freq_ratio: mean(&freq_ratio),
                }
            })
            .collect()
    }

    /// Serializes the accumulator as stable text lines (one `group` line per
    /// group key, tightness and frequency-ratio samples as f64 bit patterns)
    /// for checkpoints. The tightness sample count is explicit so the two
    /// variable-length sample lists can share one line unambiguously.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (key, group) in &self.groups {
            let _ = write!(
                out,
                "group {} {} {} {:x} {} {} {} {}",
                key.0,
                key.1.label(),
                key.2.label(),
                key.3,
                group.feasible.total(),
                group.feasible.accepted(),
                group.scheduled.accepted(),
                group.tightness.len(),
            );
            for t in &group.tightness {
                let _ = write!(out, " {:x}", t.to_bits());
            }
            for f in &group.freq_ratio {
                let _ = write!(out, " {:x}", f.to_bits());
            }
            out.push('\n');
        }
        out
    }

    /// Parses the [`SweepAccumulator::render`] format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut acc = SweepAccumulator::new();
        for line in text.lines() {
            let mut fields = line.split_ascii_whitespace();
            if fields.next() != Some("group") {
                return Err(format!("expected a `group` line, got: {line}"));
            }
            let mut next = |what: &str| {
                fields
                    .next()
                    .ok_or_else(|| format!("missing {what} in: {line}"))
            };
            let cores: usize = next("cores")?.parse().map_err(|e| format!("cores: {e}"))?;
            let allocator = next("allocator").map(AllocatorKind::parse)?;
            let allocator = allocator.ok_or_else(|| format!("unknown allocator in: {line}"))?;
            let policy = next("policy").map(PeriodPolicy::parse)?;
            let policy = policy.ok_or_else(|| format!("unknown period policy in: {line}"))?;
            let util_bits = u64::from_str_radix(next("utilization")?, 16)
                .map_err(|e| format!("utilization bits: {e}"))?;
            let scenarios: u64 = next("scenarios")?
                .parse()
                .map_err(|e| format!("scenarios: {e}"))?;
            let feasible: u64 = next("feasible")?
                .parse()
                .map_err(|e| format!("feasible: {e}"))?;
            let scheduled: u64 = next("scheduled")?
                .parse()
                .map_err(|e| format!("scheduled: {e}"))?;
            if feasible > scenarios || scheduled > feasible {
                return Err(format!("inconsistent counters in: {line}"));
            }
            // The tightness count is mandatory (v3 format): without it the
            // tightness and frequency-ratio sample lists are ambiguous, so a
            // pre-freq-ratio v2 line must be rejected, not misread.
            let n_tight: usize = next("tightness count")?
                .parse()
                .map_err(|e| format!("tightness count: {e}"))?;
            let samples: Vec<f64> = fields
                .map(|bits| u64::from_str_radix(bits, 16).map(f64::from_bits))
                .collect::<Result<_, _>>()
                .map_err(|e| format!("sample bits: {e}"))?;
            if samples.len() < n_tight {
                return Err(format!(
                    "tightness count {} exceeds the {} samples in: {line}",
                    n_tight,
                    samples.len()
                ));
            }
            let (tightness, freq_ratio) = samples.split_at(n_tight);
            let previous = acc.groups.insert(
                (cores, allocator, policy, util_bits),
                GroupAcc {
                    feasible: AcceptanceCounter::from_counts(feasible, scenarios),
                    scheduled: AcceptanceCounter::from_counts(scheduled, feasible),
                    tightness: tightness.to_vec(),
                    freq_ratio: freq_ratio.to_vec(),
                },
            );
            if previous.is_some() {
                return Err(format!("duplicate group in: {line}"));
            }
        }
        Ok(acc)
    }
}

/// Groups outcomes by `(cores, allocator, utilization)` and summarises each
/// group — the buffered convenience wrapper over [`SweepAccumulator`].
#[deprecated(
    since = "0.1.0",
    note = "stream into a `SweepAccumulator` (or read `StreamSummary::partial`) instead of \
            buffering the whole sweep; this shim will be removed next release"
)]
#[must_use]
pub fn aggregate(outcomes: &[ScenarioOutcome]) -> Vec<AggregateRow> {
    let mut acc = SweepAccumulator::new();
    for outcome in outcomes {
        acc.record(outcome);
    }
    acc.rows()
}

/// One point of a paired two-scheme comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PairedPoint {
    /// Number of cores.
    pub cores: usize,
    /// Period policy both joined outcomes ran under (outcomes are only
    /// joined within one policy — a multi-policy sweep yields one series per
    /// policy).
    pub policy: PeriodPolicy,
    /// Utilization grid value (`None` for fixed workloads).
    pub utilization: Option<f64>,
    /// Task sets both schemes scheduled (the gap is averaged over these).
    pub compared: usize,
    /// Mean cumulative tightness of the first scheme over the compared sets.
    pub a_tightness: f64,
    /// Mean cumulative tightness of the second scheme over the compared sets.
    pub b_tightness: f64,
    /// Mean relative gap `(η_b − η_a)/η_b × 100` over the compared sets.
    pub mean_gap_percent: f64,
    /// Largest observed per-task-set gap in percent.
    pub max_gap_percent: f64,
}

/// Accumulated tightness samples of one `(cores, utilization)` point.
#[derive(Debug, Clone, Default)]
struct PointAcc {
    a_values: Vec<f64>,
    b_values: Vec<f64>,
    gaps: Vec<f64>,
}

/// One half-joined problem instance: each slot is `Some` once that scheme's
/// outcome arrived; the inner option is its cumulative tightness (`None`
/// when the scheme did not schedule the task set).
#[derive(Debug, Clone, Copy, Default)]
struct PendingPair {
    a: Option<Option<f64>>,
    b: Option<Option<f64>>,
}

/// An [`OutcomeSink`] that joins the outcomes of two allocators on their
/// shared problem addresses **online** and reports, per `(cores, policy,
/// utilization)` point, the relative tightness gap of `a` below `b` over the
/// task sets both scheduled. Outcomes are joined within one period policy
/// only, so the pairing stays exact when the sweep also carries the policy
/// axis.
///
/// With `a = Hydra` and `b = Optimal` this is the Figure 3 series. Because
/// the allocator and policy axes are innermost in grid order, a pair's two
/// outcomes arrive close together and the pending join state stays O(1) in
/// practice (O(unpaired points) worst case under sampled expansion).
#[derive(Debug)]
pub struct PairedSink {
    a: AllocatorKind,
    b: AllocatorKind,
    pending: BTreeMap<(usize, PeriodPolicy, u64, u64), PendingPair>,
    points: BTreeMap<(usize, PeriodPolicy, u64), PointAcc>,
}

impl PairedSink {
    /// Creates a sink comparing scheme `a` against scheme `b`.
    #[must_use]
    pub fn new(a: AllocatorKind, b: AllocatorKind) -> Self {
        PairedSink {
            a,
            b,
            pending: BTreeMap::new(),
            points: BTreeMap::new(),
        }
    }

    fn fold(&mut self, outcome: &ScenarioOutcome) {
        let s = &outcome.scenario;
        let util_bits = s.utilization.map_or(0, f64::to_bits);
        let is_a = s.allocator == self.a;
        let is_b = s.allocator == self.b;
        if is_a {
            // Every point scheme `a` ran at appears in the series, even when
            // nothing could be compared there.
            self.points
                .entry((s.cores, s.policy, util_bits))
                .or_default();
        }
        if !is_a && !is_b {
            return;
        }
        let key = (s.cores, s.policy, util_bits, s.problem_stream);
        let entry = self.pending.entry(key).or_default();
        if is_a {
            entry.a = Some(outcome.cumulative_tightness);
        }
        if is_b {
            entry.b = Some(outcome.cumulative_tightness);
        }
        if let (Some(ta), Some(tb)) = (entry.a, entry.b) {
            self.pending.remove(&key);
            if let (Some(eta_a), Some(eta_b)) = (ta, tb) {
                let acc = self
                    .points
                    .entry((s.cores, s.policy, util_bits))
                    .or_default();
                acc.a_values.push(eta_a);
                acc.b_values.push(eta_b);
                acc.gaps.push(if eta_b > 0.0 {
                    (eta_b - eta_a) / eta_b * 100.0
                } else {
                    0.0
                });
            }
        }
    }

    /// Renders the comparison series, sorted by `(cores, policy,
    /// utilization)` — the `BTreeMap`'s key order. Order-independent:
    /// every per-point vector is sorted before summing.
    #[must_use]
    pub fn into_points(self) -> Vec<PairedPoint> {
        self.points
            .into_iter()
            .map(|((cores, policy, util_bits), acc)| {
                let mut a_values = acc.a_values;
                let mut b_values = acc.b_values;
                let mut gaps = acc.gaps;
                a_values.sort_by(f64::total_cmp);
                b_values.sort_by(f64::total_cmp);
                gaps.sort_by(f64::total_cmp);
                PairedPoint {
                    cores,
                    policy,
                    utilization: (util_bits != 0).then(|| f64::from_bits(util_bits)),
                    compared: gaps.len(),
                    // Sorted inputs keep the float sums arrival-order independent.
                    a_tightness: mean(&a_values),
                    b_tightness: mean(&b_values),
                    mean_gap_percent: mean(&gaps),
                    max_gap_percent: gaps.last().copied().map_or(0.0, |g| g.max(0.0)),
                }
            })
            .collect()
    }
}

impl OutcomeSink for PairedSink {
    fn record(&mut self, outcome: &ScenarioOutcome) -> std::io::Result<()> {
        self.fold(outcome);
        Ok(())
    }
}

/// Joins the outcomes of allocators `a` and `b` on their shared problem
/// instances — the buffered convenience wrapper over [`PairedSink`].
///
/// With `a = Hydra` and `b = Optimal` this is the Figure 3 series.
#[deprecated(
    since = "0.1.0",
    note = "stream into a `PairedSink` instead of buffering the whole sweep; this shim will \
            be removed next release"
)]
#[must_use]
pub fn paired_comparison(
    outcomes: &[ScenarioOutcome],
    a: AllocatorKind,
    b: AllocatorKind,
) -> Vec<PairedPoint> {
    let mut sink = PairedSink::new(a, b);
    for outcome in outcomes {
        sink.fold(outcome);
    }
    sink.into_points()
}

#[cfg(test)]
#[allow(deprecated)] // the buffered shims stay covered until their removal
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::spec::{ScenarioSpec, UtilizationGrid};

    fn sweep() -> Vec<ScenarioOutcome> {
        let mut spec = ScenarioSpec::synthetic("agg-test");
        spec.cores = vec![2];
        spec.utilizations = UtilizationGrid::Fractions(vec![0.15, 0.4]);
        spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::SingleCore];
        spec.trials = 4;
        Executor::serial().run(&spec).outcomes
    }

    #[test]
    fn aggregate_groups_by_cores_allocator_and_utilization() {
        let rows = aggregate(&sweep());
        // 1 core count × 2 allocators × 2 utilization points.
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.scenarios, 4);
            assert!(row.feasible <= row.scenarios);
            assert!(row.scheduled <= row.feasible);
            assert!((0.0..=1.0).contains(&row.acceptance_ratio));
            if row.scheduled > 0 {
                assert!(row.mean_tightness > 0.0);
                assert!(row.p99_tightness + 1e-12 >= row.p50_tightness);
            }
        }
        // Deterministic ordering: sorted by (cores, allocator, util).
        let mut sorted = rows.clone();
        sorted.sort_by_key(|r| {
            (
                r.cores,
                r.allocator,
                r.policy,
                r.utilization.map_or(0, f64::to_bits),
            )
        });
        assert_eq!(rows, sorted);
    }

    #[test]
    fn accumulator_partials_merge_to_the_full_aggregate() {
        // Split the outcomes across three "workers" in an arbitrary
        // interleaving: the merged partials must reproduce the one-pass rows
        // exactly (this is the per-worker online-aggregation contract).
        let outcomes = sweep();
        let mut partials = [
            SweepAccumulator::new(),
            SweepAccumulator::new(),
            SweepAccumulator::new(),
        ];
        for (i, outcome) in outcomes.iter().enumerate() {
            partials[(i * 7 + 3) % 3].record(outcome);
        }
        let [a, b, c] = partials;
        let mut merged = SweepAccumulator::new();
        merged.merge(c);
        merged.merge(a);
        merged.merge(b);
        assert_eq!(merged.recorded(), outcomes.len());
        assert_eq!(merged.rows(), aggregate(&outcomes));
    }

    #[test]
    fn accumulator_render_parse_round_trips() {
        let outcomes = sweep();
        let mut acc = SweepAccumulator::new();
        for outcome in &outcomes {
            acc.record(outcome);
        }
        let text = acc.render();
        let restored = SweepAccumulator::parse(&text).unwrap();
        assert_eq!(restored.rows(), acc.rows());
        assert_eq!(restored.recorded(), acc.recorded());
        assert_eq!(restored.render(), text);
        // Malformed inputs are rejected, not misread.
        assert!(SweepAccumulator::parse("bogus 1 2 3").is_err());
        assert!(SweepAccumulator::parse("group 2 hydra fixed zz 1 1 1 0").is_err());
        assert!(SweepAccumulator::parse("group 2 hydra fixed 0 1 2 2 0").is_err());
        assert!(SweepAccumulator::parse("group 2 hydra bogus 0 1 1 1 0").is_err());
        // The pre-policy v1 group format no longer parses (the policy field
        // is mandatory), so stale checkpoints cannot be silently mixed in.
        assert!(SweepAccumulator::parse("group 2 hydra 0 1 1 1").is_err());
        // The pre-freq-ratio v2 format (no tightness count) is rejected too:
        // its trailing bit patterns would otherwise be misread as a count.
        assert!(SweepAccumulator::parse("group 2 hydra fixed 0 1 1 1").is_err());
        // A tightness count that overruns the samples on the line is corrupt.
        assert!(SweepAccumulator::parse("group 2 hydra fixed 0 1 1 1 2 3ff0000000000000").is_err());
        let empty = SweepAccumulator::parse("").unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn paired_comparison_joins_on_the_shared_problem() {
        let outcomes = sweep();
        let points = paired_comparison(&outcomes, AllocatorKind::Hydra, AllocatorKind::SingleCore);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.compared <= 4);
            if p.compared > 0 {
                // HYDRA never does worse than SingleCore on tightness, so the
                // gap of (hydra below singlecore) is never positive by much.
                assert!(p.a_tightness + 1e-9 >= p.b_tightness);
                assert!(p.mean_gap_percent <= 1e-9);
                assert!(p.max_gap_percent <= 1e-9 || p.max_gap_percent == 0.0);
            }
        }
    }

    #[test]
    fn paired_sink_streams_to_the_same_series() {
        let outcomes = sweep();
        let mut sink = PairedSink::new(AllocatorKind::Hydra, AllocatorKind::SingleCore);
        for outcome in &outcomes {
            sink.record(outcome).unwrap();
        }
        // Grid order pairs the two schemes back to back, so no join state
        // lingers once the stream ends.
        assert!(sink.pending.is_empty());
        assert_eq!(
            sink.into_points(),
            paired_comparison(&outcomes, AllocatorKind::Hydra, AllocatorKind::SingleCore)
        );
    }

    #[test]
    fn policy_axis_groups_and_joins_per_policy() {
        use crate::spec::PeriodPolicy;
        let mut spec = ScenarioSpec::synthetic("agg-policy");
        spec.cores = vec![2];
        spec.utilizations = UtilizationGrid::Fractions(vec![0.2]);
        spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::SingleCore];
        spec.period_policies = vec![PeriodPolicy::Fixed, PeriodPolicy::Joint];
        spec.trials = 3;
        let outcomes = Executor::serial().run(&spec).outcomes;
        // 1 core count × 2 allocators × 2 policies × 1 utilization point.
        let rows = aggregate(&outcomes);
        assert_eq!(rows.len(), 4);
        for policy in [PeriodPolicy::Fixed, PeriodPolicy::Joint] {
            assert_eq!(rows.iter().filter(|r| r.policy == policy).count(), 2);
        }
        // The paired join never mixes policies: one series per policy, each
        // comparing at most the per-policy trial count.
        let points = paired_comparison(&outcomes, AllocatorKind::Hydra, AllocatorKind::SingleCore);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].policy, PeriodPolicy::Fixed);
        assert_eq!(points[1].policy, PeriodPolicy::Joint);
        for p in &points {
            assert!(p.compared <= 3);
        }
        // Round-trip of the policy-aware render format.
        let mut acc = SweepAccumulator::new();
        for outcome in &outcomes {
            acc.record(outcome);
        }
        let restored = SweepAccumulator::parse(&acc.render()).unwrap();
        assert_eq!(restored.rows(), acc.rows());
    }

    #[test]
    fn empty_outcomes_produce_empty_series() {
        assert!(aggregate(&[]).is_empty());
        assert!(paired_comparison(&[], AllocatorKind::Hydra, AllocatorKind::Optimal).is_empty());
        assert!(SweepAccumulator::new().rows().is_empty());
    }
}
