//! Aggregation of scenario outcomes into summary series.
//!
//! Two views cover the paper's evaluation and most follow-on questions:
//!
//! * [`aggregate`] — per `(cores, allocator, utilization)` group: acceptance
//!   ratio over the Eq. (1)-feasible task sets, and mean / p50 / p99 of the
//!   cumulative tightness over the scheduled ones;
//! * [`paired_comparison`] — joins two allocators' outcomes on the shared
//!   problem instance (same seed-stream address) and reports the tightness
//!   gap over the task sets **both** schemes scheduled, which is exactly the
//!   Figure 3 metric.

use std::collections::HashMap;

use hydra_core::metrics::{mean, percentile};

use crate::scenario::ScenarioOutcome;
use crate::spec::AllocatorKind;

/// Summary statistics of one `(cores, allocator, utilization)` group.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateRow {
    /// Number of cores.
    pub cores: usize,
    /// Allocation scheme.
    pub allocator: AllocatorKind,
    /// Utilization grid value (`None` for fixed workloads).
    pub utilization: Option<f64>,
    /// Scenarios in the group.
    pub scenarios: usize,
    /// Scenarios whose task set passed the Eq. (1) filter.
    pub feasible: usize,
    /// Scenarios the scheme scheduled.
    pub scheduled: usize,
    /// `scheduled / feasible` (`0` when nothing was feasible).
    pub acceptance_ratio: f64,
    /// Mean cumulative tightness over the scheduled scenarios.
    pub mean_tightness: f64,
    /// Median cumulative tightness over the scheduled scenarios.
    pub p50_tightness: f64,
    /// 99th-percentile cumulative tightness over the scheduled scenarios.
    pub p99_tightness: f64,
}

fn group_key(outcome: &ScenarioOutcome) -> (usize, AllocatorKind, u64) {
    (
        outcome.scenario.cores,
        outcome.scenario.allocator,
        outcome.scenario.utilization.map_or(0, f64::to_bits),
    )
}

/// Groups outcomes by `(cores, allocator, utilization)` and summarises each
/// group. Rows are sorted by that key, so output is deterministic. Single
/// pass over the outcomes (a paper-scale sweep has tens of thousands).
#[must_use]
pub fn aggregate(outcomes: &[ScenarioOutcome]) -> Vec<AggregateRow> {
    let mut groups: HashMap<(usize, AllocatorKind, u64), Vec<&ScenarioOutcome>> = HashMap::new();
    for outcome in outcomes {
        groups.entry(group_key(outcome)).or_default().push(outcome);
    }
    let mut keys: Vec<(usize, AllocatorKind, u64)> = groups.keys().copied().collect();
    keys.sort_unstable();

    keys.into_iter()
        .map(|key| {
            let group = &groups[&key];
            let feasible = group.iter().filter(|o| o.feasible).count();
            let scheduled = group.iter().filter(|o| o.schedulable).count();
            let tightness: Vec<f64> = group
                .iter()
                .filter_map(|o| o.cumulative_tightness)
                .collect();
            AggregateRow {
                cores: key.0,
                allocator: key.1,
                utilization: group[0].scenario.utilization,
                scenarios: group.len(),
                feasible,
                scheduled,
                acceptance_ratio: if feasible > 0 {
                    scheduled as f64 / feasible as f64
                } else {
                    0.0
                },
                mean_tightness: mean(&tightness),
                p50_tightness: percentile(&tightness, 50.0),
                p99_tightness: percentile(&tightness, 99.0),
            }
        })
        .collect()
}

/// One point of a paired two-scheme comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PairedPoint {
    /// Number of cores.
    pub cores: usize,
    /// Utilization grid value (`None` for fixed workloads).
    pub utilization: Option<f64>,
    /// Task sets both schemes scheduled (the gap is averaged over these).
    pub compared: usize,
    /// Mean cumulative tightness of the first scheme over the compared sets.
    pub a_tightness: f64,
    /// Mean cumulative tightness of the second scheme over the compared sets.
    pub b_tightness: f64,
    /// Mean relative gap `(η_b − η_a)/η_b × 100` over the compared sets.
    pub mean_gap_percent: f64,
    /// Largest observed per-task-set gap in percent.
    pub max_gap_percent: f64,
}

/// Joins the outcomes of allocators `a` and `b` on their shared problem
/// instances and reports, per `(cores, utilization)` point, the relative
/// tightness gap of `a` below `b` over the task sets both scheduled.
///
/// With `a = Hydra` and `b = Optimal` this is the Figure 3 series.
#[must_use]
pub fn paired_comparison(
    outcomes: &[ScenarioOutcome],
    a: AllocatorKind,
    b: AllocatorKind,
) -> Vec<PairedPoint> {
    // Index scheme b's outcomes by the shared problem address for O(1)
    // joining, then accumulate per (cores, util bits) point in one pass over
    // scheme a's outcomes. Keys are sorted at the end, so the series stays
    // deterministic.
    let b_by_stream: HashMap<(usize, u64, u64), &ScenarioOutcome> = outcomes
        .iter()
        .filter(|o| o.scenario.allocator == b)
        .map(|o| {
            (
                (
                    o.scenario.cores,
                    o.scenario.utilization.map_or(0, f64::to_bits),
                    o.scenario.problem_stream,
                ),
                o,
            )
        })
        .collect();

    #[derive(Default)]
    struct PointAcc {
        a_values: Vec<f64>,
        b_values: Vec<f64>,
        gaps: Vec<f64>,
    }
    let mut points: HashMap<(usize, u64), PointAcc> = HashMap::new();
    for oa in outcomes.iter().filter(|o| o.scenario.allocator == a) {
        let cores = oa.scenario.cores;
        let util_bits = oa.scenario.utilization.map_or(0, f64::to_bits);
        let acc = points.entry((cores, util_bits)).or_default();
        let Some(ob) = b_by_stream.get(&(cores, util_bits, oa.scenario.problem_stream)) else {
            continue;
        };
        let (Some(eta_a), Some(eta_b)) = (oa.cumulative_tightness, ob.cumulative_tightness) else {
            continue;
        };
        acc.a_values.push(eta_a);
        acc.b_values.push(eta_b);
        acc.gaps.push(if eta_b > 0.0 {
            (eta_b - eta_a) / eta_b * 100.0
        } else {
            0.0
        });
    }

    let mut point_keys: Vec<(usize, u64)> = points.keys().copied().collect();
    point_keys.sort_unstable();
    point_keys
        .into_iter()
        .map(|(cores, util_bits)| {
            let acc = &points[&(cores, util_bits)];
            PairedPoint {
                cores,
                utilization: (util_bits != 0).then(|| f64::from_bits(util_bits)),
                compared: acc.gaps.len(),
                a_tightness: mean(&acc.a_values),
                b_tightness: mean(&acc.b_values),
                mean_gap_percent: mean(&acc.gaps),
                max_gap_percent: acc.gaps.iter().copied().fold(0.0, f64::max),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::spec::{ScenarioSpec, UtilizationGrid};

    fn sweep() -> Vec<ScenarioOutcome> {
        let mut spec = ScenarioSpec::synthetic("agg-test");
        spec.cores = vec![2];
        spec.utilizations = UtilizationGrid::Fractions(vec![0.15, 0.4]);
        spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::SingleCore];
        spec.trials = 4;
        Executor::serial().run(&spec).outcomes
    }

    #[test]
    fn aggregate_groups_by_cores_allocator_and_utilization() {
        let rows = aggregate(&sweep());
        // 1 core count × 2 allocators × 2 utilization points.
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.scenarios, 4);
            assert!(row.feasible <= row.scenarios);
            assert!(row.scheduled <= row.feasible);
            assert!((0.0..=1.0).contains(&row.acceptance_ratio));
            if row.scheduled > 0 {
                assert!(row.mean_tightness > 0.0);
                assert!(row.p99_tightness + 1e-12 >= row.p50_tightness);
            }
        }
        // Deterministic ordering: sorted by (cores, allocator, util).
        let mut sorted = rows.clone();
        sorted.sort_by_key(|r| (r.cores, r.allocator, r.utilization.map_or(0, f64::to_bits)));
        assert_eq!(rows, sorted);
    }

    #[test]
    fn paired_comparison_joins_on_the_shared_problem() {
        let outcomes = sweep();
        let points = paired_comparison(&outcomes, AllocatorKind::Hydra, AllocatorKind::SingleCore);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.compared <= 4);
            if p.compared > 0 {
                // HYDRA never does worse than SingleCore on tightness, so the
                // gap of (hydra below singlecore) is never positive by much.
                assert!(p.a_tightness + 1e-9 >= p.b_tightness);
                assert!(p.mean_gap_percent <= 1e-9);
                assert!(p.max_gap_percent <= 1e-9);
            }
        }
    }

    #[test]
    fn empty_outcomes_produce_empty_series() {
        assert!(aggregate(&[]).is_empty());
        assert!(paired_comparison(&[], AllocatorKind::Hydra, AllocatorKind::Optimal).is_empty());
    }
}
