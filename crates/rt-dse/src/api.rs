//! The embeddable engine API: [`SweepSession`] and [`SweepHandle`].
//!
//! This module is the **stable library surface** of the sweep engine — the
//! seam both the `dse` CLI and the `dse-serve` server are built on. A
//! session is a value describing one run of one [`ScenarioSpec`]: how many
//! threads, which kernel mode, which observability bundle, which persistent
//! [`MemoStore`], which grid range. Running it streams outcomes into any
//! [`OutcomeSink`] in grid order and returns the [`StreamSummary`]. The
//! engine itself never touches stdout/stderr and holds no process-global
//! state, so any number of sessions can run concurrently in one process
//! (the server runs one per job on a shared store).
//!
//! ```
//! use rt_dse::api::SweepSession;
//! use rt_dse::{ScenarioSpec, UtilizationGrid, VecSink};
//!
//! let mut spec = ScenarioSpec::synthetic("demo");
//! spec.cores = vec![2];
//! spec.utilizations = UtilizationGrid::Fractions(vec![0.2, 0.6]);
//! spec.trials = 3;
//!
//! let mut sink = VecSink::new();
//! let summary = SweepSession::new(spec)
//!     .threads(2)
//!     .run(&mut sink)
//!     .expect("VecSink never raises I/O errors");
//! assert_eq!(summary.evaluated(), 12);
//! assert_eq!(sink.outcomes().len(), 12);
//! ```
//!
//! # Cancellation
//!
//! [`SweepSession::handle`] hands out a cloneable [`SweepHandle`] before the
//! run starts; any thread may call [`SweepHandle::cancel`] and the run stops
//! promptly after in-flight scenarios, finishes the sink cleanly, and
//! reports [`StreamSummary::cancelled`]. [`SweepHandle::progress`] is a
//! lock-free snapshot of outcomes delivered so far — the server's job-status
//! endpoint reads it live.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use rt_core::batch::BatchMode;

use crate::exec::{Executor, StreamSummary, SweepResult};
use crate::grid::ScenarioGrid;
use crate::obs::SweepObs;
use crate::sink::OutcomeSink;
use crate::spec::ScenarioSpec;
use crate::store::MemoStore;

/// Sets a cancel flag.
fn flag_set(flag: &AtomicBool) {
    // relaxed-ok: a monotonic one-way signal polled by workers; no data is
    // transferred through it (workers only stop claiming new scenarios).
    flag.store(true, Ordering::Relaxed);
}

/// Reads a cancel flag.
fn flag_get(flag: &AtomicBool) -> bool {
    // relaxed-ok: same verdict as `flag_set` — a delayed read only delays
    // the (cooperative, already asynchronous) stop by one scenario.
    flag.load(Ordering::Relaxed)
}

/// Publishes a progress counter.
fn counter_set(counter: &AtomicUsize, value: usize) {
    // relaxed-ok: monotonic progress telemetry — snapshots are advisory and
    // no cross-thread handoff reads data "released" by this store.
    counter.store(value, Ordering::Relaxed);
}

/// Snapshots a progress counter.
fn counter_get(counter: &AtomicUsize) -> usize {
    // relaxed-ok: advisory snapshot; same verdict as `counter_set`.
    counter.load(Ordering::Relaxed)
}

/// Shared state behind every clone of one [`SweepHandle`].
#[derive(Debug, Default)]
struct HandleState {
    cancelled: AtomicBool,
    done: AtomicUsize,
    total: AtomicUsize,
}

/// A cloneable remote control for one running sweep: cooperative
/// cancellation plus a lock-free progress snapshot. Obtained from
/// [`SweepSession::handle`] (or constructed standalone and attached via
/// [`Executor::with_handle`]). One handle should observe one run.
#[derive(Debug, Clone, Default)]
pub struct SweepHandle {
    inner: Arc<HandleState>,
}

/// A progress snapshot: outcomes delivered to the sink so far, out of the
/// run's total scenario count. `total` is `0` until the run has expanded
/// its grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Progress {
    /// Outcomes the sink has received, in grid order.
    pub done: usize,
    /// Scenarios the run will evaluate (the clamped range length).
    pub total: usize,
}

impl SweepHandle {
    /// Creates a fresh handle (not yet observing any run).
    #[must_use]
    pub fn new() -> Self {
        SweepHandle::default()
    }

    /// Requests cancellation. Idempotent; takes effect after in-flight
    /// scenario evaluations (typically milliseconds). The run's sink is
    /// still finished cleanly and its summary reports
    /// [`StreamSummary::cancelled`].
    pub fn cancel(&self) {
        flag_set(&self.inner.cancelled);
    }

    /// Whether [`SweepHandle::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        flag_get(&self.inner.cancelled)
    }

    /// A lock-free snapshot of the observed run's progress.
    #[must_use]
    pub fn progress(&self) -> Progress {
        Progress {
            done: counter_get(&self.inner.done),
            total: counter_get(&self.inner.total),
        }
    }

    /// Arms the handle at run start: publishes the total and resets `done`.
    pub(crate) fn arm(&self, total: usize) {
        counter_set(&self.inner.total, total);
        counter_set(&self.inner.done, 0);
    }

    /// Publishes the count of outcomes delivered to the sink.
    pub(crate) fn set_done(&self, done: usize) {
        counter_set(&self.inner.done, done);
    }
}

/// A configured, ready-to-run sweep: the builder over
/// [`ScenarioSpec`] → threads / kernel mode / observability / persistent
/// store / range → [`SweepSession::run`].
///
/// Defaults: auto thread count, batched kernels, observability off, no
/// persistent store, the full grid range.
#[derive(Debug, Clone)]
pub struct SweepSession {
    pub(crate) spec: ScenarioSpec,
    pub(crate) threads: usize,
    pub(crate) batch: BatchMode,
    pub(crate) obs: SweepObs,
    pub(crate) store: Option<Arc<MemoStore>>,
    pub(crate) range: Option<Range<usize>>,
    pub(crate) handle: SweepHandle,
}

impl SweepSession {
    /// A session over `spec` with default configuration.
    #[must_use]
    pub fn new(spec: ScenarioSpec) -> Self {
        SweepSession {
            spec,
            threads: 0,
            batch: BatchMode::Batch,
            obs: SweepObs::disabled(),
            store: None,
            range: None,
            handle: SweepHandle::new(),
        }
    }

    /// Worker-thread count (`0` = machine parallelism, the default; `1` =
    /// the serial reference path). Outputs are byte-identical regardless.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Analysis-kernel mode: [`BatchMode::Batch`] (default) or the scalar
    /// reference. Outputs are byte-identical either way.
    #[must_use]
    pub fn batch_mode(mut self, batch: BatchMode) -> Self {
        self.batch = batch;
        self
    }

    /// Attaches an observability bundle (metrics/tracing). Instrumentation
    /// never changes output bytes.
    #[must_use]
    pub fn observability(mut self, obs: SweepObs) -> Self {
        self.obs = obs;
        self
    }

    /// Backs the run with a persistent [`MemoStore`] shared across runs and
    /// processes. Statistics and output bytes are unaffected; repeat work is
    /// answered from disk (see [`crate::memo::MemoCache::backed_by`]).
    #[must_use]
    pub fn memo_store(mut self, store: Arc<MemoStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Restricts the run to the grid indices in `range` (clamped to the
    /// grid). Concatenating the streams of consecutive ranges is
    /// byte-identical to one full run — the sharding/resume seam.
    #[must_use]
    pub fn range(mut self, range: Range<usize>) -> Self {
        self.range = Some(range);
        self
    }

    /// The session's cancellation/progress handle. May be cloned and shipped
    /// to other threads before [`SweepSession::run`] is called.
    #[must_use]
    pub fn handle(&self) -> SweepHandle {
        self.handle.clone()
    }

    /// The spec this session will run.
    #[must_use]
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Size of the fully expanded (and sampled) scenario grid, before any
    /// [`SweepSession::range`] restriction.
    #[must_use]
    pub fn grid_len(&self) -> usize {
        ScenarioGrid::expand(&self.spec).len()
    }

    /// Runs the sweep, streaming outcomes into `sink` in grid order.
    /// Consumes the session; the [`SweepHandle`] from
    /// [`SweepSession::handle`] stays valid for progress reads afterwards.
    ///
    /// # Errors
    ///
    /// Propagates the first sink I/O error (the sweep aborts early).
    pub fn run(self, sink: &mut dyn OutcomeSink) -> std::io::Result<StreamSummary> {
        let mut executor = Executor::with_threads(self.threads)
            .with_batch_mode(self.batch)
            .with_observability(self.obs)
            .with_handle(self.handle);
        if let Some(store) = self.store {
            executor = executor.with_store(store);
        }
        match self.range {
            Some(range) => executor.run_streaming_range(&self.spec, range, sink),
            None => executor.run_streaming(&self.spec, sink),
        }
    }

    /// Runs the sweep, buffering every outcome in grid order (a
    /// [`crate::VecSink`] under the hood). Memory scales with the grid;
    /// prefer [`SweepSession::run`] for large sweeps.
    #[must_use]
    pub fn run_buffered(self) -> SweepResult {
        let mut sink = crate::sink::VecSink::new();
        let summary = self
            .run(&mut sink)
            .expect("a VecSink never raises I/O errors");
        SweepResult {
            name: summary.name,
            outcomes: sink.into_outcomes(),
            memo: summary.memo,
            elapsed: summary.elapsed,
            threads: summary.threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;
    use crate::spec::UtilizationGrid;

    fn tiny_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::synthetic("api-test");
        spec.cores = vec![2];
        spec.utilizations = UtilizationGrid::Fractions(vec![0.3, 0.7]);
        spec.trials = 2;
        spec
    }

    #[test]
    fn session_matches_the_executor_byte_for_byte() {
        let spec = tiny_spec();
        let expected = Executor::serial().run(&spec);
        let mut sink = VecSink::new();
        let summary = SweepSession::new(spec)
            .threads(1)
            .run(&mut sink)
            .expect("VecSink is infallible");
        assert!(!summary.cancelled);
        assert_eq!(summary.evaluated(), expected.outcomes.len());
        assert_eq!(sink.outcomes(), &expected.outcomes[..]);
    }

    #[test]
    fn handle_reports_progress_and_total() {
        let spec = tiny_spec();
        let session = SweepSession::new(spec).threads(2);
        let handle = session.handle();
        assert_eq!(handle.progress(), Progress::default());
        let grid = session.grid_len();
        let mut sink = VecSink::new();
        let summary = session.run(&mut sink).expect("VecSink is infallible");
        assert_eq!(
            handle.progress(),
            Progress {
                done: summary.evaluated(),
                total: grid,
            }
        );
    }

    #[test]
    fn pre_cancelled_session_delivers_nothing_and_reports_it() {
        for threads in [1, 2] {
            let session = SweepSession::new(tiny_spec()).threads(threads);
            let handle = session.handle();
            handle.cancel();
            let mut sink = VecSink::new();
            let summary = session.run(&mut sink).expect("VecSink is infallible");
            assert!(summary.cancelled);
            assert_eq!(summary.evaluated(), 0);
            assert!(sink.outcomes().is_empty());
            assert_eq!(handle.progress().done, 0);
        }
    }

    #[test]
    fn ranged_session_matches_the_full_run_slice() {
        let spec = tiny_spec();
        let full = Executor::serial().run(&spec);
        let mut sink = VecSink::new();
        let summary = SweepSession::new(spec)
            .threads(1)
            .range(2..5)
            .run(&mut sink)
            .expect("VecSink is infallible");
        assert_eq!(summary.range, 2..5);
        assert_eq!(sink.outcomes(), &full.outcomes[2..5]);
    }

    #[test]
    fn buffered_session_matches_the_buffered_executor() {
        let spec = tiny_spec();
        let via_executor = Executor::serial().run(&spec);
        let via_session = SweepSession::new(spec).threads(1).run_buffered();
        assert_eq!(via_session.outcomes, via_executor.outcomes);
        assert_eq!(via_session.memo, via_executor.memo);
    }
}
