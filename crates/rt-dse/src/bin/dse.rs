//! `dse` — run design-space sweeps from the command line.
//!
//! ```text
//! dse sweep --cores 2,4,8 --util-steps 13 --allocators hydra,singlecore,optimal \
//!           --trials 5 --seed 2018 --threads 0 --out results/dse
//! dse sweep --workload uav --eval detection --horizon 120 --attacks 200
//! dse list-allocators
//! ```
//!
//! `sweep` expands the requested grid, evaluates it on the parallel
//! executor, prints the aggregate summary, and writes deterministic
//! JSONL / CSV / summary files under `--out`.

use std::process::ExitCode;

use rt_dse::prelude::*;

const USAGE: &str = "\
dse — design-space exploration for security-task allocation

USAGE:
    dse sweep [OPTIONS]      run a sweep
    dse list-allocators      print the available allocation schemes
    dse help                 show this message

SWEEP OPTIONS:
    --cores A,B,...       core counts to explore            [default: 2,4,8]
    --util-steps N        N-point utilization grid per M    [default: 13]
    --utils F1,F2,...     explicit per-core utilization fractions (overrides --util-steps)
    --allocators L1,L2    schemes: hydra, singlecore, nphydra, precedence, optimal
                          (optimal is exhaustive — pair it with --cores 2 and a
                          small --sec-tasks range, e.g. 2,6, as the paper does)
                                                            [default: hydra,singlecore,nphydra]
    --trials N            task sets per grid point          [default: 5]
    --seed S              base seed                         [default: 2018]
    --threads N           worker threads (0 = all cores)    [default: 0]
    --serial              force single-threaded execution
    --sample N            sample at most N points from the full grid
    --sec-tasks LO,HI     override the security task-count range
    --workload KIND       synthetic | uav                   [default: synthetic]
    --eval KIND           allocate | detection              [default: allocate]
    --horizon SECS        detection: simulated window       [default: 120]
    --attacks N           detection: injected attacks       [default: 100]
    --name NAME           output file stem                  [default: sweep]
    --out DIR             output directory                  [default: results/dse]
    --quiet               suppress the per-group summary table
";

struct Args(Vec<String>);

impl Args {
    fn value_of(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn flag(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.value_of(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for {key}: {raw}")),
        }
    }

    fn parsed_list<T: std::str::FromStr>(&self, key: &str) -> Result<Option<Vec<T>>, String> {
        match self.value_of(key) {
            None => Ok(None),
            Some(raw) => raw
                .split(',')
                .map(|p| p.trim().parse().map_err(|_| format!("invalid {key}: {p}")))
                .collect::<Result<Vec<T>, String>>()
                .map(Some),
        }
    }
}

fn build_spec(args: &Args) -> Result<ScenarioSpec, String> {
    let workload = match args.value_of("--workload").unwrap_or("synthetic") {
        "synthetic" => {
            let mut overrides = SyntheticOverrides::default();
            if let Some(range) = args.parsed_list::<usize>("--sec-tasks")? {
                let [lo, hi] = range[..] else {
                    return Err("--sec-tasks expects LO,HI".to_owned());
                };
                if lo == 0 || lo > hi {
                    return Err(format!("--sec-tasks range [{lo}, {hi}] is empty or zero"));
                }
                overrides.security_tasks = Some((lo, hi));
            }
            Workload::Synthetic(overrides)
        }
        "uav" => Workload::CaseStudyUav,
        other => return Err(format!("unknown workload: {other}")),
    };

    let evaluation = match args.value_of("--eval").unwrap_or("allocate") {
        "allocate" => Evaluation::Allocate,
        "detection" => Evaluation::Detection {
            horizon: rt_dse::Time::from_secs(args.parsed("--horizon")?.unwrap_or(120)),
            attacks: args.parsed("--attacks")?.unwrap_or(100),
        },
        other => return Err(format!("unknown evaluation: {other}")),
    };

    let utilizations = if matches!(workload, Workload::CaseStudyUav) {
        UtilizationGrid::NotApplicable
    } else if let Some(fractions) = args.parsed_list::<f64>("--utils")? {
        if fractions.iter().any(|f| !(*f > 0.0 && *f <= 1.0)) {
            return Err("--utils fractions must lie in (0, 1]".to_owned());
        }
        UtilizationGrid::Fractions(fractions)
    } else {
        UtilizationGrid::NormalizedSteps(args.parsed("--util-steps")?.unwrap_or(13))
    };

    let allocators = match args.value_of("--allocators") {
        None => vec![
            AllocatorKind::Hydra,
            AllocatorKind::SingleCore,
            AllocatorKind::NpHydra,
        ],
        Some(raw) => raw
            .split(',')
            .map(|label| {
                AllocatorKind::parse(label).ok_or_else(|| format!("unknown allocator: {label}"))
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    if allocators.is_empty() {
        return Err("at least one allocator is required".to_owned());
    }

    let expansion = match args.parsed("--sample")? {
        Some(n) => Expansion::Sampled(n),
        None => Expansion::Cartesian,
    };

    let cores: Vec<usize> = args
        .parsed_list("--cores")?
        .unwrap_or_else(|| vec![2, 4, 8]);
    if cores.is_empty() || cores.contains(&0) {
        return Err("--cores requires one or more core counts >= 1".to_owned());
    }

    Ok(ScenarioSpec {
        name: args.value_of("--name").unwrap_or("sweep").to_owned(),
        workload,
        evaluation,
        cores,
        utilizations,
        allocators,
        trials: args.parsed("--trials")?.unwrap_or(5),
        base_seed: args.parsed("--seed")?.unwrap_or(2018),
        expansion,
    })
}

fn print_summary(rows: &[rt_dse::AggregateRow]) {
    println!(
        "{:>5}  {:>10}  {:>8}  {:>9}  {:>9}  {:>10}  {:>9}  {:>9}  {:>9}",
        "cores",
        "allocator",
        "util",
        "feasible",
        "scheduled",
        "acceptance",
        "mean_eta",
        "p50_eta",
        "p99_eta"
    );
    for row in rows {
        println!(
            "{:>5}  {:>10}  {:>8}  {:>9}  {:>9}  {:>10.3}  {:>9.3}  {:>9.3}  {:>9.3}",
            row.cores,
            row.allocator.label(),
            row.utilization
                .map_or_else(|| "-".to_owned(), |u| format!("{u:.3}")),
            row.feasible,
            row.scheduled,
            row.acceptance_ratio,
            row.mean_tightness,
            row.p50_tightness,
            row.p99_tightness,
        );
    }
}

fn run_sweep(args: &Args) -> Result<(), String> {
    let spec = build_spec(args)?;
    let executor = if args.flag("--serial") {
        Executor::serial()
    } else {
        Executor::with_threads(args.parsed("--threads")?.unwrap_or(0))
    };

    // The executor expands the grid itself; the evaluated count is reported
    // afterwards rather than paying a second expansion just to preview it.
    eprintln!(
        "sweeping \"{}\": {} cores × {} allocators, {} trials/point",
        spec.name,
        spec.cores.len(),
        spec.allocators.len(),
        spec.trials
    );

    let result = executor.run(&spec);
    let rows = aggregate(&result.outcomes);
    if !args.flag("--quiet") {
        print_summary(&rows);
    }

    let out_dir = args.value_of("--out").unwrap_or("results/dse");
    let files = write_outputs(out_dir, &spec.name, &result.outcomes, &rows)
        .map_err(|e| format!("could not write outputs to {out_dir}: {e}"))?;

    eprintln!(
        "evaluated {} scenarios on {} threads in {:.2?} ({:.0} scenarios/s)",
        result.outcomes.len(),
        result.threads,
        result.elapsed,
        result.scenarios_per_sec()
    );
    let memo = result.memo;
    eprintln!(
        "memo: {} problems generated, {} reused; {} feasibility checks, {} reused",
        memo.problem_misses, memo.problem_hits, memo.feasibility_misses, memo.feasibility_hits
    );
    eprintln!(
        "wrote {}, {}, {}",
        files.jsonl.display(),
        files.csv.display(),
        files.summary.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = argv.first().map(String::as_str).unwrap_or("help");
    let args = Args(argv.get(1..).unwrap_or_default().to_vec());

    let result = match command {
        "sweep" => run_sweep(&args),
        "list-allocators" => {
            for kind in AllocatorKind::ALL {
                println!("{}", kind.label());
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}\n\n{USAGE}")),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
