//! `dse` — run design-space sweeps from the command line.
//!
//! ```text
//! dse sweep --cores 2,4,8 --util-steps 13 --allocators hydra,singlecore,optimal \
//!           --trials 5 --seed 2018 --threads 0 --out results/dse
//! dse sweep --workload uav --eval detection --horizon 120 --attacks 200
//! dse sweep --trials 500 --shard 1/4 --out results/dse     # one of four shards
//! dse sweep --trials 500 --resume --out results/dse        # continue a killed run
//! dse sweep --period-policy fixed,adapt,joint --allocators hydra
//! dse list-axes
//! ```
//!
//! `sweep` expands the requested grid, evaluates it on the parallel
//! executor, and **streams** each scenario record to deterministic JSONL /
//! CSV files under `--out` the moment it is ready — peak memory is bounded
//! by the worker count and the reorder window, not the grid size. The
//! aggregate summary is folded online and printed at the end. `--shard i/n`
//! evaluates one contiguous slice of the grid (concatenating all shard
//! files reproduces the single-run output byte for byte), and a periodic
//! checkpoint makes a killed run continuable with `--resume`.

use std::fs;
use std::io::{BufWriter, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rt_dse::obs::PHASE_CHECKPOINT;
use rt_dse::prelude::*;
use rt_dse::sink::{frontier_row_to_csv, summary_to_csv, FRONTIER_HEADER};
use rt_dse::{phase_table, sweep_fingerprint, Checkpoint, MemoStats, SweepObs, ENGINE_TRACK};
use rt_obs::{peak_rss_bytes, Counter, Heartbeat, WorkerTracer};

const USAGE: &str = "\
dse — design-space exploration for security-task allocation

USAGE:
    dse sweep [OPTIONS]      run a sweep
    dse list-axes            print the valid values of every enumerable axis
                             (allocators and period policies, one `<axis>
                             <value>` pair per line; `list-allocators` is an
                             alias kept for existing scripts)
    dse help                 show this message

SWEEP OPTIONS:
    --cores A,B,...       core counts to explore            [default: 2,4,8]
    --util-steps N        N-point utilization grid per M    [default: 13]
    --utils F1,F2,...     explicit per-core utilization fractions (overrides --util-steps)
    --allocators L1,L2    schemes: hydra, singlecore, nphydra, precedence, optimal
                          (optimal is exhaustive — pair it with --cores 2 and a
                          small --sec-tasks range, e.g. 2,6, as the paper does)
                                                            [default: hydra,singlecore,nphydra]
    --period-policy P1,P2 post-allocation period policies: fixed (keep the
                          allocator's periods), adapt (greedy per-core
                          re-adaptation), joint (coordinate-ascent joint
                          optimisation); policy variants share the seed
                          address, so comparisons are paired. adapt/joint
                          re-check the base preemptive model only (nphydra
                          blocking is not re-validated; precedence keeps its
                          granted periods under every policy)
                                                            [default: fixed]
    --explore MODE        exhaustive (evaluate the full grid) or frontier
                          (adaptive utilization-cliff search: deterministic
                          bisection per (cores, allocator, policy) slice,
                          then a refinement budget around each bracket;
                          emits the same record formats over far fewer
                          scenarios and writes a {name}_frontier.csv
                          Pareto-front artifact). Frontier output is
                          byte-identical across thread counts, shards and
                          resume, exactly like exhaustive sweeps
                                                            [default: exhaustive]
    --refine-budget N     frontier only: extra utilization points emitted
                          around each slice's cliff bracket (half walk
                          outward from the bracket, half low-discrepancy
                          over the grid)                    [default: 8]
    --trials N            task sets per grid point          [default: 5]
    --seed S              base seed                         [default: 2018]
    --threads N           worker threads (0 = all cores)    [default: 0]
    --serial              force single-threaded execution
    --no-batch            evaluate with the scalar analysis kernels instead
                          of the 8-lane batch kernels (outputs are
                          byte-identical either way; this flag exists for
                          differential testing and performance comparison)
    --sample N            sample at most N points from the full grid
    --sec-tasks LO,HI     override the security task-count range
    --workload KIND       synthetic | uav                   [default: synthetic]
    --eval KIND           allocate | detection              [default: allocate]
    --horizon SECS        detection: simulated window       [default: 120]
    --attacks N           detection: injected attacks       [default: 100]
    --name NAME           output file stem                  [default: sweep]
    --out DIR             output directory                  [default: results/dse]
    --quiet               suppress the per-group summary table

OBSERVABILITY OPTIONS (all default-off; JSONL/CSV/summary bytes are
identical with or without them):
    --progress[=SECS]     live heartbeat on stderr every SECS seconds
                          (default 2): scenarios done/total, scenarios/s,
                          ETA, memo hit-rates, reorder-buffer depth,
                          backpressure wait, peak RSS
    --metrics-out FILE    write the final metrics snapshot (counters,
                          gauges, histograms, per-phase times; schema
                          `rt-obs/v1`) as JSON
    --trace-out FILE      write per-scenario phase spans as Chrome
                          trace-event JSON — load in Perfetto or
                          chrome://tracing
    A machine-readable run report ({name}_run.json: throughput, memo
    hit-rates, peak RSS) is always written next to the other outputs.

SCALE-OUT OPTIONS:
    --store DIR           back the memo cache with the persistent
                          content-addressed store under DIR (created on first
                          use; shared with dse-serve). Repeat sweeps answer
                          task-set generation, feasibility, partitioning and
                          allocation work from disk; output bytes are
                          identical with or without it
    --shard I/N           evaluate the I-th of N contiguous grid shards; files
                          are named {name}_shardIofN.* and only shard 1 writes
                          the CSV header, so concatenating every shard's file
                          in order is byte-identical to an unsharded run
    --resume              continue from the checkpoint under --out (a fresh
                          start when none exists); rejects a checkpoint whose
                          spec or shard parameters differ
    --checkpoint-every N  scenarios between checkpoint saves, 0 = disable
                                                            [default: 256]
    --stop-after K        checkpoint and exit after evaluating K scenarios
                          (for time-budgeted runs and resume testing)
";

struct Args(Vec<String>);

impl Args {
    fn value_of(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn flag(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.value_of(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for {key}: {raw}")),
        }
    }

    fn parsed_list<T: std::str::FromStr>(&self, key: &str) -> Result<Option<Vec<T>>, String> {
        match self.value_of(key) {
            None => Ok(None),
            Some(raw) => raw
                .split(',')
                .map(|p| p.trim().parse().map_err(|_| format!("invalid {key}: {p}")))
                .collect::<Result<Vec<T>, String>>()
                .map(Some),
        }
    }

    /// `--progress` / `--progress=SECS` — the heartbeat interval, if any.
    fn progress(&self) -> Result<Option<Duration>, String> {
        for arg in &self.0 {
            if arg == "--progress" {
                return Ok(Some(Duration::from_secs(2)));
            }
            if let Some(raw) = arg.strip_prefix("--progress=") {
                let secs: f64 = raw
                    .parse()
                    .map_err(|_| format!("invalid value for --progress: {raw}"))?;
                if secs <= 0.0 || !secs.is_finite() {
                    return Err(format!("--progress interval must be positive, got {raw}"));
                }
                return Ok(Some(Duration::from_secs_f64(secs)));
            }
        }
        Ok(None)
    }

    fn shard(&self) -> Result<(usize, usize), String> {
        let Some(raw) = self.value_of("--shard") else {
            return Ok((1, 1));
        };
        let parse = |what: &str, v: &str| {
            v.parse::<usize>()
                .map_err(|_| format!("invalid shard {what} in --shard {raw}"))
        };
        let (index, count) = raw
            .split_once('/')
            .ok_or_else(|| format!("--shard expects I/N, got {raw}"))?;
        let (index, count) = (parse("index", index)?, parse("count", count)?);
        if count == 0 || index == 0 || index > count {
            return Err(format!("--shard requires 1 <= I <= N, got {raw}"));
        }
        Ok((index, count))
    }
}

fn build_spec(args: &Args) -> Result<ScenarioSpec, String> {
    let workload = match args.value_of("--workload").unwrap_or("synthetic") {
        "synthetic" => {
            let mut overrides = SyntheticOverrides::default();
            if let Some(range) = args.parsed_list::<usize>("--sec-tasks")? {
                let [lo, hi] = range[..] else {
                    return Err("--sec-tasks expects LO,HI".to_owned());
                };
                if lo == 0 || lo > hi {
                    return Err(format!("--sec-tasks range [{lo}, {hi}] is empty or zero"));
                }
                overrides.security_tasks = Some((lo, hi));
            }
            Workload::Synthetic(overrides)
        }
        "uav" => Workload::CaseStudyUav,
        other => return Err(format!("unknown workload: {other}")),
    };

    let evaluation = match args.value_of("--eval").unwrap_or("allocate") {
        "allocate" => Evaluation::Allocate,
        "detection" => Evaluation::Detection {
            horizon: rt_dse::Time::from_secs(args.parsed("--horizon")?.unwrap_or(120)),
            attacks: args.parsed("--attacks")?.unwrap_or(100),
        },
        other => return Err(format!("unknown evaluation: {other}")),
    };

    let utilizations = if matches!(workload, Workload::CaseStudyUav) {
        UtilizationGrid::NotApplicable
    } else if let Some(fractions) = args.parsed_list::<f64>("--utils")? {
        if fractions.iter().any(|f| !(*f > 0.0 && *f <= 1.0)) {
            return Err("--utils fractions must lie in (0, 1]".to_owned());
        }
        UtilizationGrid::Fractions(fractions)
    } else {
        UtilizationGrid::NormalizedSteps(args.parsed("--util-steps")?.unwrap_or(13))
    };

    let allocators = match args.value_of("--allocators") {
        None => vec![
            AllocatorKind::Hydra,
            AllocatorKind::SingleCore,
            AllocatorKind::NpHydra,
        ],
        Some(raw) => raw
            .split(',')
            .map(|label| {
                AllocatorKind::parse(label).ok_or_else(|| format!("unknown allocator: {label}"))
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    if allocators.is_empty() {
        return Err("at least one allocator is required".to_owned());
    }

    let period_policies = match args.value_of("--period-policy") {
        None => vec![PeriodPolicy::Fixed],
        Some(raw) => raw
            .split(',')
            .map(|label| {
                PeriodPolicy::parse(label).ok_or_else(|| format!("unknown period policy: {label}"))
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    if period_policies.is_empty() {
        return Err("at least one period policy is required".to_owned());
    }

    let expansion = match args.parsed("--sample")? {
        Some(n) => Expansion::Sampled(n),
        None => Expansion::Cartesian,
    };

    let cores: Vec<usize> = args
        .parsed_list("--cores")?
        .unwrap_or_else(|| vec![2, 4, 8]);
    if cores.is_empty() || cores.contains(&0) {
        return Err("--cores requires one or more core counts >= 1".to_owned());
    }

    let explore = match args.value_of("--explore").unwrap_or("exhaustive") {
        "exhaustive" => {
            if args.value_of("--refine-budget").is_some() {
                return Err("--refine-budget requires --explore frontier".to_owned());
            }
            ExploreMode::Exhaustive
        }
        "frontier" => ExploreMode::Frontier(FrontierConfig {
            refine_budget: args.parsed("--refine-budget")?.unwrap_or(8),
        }),
        other => return Err(format!("unknown explore mode: {other}")),
    };

    Ok(ScenarioSpec {
        name: args.value_of("--name").unwrap_or("sweep").to_owned(),
        workload,
        evaluation,
        cores,
        utilizations,
        allocators,
        period_policies,
        trials: args.parsed("--trials")?.unwrap_or(5),
        base_seed: args.parsed("--seed")?.unwrap_or(2018),
        expansion,
        explore,
    })
}

fn print_summary(rows: &[rt_dse::AggregateRow]) {
    println!(
        "{:>5}  {:>10}  {:>6}  {:>8}  {:>9}  {:>9}  {:>10}  {:>9}  {:>9}  {:>9}  {:>9}",
        "cores",
        "allocator",
        "policy",
        "util",
        "feasible",
        "scheduled",
        "acceptance",
        "mean_eta",
        "p50_eta",
        "p99_eta",
        "mean_freq"
    );
    for row in rows {
        println!(
            "{:>5}  {:>10}  {:>6}  {:>8}  {:>9}  {:>9}  {:>10.3}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}",
            row.cores,
            row.allocator.label(),
            row.policy.label(),
            row.utilization
                .map_or_else(|| "-".to_owned(), |u| format!("{u:.3}")),
            row.feasible,
            row.scheduled,
            row.acceptance_ratio,
            row.mean_tightness,
            row.p50_tightness,
            row.p99_tightness,
            row.mean_freq_ratio,
        );
    }
}

/// The CLI's streaming sink: tees each outcome to the JSONL and CSV files,
/// folds it into the running aggregate, and periodically persists an atomic
/// checkpoint so a killed run resumes where its output files actually end.
struct CheckpointingSink {
    jsonl: JsonlSink<BufWriter<fs::File>>,
    csv: CsvSink<BufWriter<fs::File>>,
    /// File bytes already present before this process appended anything.
    jsonl_base: u64,
    csv_base: u64,
    /// Aggregate over everything durably written (restored prefix included).
    agg: SweepAccumulator,
    /// Absolute grid index where this shard begins (the aggregate's origin).
    origin: usize,
    /// Absolute grid index of the next scenario to stream.
    completed: usize,
    since_save: usize,
    every: usize,
    /// Planned emission length recorded in every checkpoint (0 for
    /// exhaustive sweeps); resume refuses a checkpoint that disagrees.
    plan_points: usize,
    /// Checkpoints are only taken at multiples of this many records past
    /// the origin — frontier runs align saves to trial-group boundaries so
    /// a resumed run restarts at a whole utilization point.
    align: usize,
    fingerprint: u64,
    path: PathBuf,
    /// Engine-track phase recorder for checkpoint writes (inert when
    /// tracing is off).
    checkpoint_tracer: WorkerTracer,
    /// `checkpoint.writes` (inert when metrics are off).
    checkpoint_writes: Counter,
}

impl CheckpointingSink {
    fn save_checkpoint(&mut self) -> std::io::Result<()> {
        let _span = self.checkpoint_tracer.span(PHASE_CHECKPOINT);
        // The checkpoint claims its byte offsets are *durable*: flush the
        // buffers and fsync the data before the (also fsynced) checkpoint
        // rename, so a power loss can never leave the checkpoint ahead of
        // the output files it describes.
        self.jsonl.get_mut().flush()?;
        self.jsonl.get_mut().get_ref().sync_data()?;
        self.csv.get_mut().flush()?;
        self.csv.get_mut().get_ref().sync_data()?;
        Checkpoint {
            fingerprint: self.fingerprint,
            start: self.origin,
            completed: self.completed,
            plan_points: self.plan_points,
            jsonl_bytes: self.jsonl_base + self.jsonl.bytes_written(),
            csv_bytes: self.csv_base + self.csv.bytes_written(),
            agg: self.agg.clone(),
        }
        .save(&self.path)?;
        self.since_save = 0;
        self.checkpoint_writes.inc();
        Ok(())
    }
}

impl OutcomeSink for CheckpointingSink {
    fn record(&mut self, outcome: &ScenarioOutcome) -> std::io::Result<()> {
        self.jsonl.record(outcome)?;
        self.csv.record(outcome)?;
        self.agg.record(outcome);
        self.completed += 1;
        self.since_save += 1;
        // Each save re-renders the whole accumulated aggregate (it grows
        // with progress) and fsyncs, inside the executor's drain — so the
        // interval stretches with coverage (≥ 1/8 of the records covered so
        // far) to keep total checkpoint I/O linear in the sweep instead of
        // quadratic, while small sweeps still save every `every` records.
        let threshold = self.every.max((self.completed - self.origin) / 8);
        if self.every > 0
            && self.since_save >= threshold
            && (self.completed - self.origin).is_multiple_of(self.align)
        {
            self.save_checkpoint()?;
        }
        Ok(())
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.jsonl.finish()?;
        self.csv.finish()
    }
}

/// Opens an output file for appending at exactly `keep` bytes: anything a
/// crashed run wrote past the last checkpoint (e.g. a torn JSONL line) is
/// truncated away so the resumed stream continues byte-exactly.
fn open_resumable(path: &Path, keep: u64) -> Result<fs::File, String> {
    let mut file = fs::OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let len = file
        .metadata()
        .map_err(|e| format!("cannot stat {}: {e}", path.display()))?
        .len();
    if len < keep {
        return Err(format!(
            "{} is {len} bytes but the checkpoint covers {keep}; the output was \
             modified since the checkpoint — delete the checkpoint to start over",
            path.display()
        ));
    }
    if len > keep {
        // A torn tail is expected after a crash, but it should never vanish
        // silently — say how much of the file the resume is discarding.
        eprintln!(
            "resume: dropping {} uncheckpointed byte(s) past offset {keep} of {}",
            len - keep,
            path.display()
        );
    }
    file.set_len(keep)
        .map_err(|e| format!("cannot truncate {}: {e}", path.display()))?;
    file.seek(SeekFrom::End(0))
        .map_err(|e| format!("cannot seek {}: {e}", path.display()))?;
    Ok(file)
}

/// Formats a hit/miss pair as a percentage for the heartbeat line
/// (`-` before any traffic).
fn hit_pct(hits: u64, misses: u64) -> String {
    let total = hits + misses;
    if total == 0 {
        "-".to_owned()
    } else {
        format!("{:.0}%", 100.0 * hits as f64 / total as f64)
    }
}

/// One `--progress` heartbeat line, rendered from a registry snapshot.
fn progress_line(snap: &rt_obs::Snapshot, total: usize, elapsed: Duration) -> String {
    let done = snap.counter("sweep.scenarios_done");
    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
    let eta = if rate > 0.0 && done < total as u64 {
        format!("{:.0}s", (total as u64 - done) as f64 / rate)
    } else {
        "-".to_owned()
    };
    let pct = if total > 0 {
        100.0 * done as f64 / total as f64
    } else {
        100.0
    };
    let rss = peak_rss_bytes().map_or_else(
        || "-".to_owned(),
        |b| format!("{:.0} MiB", b as f64 / (1024.0 * 1024.0)),
    );
    format!
        ("[dse] {done}/{total} ({pct:.1}%) {rate:.0} scen/s eta {eta} | memo hit pb {} al {} fs {} | reorder {} | bp wait {:.1}ms | rss {rss}",
        hit_pct(snap.counter("memo.problem_hits"), snap.counter("memo.problem_misses")),
        hit_pct(snap.counter("memo.allocation_hits"), snap.counter("memo.allocation_misses")),
        hit_pct(snap.counter("memo.feasibility_hits"), snap.counter("memo.feasibility_misses")),
        snap.gauge("drain.reorder_depth"),
        snap.counter("sweep.backpressure_wait_ns") as f64 / 1_000_000.0,
    )
}

/// The machine-readable `{stem}_run.json` run report: throughput and memo
/// hit-rates persisted next to the sweep outputs (not just echoed on
/// stderr), independent of the observability flags.
fn run_report_json(
    evaluated: usize,
    threads: usize,
    elapsed: Duration,
    memo: &MemoStats,
    store_enabled: bool,
) -> String {
    fn entry(hits: u64, misses: u64) -> String {
        let total = hits + misses;
        let rate = if total == 0 {
            "null".to_owned()
        } else {
            format!("{:.6}", hits as f64 / total as f64)
        };
        format!("{{ \"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {rate} }}")
    }
    let secs = elapsed.as_secs_f64();
    let throughput = if secs > 0.0 {
        format!("{:.3}", evaluated as f64 / secs)
    } else {
        "null".to_owned()
    };
    let rss = peak_rss_bytes().map_or_else(|| "null".to_owned(), |b| b.to_string());
    // v2: the near-dead partition memo family was retired (its hit rate
    // measured ~0.1% on representative sweeps — partitioning is folded
    // into the allocation memo, which dedups whole repeated problems).
    format!(
        "{{\n  \"schema\": \"dse-run/v2\",\n  \"scenarios\": {evaluated},\n  \
         \"threads\": {threads},\n  \"elapsed_secs\": {secs:.6},\n  \
         \"scenarios_per_sec\": {throughput},\n  \"memo\": {{\n    \
         \"problem\": {},\n    \"feasibility\": {},\n    \
         \"allocation\": {}\n  }},\n  \"store\": {{ \"enabled\": {store_enabled}, \
         \"hits\": {}, \"misses\": {}, \"write_errors\": {} }},\n  \
         \"peak_rss_bytes\": {rss}\n}}\n",
        entry(memo.problem_hits, memo.problem_misses),
        entry(memo.feasibility_hits, memo.feasibility_misses),
        entry(memo.allocation_hits, memo.allocation_misses),
        memo.store_hits,
        memo.store_misses,
        memo.store_write_errors,
    )
}

fn run_sweep(args: &Args) -> Result<(), String> {
    let spec = build_spec(args)?;
    let progress = args.progress()?;
    let metrics_out = args.value_of("--metrics-out").map(PathBuf::from);
    let trace_out = args.value_of("--trace-out").map(PathBuf::from);
    let obs = SweepObs::new(
        progress.is_some() || metrics_out.is_some(),
        trace_out.is_some(),
    );
    let batch = if args.flag("--no-batch") {
        BatchMode::Scalar
    } else {
        BatchMode::Batch
    };
    let threads = if args.flag("--serial") {
        1
    } else {
        args.parsed("--threads")?.unwrap_or(0)
    };
    let store = match args.value_of("--store") {
        Some(dir) => Some(Arc::new(
            MemoStore::open(dir).map_err(|e| format!("cannot open memo store {dir}: {e}"))?,
        )),
        None => None,
    };
    let mut session = SweepSession::new(spec.clone())
        .threads(threads)
        .batch_mode(batch)
        .observability(obs.clone());
    if let Some(store) = &store {
        session = session.memo_store(Arc::clone(store));
    }
    let shard = args.shard()?;
    let resume = args.flag("--resume");
    let checkpoint_every: usize = args.parsed("--checkpoint-every")?.unwrap_or(256);
    let stop_after: Option<usize> = args.parsed("--stop-after")?;

    // Frontier mode plans before any output file opens: Phase A bisects
    // every (cores, allocator, policy) slice toward its acceptance cliff
    // (memo-warm probes, nothing emitted), and the resulting emission list
    // replaces the exhaustive grid as the unit of sharding, checkpointing
    // and resume. The plan is a pure function of the spec, so a resumed or
    // sharded run recomputes the identical list.
    let frontier: Option<(FrontierRunner, FrontierPlan)> = match spec.explore {
        ExploreMode::Exhaustive => None,
        ExploreMode::Frontier(config) => {
            eprintln!(
                "frontier: bisecting {} slice(s) for the acceptance cliff \
                 (refine budget {})",
                spec.cores.len() * spec.allocators.len() * spec.period_policies.len(),
                config.refine_budget
            );
            let runner = FrontierRunner::new(session.clone());
            let plan = runner.plan();
            eprintln!(
                "frontier: {} probe evaluation(s) kept {} of {} grid scenarios for emission",
                plan.probe_evals,
                plan.len(),
                session.grid_len()
            );
            Some((runner, plan))
        }
    };
    let (grid_len, plan_points) = match &frontier {
        Some((_, plan)) => (plan.len(), plan.len()),
        None => (session.grid_len(), 0),
    };
    let range = match &frontier {
        Some((_, plan)) => plan.shard_scenario_range(shard.0, shard.1),
        None => shard_range(grid_len, shard.0, shard.1),
    };
    let fingerprint = sweep_fingerprint(&spec, shard);

    let out_dir = PathBuf::from(args.value_of("--out").unwrap_or("results/dse"));
    fs::create_dir_all(&out_dir)
        .map_err(|e| format!("could not create {}: {e}", out_dir.display()))?;
    let stem = if shard.1 > 1 {
        format!("{}_shard{}of{}", spec.name, shard.0, shard.1)
    } else {
        spec.name.clone()
    };
    let jsonl_path = out_dir.join(format!("{stem}.jsonl"));
    let csv_path = out_dir.join(format!("{stem}.csv"));
    let summary_path = out_dir.join(format!("{stem}_summary.csv"));
    let ckpt_path = out_dir.join(format!("{stem}.ckpt"));

    // A checkpoint resumes only the sweep that wrote it.
    let restored = if resume {
        let found = Checkpoint::load(&ckpt_path)
            .map_err(|e| format!("cannot load {}: {e}", ckpt_path.display()))?;
        if let Some(ckpt) = &found {
            if ckpt.fingerprint != fingerprint {
                return Err(format!(
                    "{} belongs to a different sweep (spec or shard changed): \
                     expected fingerprint {fingerprint:016x}, found {:016x}; \
                     delete it or rerun without --resume",
                    ckpt_path.display(),
                    ckpt.fingerprint
                ));
            }
            if ckpt.start != range.start || ckpt.completed > range.end {
                return Err(format!(
                    "{} records progress {}..{} outside this shard's range {}..{}",
                    ckpt_path.display(),
                    ckpt.start,
                    ckpt.completed,
                    range.start,
                    range.end
                ));
            }
            if ckpt.plan_points != plan_points {
                return Err(format!(
                    "{} was written by a run planning {} emission point(s) but this \
                     run plans {}; the exploration plan changed — delete the \
                     checkpoint or rerun without --resume",
                    ckpt_path.display(),
                    ckpt.plan_points,
                    plan_points
                ));
            }
        }
        found
    } else {
        None
    };

    let start = restored.as_ref().map_or(range.start, |c| c.completed);
    let end = stop_after.map_or(range.end, |k| range.end.min(start.saturating_add(k)));
    let (jsonl_base, csv_base, agg) = match restored {
        Some(ckpt) => (ckpt.jsonl_bytes, ckpt.csv_bytes, ckpt.agg),
        None => (0, 0, SweepAccumulator::new()),
    };
    let jsonl_file = open_resumable(&jsonl_path, jsonl_base)?;
    let csv_file = open_resumable(&csv_path, csv_base)?;

    let mut sink = CheckpointingSink {
        jsonl: JsonlSink::new(BufWriter::new(jsonl_file)),
        // Only shard 1 writes the CSV header, and only while its file is
        // still empty — a resumed run whose checkpoint already covers the
        // header (e.g. one that stopped before its first record) must not
        // emit it twice, or concatenation stops being exact.
        csv: CsvSink::new(BufWriter::new(csv_file), shard.0 == 1 && csv_base == 0),
        jsonl_base,
        csv_base,
        agg,
        origin: range.start,
        completed: start,
        since_save: 0,
        every: checkpoint_every,
        plan_points,
        // Frontier emission is trial-major within each utilization point;
        // aligning saves to trial groups keeps every checkpoint at a whole
        // point (shard origins are always point-aligned).
        align: if frontier.is_some() {
            spec.trials.max(1)
        } else {
            1
        },
        fingerprint,
        path: ckpt_path.clone(),
        checkpoint_tracer: obs.tracer().worker(ENGINE_TRACK),
        checkpoint_writes: obs
            .registry()
            .shard(ENGINE_TRACK)
            .counter("checkpoint.writes"),
    };

    eprintln!(
        "sweeping \"{}\": {} of {} scenarios ({} indices {}..{}, shard {}/{}) on \
         {} cores × {} allocators × {} period policies, {} trials/point",
        spec.name,
        end - start,
        grid_len,
        if frontier.is_some() { "plan" } else { "grid" },
        start,
        end,
        shard.0,
        shard.1,
        spec.cores.len(),
        spec.allocators.len(),
        spec.period_policies.len(),
        spec.trials
    );

    let mut heartbeat = match progress {
        Some(interval) => {
            let registry = obs.registry().clone();
            let total = end - start;
            // CLI progress heartbeat: bin targets sit outside the D002
            // boundary; the timestamp feeds the stderr line only.
            #[allow(clippy::disallowed_methods)]
            let t0 = Instant::now();
            Heartbeat::start(interval, move || {
                eprintln!(
                    "{}",
                    progress_line(&registry.snapshot(), total, t0.elapsed())
                );
            })
        }
        None => Heartbeat::disabled(),
    };

    let summary = match &frontier {
        Some((runner, plan)) => runner.run(plan, start..end, &mut sink),
        None => session.range(start..end).run(&mut sink),
    }
    .map_err(|e| format!("sweep aborted: {e}"))?;
    heartbeat.stop();

    let throughput = summary
        .scenarios_per_sec()
        .map_or_else(|| "-".to_owned(), |r| format!("{r:.0}"));
    eprintln!(
        "evaluated {} scenarios on {} threads in {:.2?} ({} scenarios/s)",
        summary.evaluated(),
        summary.threads,
        summary.elapsed,
        throughput
    );
    let memo = summary.memo;
    eprintln!(
        "memo: {} problems generated, {} reused; {} allocations computed, {} reused; \
         {} feasibility checks, {} reused",
        memo.problem_misses,
        memo.problem_hits,
        memo.allocation_misses,
        memo.allocation_hits,
        memo.feasibility_misses,
        memo.feasibility_hits
    );
    if let Some(store) = &store {
        eprintln!(
            "store {}: {} disk hits, {} disk misses, {} write errors",
            store.root().display(),
            memo.store_hits,
            memo.store_misses,
            memo.store_write_errors
        );
    }

    // Persist the run report (throughput + memo hit-rates) even when the
    // run stops early — the stderr echo above is not the durable record.
    let run_report_path = out_dir.join(format!("{stem}_run.json"));
    fs::write(
        &run_report_path,
        run_report_json(
            summary.evaluated(),
            summary.threads,
            summary.elapsed,
            &memo,
            store.is_some(),
        ),
    )
    .map_err(|e| format!("could not write {}: {e}", run_report_path.display()))?;

    if obs.tracer().is_enabled() {
        let table = phase_table(&obs.phase_rows());
        if !table.is_empty() {
            eprint!("{table}");
        }
        let dropped = obs.tracer().dropped_events();
        if dropped > 0 {
            eprintln!("trace ring overflow: {dropped} events dropped (totals above remain exact)");
        }
    }
    if let Some(path) = &trace_out {
        fs::write(path, obs.tracer().chrome_trace_json())
            .map_err(|e| format!("could not write {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = &metrics_out {
        fs::write(path, obs.metrics_json())
            .map_err(|e| format!("could not write {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }

    if end < range.end {
        // Stopped early on purpose: leave a checkpoint behind instead of a
        // summary, and tell the operator how to continue.
        sink.save_checkpoint()
            .map_err(|e| format!("could not write {}: {e}", ckpt_path.display()))?;
        eprintln!(
            "stopped after {} scenarios ({} remain); continue with --resume",
            end - start,
            range.end - end
        );
        return Ok(());
    }

    let rows = sink.agg.rows();
    if !args.flag("--quiet") {
        print_summary(&rows);
    }
    fs::write(&summary_path, summary_to_csv(&rows))
        .map_err(|e| format!("could not write {}: {e}", summary_path.display()))?;
    // The frontier artifact: one row per emitted (slice, utilization)
    // point with the slice's cliff bracket and in-slice Pareto flags.
    // Shards follow the CSV convention — only shard 1 writes the header,
    // so concatenating the shard artifacts reproduces the full run's.
    if let Some((_, plan)) = &frontier {
        let frontier_path = out_dir.join(format!("{stem}_frontier.csv"));
        let mut text = String::new();
        if shard.0 == 1 {
            text.push_str(FRONTIER_HEADER);
            text.push('\n');
        }
        for row in &plan.rows(&sink.agg) {
            text.push_str(&frontier_row_to_csv(row));
            text.push('\n');
        }
        fs::write(&frontier_path, text)
            .map_err(|e| format!("could not write {}: {e}", frontier_path.display()))?;
        eprintln!("wrote {}", frontier_path.display());
    }
    // The shard is complete — the checkpoint has served its purpose.
    if ckpt_path.exists() {
        fs::remove_file(&ckpt_path)
            .map_err(|e| format!("could not remove {}: {e}", ckpt_path.display()))?;
    }
    eprintln!(
        "wrote {}, {}, {}",
        jsonl_path.display(),
        csv_path.display(),
        summary_path.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = argv.first().map(String::as_str).unwrap_or("help");
    let args = Args(argv.get(1..).unwrap_or_default().to_vec());

    let result = match command {
        "sweep" => run_sweep(&args),
        // `list-allocators` predates the period-policy axis; it is kept as
        // an alias so existing scripts keep discovering valid flag values.
        "list-axes" | "list-allocators" => {
            for kind in AllocatorKind::ALL {
                println!("allocator {}", kind.label());
            }
            for policy in PeriodPolicy::ALL {
                println!("period-policy {}", policy.label());
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}\n\n{USAGE}")),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
