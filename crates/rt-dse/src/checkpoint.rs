//! Durable sweep checkpoints: kill a long-running sweep at any point and
//! resume it without re-evaluating (or re-emitting) the finished prefix.
//!
//! A checkpoint records, for one output stem, how much of the grid has been
//! **durably written**: the absolute index of the next scenario to evaluate,
//! the byte lengths of the JSONL/CSV files at that point (a crash can leave
//! partial lines after the last checkpoint — resume truncates back to the
//! recorded offsets), and the partial [`SweepAccumulator`] over the finished
//! prefix so the final summary covers the whole range without re-reading
//! any output. A fingerprint of the spec + shard guards against resuming
//! with different parameters, which would silently corrupt the stream.
//!
//! Saves are atomic (write to `<path>.tmp`, then rename), so a kill during
//! checkpointing leaves the previous checkpoint intact. Everything is plain
//! deterministic text — no serde dependency, byte-stable across runs.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::agg::SweepAccumulator;
use crate::spec::ScenarioSpec;

// v2: the aggregate `group` lines gained a mandatory period-policy field
// when the sweep grid grew the policy axis. v3: the header gained a
// mandatory `plan_points` line (the frontier mode's planned emission count;
// 0 for exhaustive grids) and the `group` lines gained an explicit
// tightness-sample count plus frequency-ratio samples. Earlier checkpoints
// must be rejected outright — resuming one would splice an incompatible
// prefix into the stream.
const MAGIC: &str = "dse-checkpoint v3";

/// The durable progress record of one (possibly sharded) sweep.
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    /// Fingerprint of the spec + shard this checkpoint belongs to
    /// (see [`sweep_fingerprint`]).
    pub fingerprint: u64,
    /// Absolute grid index where this run's shard begins — the origin the
    /// output files and aggregates count from (0 for an unsharded sweep).
    pub start: usize,
    /// Absolute grid index of the next scenario to evaluate — every
    /// scenario in `start..completed` is durably on disk.
    pub completed: usize,
    /// Total scenarios of the run's plan: `0` for an exhaustive grid (whose
    /// size the spec already determines), the planned emission count for a
    /// frontier run. Resume recomputes the frontier plan from the spec and
    /// rejects the checkpoint when the counts disagree — a diverged plan
    /// must not be spliced.
    pub plan_points: usize,
    /// Byte length of the JSONL file covering exactly `completed` records.
    pub jsonl_bytes: u64,
    /// Byte length of the CSV file covering exactly `completed` records.
    pub csv_bytes: u64,
    /// Partial aggregates over the finished prefix.
    pub agg: SweepAccumulator,
}

impl Checkpoint {
    /// Renders the checkpoint as deterministic text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(out, "fingerprint {:x}", self.fingerprint);
        let _ = writeln!(out, "start {}", self.start);
        let _ = writeln!(out, "completed {}", self.completed);
        let _ = writeln!(out, "plan_points {}", self.plan_points);
        let _ = writeln!(out, "jsonl_bytes {}", self.jsonl_bytes);
        let _ = writeln!(out, "csv_bytes {}", self.csv_bytes);
        out.push_str(&self.agg.render());
        out
    }

    /// Parses the [`Checkpoint::render`] format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(format!("not a checkpoint file (expected `{MAGIC}`)"));
        }
        let mut header = |key: &str| -> Result<String, String> {
            let line = lines.next().ok_or_else(|| format!("missing `{key}`"))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_owned)
                .ok_or_else(|| format!("expected `{key} <value>`, got: {line}"))
        };
        let fingerprint = u64::from_str_radix(&header("fingerprint")?, 16)
            .map_err(|e| format!("fingerprint: {e}"))?;
        let start: usize = header("start")?
            .parse()
            .map_err(|e| format!("start: {e}"))?;
        let completed: usize = header("completed")?
            .parse()
            .map_err(|e| format!("completed: {e}"))?;
        if completed < start {
            return Err(format!("completed ({completed}) precedes start ({start})"));
        }
        let plan_points: usize = header("plan_points")?
            .parse()
            .map_err(|e| format!("plan_points: {e}"))?;
        let jsonl_bytes: u64 = header("jsonl_bytes")?
            .parse()
            .map_err(|e| format!("jsonl_bytes: {e}"))?;
        let csv_bytes: u64 = header("csv_bytes")?
            .parse()
            .map_err(|e| format!("csv_bytes: {e}"))?;
        let rest: Vec<&str> = lines.collect();
        let agg = SweepAccumulator::parse(&rest.join("\n"))?;
        // The aggregate counts only this shard's records: completed is
        // absolute, so the shard origin must be subtracted before comparing.
        if agg.recorded() != completed - start {
            return Err(format!(
                "aggregate covers {} outcomes but start..completed says {}",
                agg.recorded(),
                completed - start
            ));
        }
        Ok(Checkpoint {
            fingerprint,
            start,
            completed,
            plan_points,
            jsonl_bytes,
            csv_bytes,
            agg,
        })
    }

    /// Atomically writes the checkpoint to `path`: `<path>.tmp`, fsync,
    /// rename — a kill or power loss mid-save preserves the previous
    /// checkpoint, and a renamed checkpoint is durably on disk. Callers
    /// must sync the output files the checkpoint describes **before**
    /// saving it, or a crash can leave the checkpoint ahead of the data.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing, syncing or renaming.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        use std::io::Write as _;
        let tmp = path.with_extension("ckpt.tmp");
        let mut file = fs::File::create(&tmp)?;
        file.write_all(self.render().as_bytes())?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    }

    /// Loads a checkpoint; `Ok(None)` when no file exists.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, or `InvalidData` when the file
    /// exists but does not parse.
    pub fn load(path: &Path) -> io::Result<Option<Self>> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Checkpoint::parse(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// A stable fingerprint of the sweep parameters a checkpoint is only valid
/// for: the full spec (axes — including the period-policy set — seed,
/// workload, expansion) and the shard split. Resuming with anything else
/// changed must be rejected, not spliced.
#[must_use]
pub fn sweep_fingerprint(spec: &ScenarioSpec, shard: (usize, usize)) -> u64 {
    // FNV-1a over the debug rendering: every spec field is Debug-stable and
    // participates (`period_policies` included), so any parameter change —
    // adding or dropping a policy too — flips the fingerprint.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let text = format!("{spec:?}|shard {}/{}", shard.0, shard.1);
    for byte in text.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::spec::{AllocatorKind, UtilizationGrid};

    fn small_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::synthetic("ckpt");
        spec.cores = vec![2];
        spec.utilizations = UtilizationGrid::Fractions(vec![0.2]);
        spec.allocators = vec![AllocatorKind::Hydra];
        spec.trials = 2;
        spec
    }

    fn sample() -> Checkpoint {
        let result = Executor::serial().run(&small_spec());
        let mut agg = SweepAccumulator::new();
        for outcome in &result.outcomes {
            agg.record(outcome);
        }
        Checkpoint {
            fingerprint: sweep_fingerprint(&small_spec(), (1, 1)),
            start: 0,
            completed: result.outcomes.len(),
            plan_points: 0,
            jsonl_bytes: 123,
            csv_bytes: 456,
            agg,
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let ckpt = sample();
        let parsed = Checkpoint::parse(&ckpt.render()).unwrap();
        assert_eq!(parsed.fingerprint, ckpt.fingerprint);
        assert_eq!(parsed.start, ckpt.start);
        assert_eq!(parsed.completed, ckpt.completed);
        assert_eq!(parsed.jsonl_bytes, 123);
        assert_eq!(parsed.csv_bytes, 456);
        assert_eq!(parsed.agg.rows(), ckpt.agg.rows());
        assert_eq!(parsed.render(), ckpt.render());
    }

    #[test]
    fn sharded_checkpoints_count_from_the_shard_origin() {
        // Regression: `completed` is an absolute grid index while the
        // aggregate only covers the shard's own records; a checkpoint from a
        // shard with start > 0 must round-trip, not be rejected.
        let mut ckpt = sample();
        let recorded = ckpt.agg.recorded();
        ckpt.start = 17;
        ckpt.completed = 17 + recorded;
        let parsed = Checkpoint::parse(&ckpt.render()).unwrap();
        assert_eq!(parsed.start, 17);
        assert_eq!(parsed.completed, 17 + recorded);
        assert_eq!(parsed.agg.recorded(), recorded);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        assert!(Checkpoint::parse("garbage").is_err());
        assert!(Checkpoint::parse(MAGIC).is_err());
        // A completed count that disagrees with the aggregate is corruption,
        // as is progress that precedes the shard origin.
        let mut lying = sample();
        lying.completed += 1;
        assert!(Checkpoint::parse(&lying.render()).is_err());
        let mut backwards = sample();
        backwards.start = backwards.completed + 1;
        assert!(Checkpoint::parse(&backwards.render()).is_err());
    }

    #[test]
    fn save_load_round_trips_and_missing_files_are_none() {
        let dir = std::env::temp_dir().join("rt_dse_ckpt_test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("sweep.ckpt");
        let _ = fs::remove_file(&path);
        assert!(Checkpoint::load(&path).unwrap().is_none());
        let ckpt = sample();
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap().unwrap();
        assert_eq!(loaded.render(), ckpt.render());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_react_to_any_parameter_change() {
        let base = sweep_fingerprint(&small_spec(), (1, 2));
        assert_eq!(base, sweep_fingerprint(&small_spec(), (1, 2)));
        let mut reseeded = small_spec();
        reseeded.base_seed += 1;
        assert_ne!(base, sweep_fingerprint(&reseeded, (1, 2)));
        assert_ne!(base, sweep_fingerprint(&small_spec(), (2, 2)));
        let mut regridded = small_spec();
        regridded.trials += 1;
        assert_ne!(base, sweep_fingerprint(&regridded, (1, 2)));
    }

    #[test]
    fn fingerprints_react_to_the_period_policy_set() {
        use crate::spec::PeriodPolicy;
        // A spec that gained (or reordered) the policy axis is a different
        // sweep: resuming its checkpoint must be rejected, not mixed.
        let base = sweep_fingerprint(&small_spec(), (1, 1));
        let mut widened = small_spec();
        widened.period_policies = vec![PeriodPolicy::Fixed, PeriodPolicy::Adapt];
        assert_ne!(base, sweep_fingerprint(&widened, (1, 1)));
        let mut reordered = widened.clone();
        reordered.period_policies = vec![PeriodPolicy::Adapt, PeriodPolicy::Fixed];
        assert_ne!(
            sweep_fingerprint(&widened, (1, 1)),
            sweep_fingerprint(&reordered, (1, 1))
        );
    }

    #[test]
    fn stale_checkpoint_versions_are_rejected_by_the_magic_line() {
        for stale in ["dse-checkpoint v1", "dse-checkpoint v2"] {
            let err = Checkpoint::parse(&format!("{stale}\nfingerprint 0\n")).unwrap_err();
            assert!(err.contains("dse-checkpoint v3"), "{err}");
        }
    }

    #[test]
    fn plan_points_round_trip_and_are_mandatory() {
        let mut ckpt = sample();
        ckpt.plan_points = 42;
        let parsed = Checkpoint::parse(&ckpt.render()).unwrap();
        assert_eq!(parsed.plan_points, 42);
        // A render with the plan_points line stripped (the v2 layout) fails.
        let legacy: String = ckpt
            .render()
            .lines()
            .filter(|l| !l.starts_with("plan_points"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(Checkpoint::parse(&legacy).is_err());
    }
}
