//! Scenario evaluation and the parallel sweep executor.
//!
//! The executor runs the expanded grid on a pool of scoped worker threads
//! pulling scenario indices from a shared atomic cursor (self-balancing: a
//! worker that lands on a cheap scenario immediately steals the next index,
//! so stragglers never idle the pool). Every scenario derives its inputs
//! from its own `(base_seed, stream)` address, which makes results
//! independent of thread count, scheduling order and the memoization layer —
//! the property the determinism tests pin down.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use hydra_core::metrics::{mean, percentile};
use hydra_core::AllocationProblem;
use rt_core::dbf::necessary_condition_default_horizon;
use rt_core::Time;
use rt_sim::attack::AttackScenario;
use rt_sim::detection::detection_latencies_ms;
use rt_sim::engine::{simulate, SimConfig};
use rt_sim::workload::simulation_tasks;
use taskgen::{derive_seed, generate_problem_seeded};

use crate::grid::ScenarioGrid;
use crate::memo::{hash_taskset, MemoCache, MemoStats, ProblemKey};
use crate::scenario::{DetectionStats, Scenario, ScenarioOutcome};
use crate::spec::{Evaluation, ScenarioSpec, Workload};

/// Salt separating the attack-injection seed stream from the task-set
/// generation stream at the same scenario address.
const ATTACK_SALT: u64 = 0xa77a_c852_11fe_c7ed;

/// Fingerprint marking case-study problem keys (no generator config).
const CASE_STUDY_FINGERPRINT: u64 = u64::MAX;

/// The completed execution of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Sweep name (copied from the spec).
    pub name: String,
    /// One outcome per scenario, in grid order — deterministic for a fixed
    /// spec regardless of thread count.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Memoization hit/miss counters.
    pub memo: MemoStats,
    /// Wall-clock execution time (excluded from serialized outputs so they
    /// stay byte-deterministic).
    pub elapsed: Duration,
    /// Number of worker threads used.
    pub threads: usize,
}

impl SweepResult {
    /// Evaluated scenarios per wall-clock second.
    #[must_use]
    pub fn scenarios_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.outcomes.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// Executes [`ScenarioSpec`]s over a worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// A single-threaded executor (the reference for determinism tests).
    #[must_use]
    pub fn serial() -> Self {
        Executor { threads: 1 }
    }

    /// An executor sized to the machine's available parallelism.
    #[must_use]
    pub fn parallel() -> Self {
        Executor { threads: 0 }
    }

    /// An executor with an explicit worker count (`0` = auto).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Executor { threads }
    }

    fn resolve_threads(self, work_items: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let requested = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        requested.clamp(1, work_items.max(1))
    }

    /// Runs the sweep described by `spec` and returns outcomes in grid order.
    #[must_use]
    pub fn run(&self, spec: &ScenarioSpec) -> SweepResult {
        let scenarios = ScenarioGrid::expand(spec).into_scenarios();
        let threads = self.resolve_threads(scenarios.len());
        let memo = MemoCache::new();
        let started = Instant::now();

        let mut outcomes: Vec<ScenarioOutcome> = if threads <= 1 {
            scenarios.iter().map(|s| evaluate(spec, s, &memo)).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let collected: Mutex<Vec<ScenarioOutcome>> =
                Mutex::new(Vec::with_capacity(scenarios.len()));
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(scenario) = scenarios.get(i) else {
                                break;
                            };
                            local.push(evaluate(spec, scenario, &memo));
                        }
                        collected
                            .lock()
                            .expect("result collector poisoned")
                            .append(&mut local);
                    });
                }
            });
            collected.into_inner().expect("result collector poisoned")
        };
        outcomes.sort_by_key(|o| o.scenario.index);

        SweepResult {
            name: spec.name.clone(),
            outcomes,
            memo: memo.stats(),
            elapsed: started.elapsed(),
            threads,
        }
    }
}

/// Evaluates a single scenario point.
fn evaluate(spec: &ScenarioSpec, scenario: &Scenario, memo: &MemoCache) -> ScenarioOutcome {
    match &spec.workload {
        Workload::Synthetic(overrides) => {
            let utilization = scenario
                .utilization
                .expect("synthetic scenarios carry a utilization");
            let key = ProblemKey {
                cores: scenario.cores,
                utilization_bits: utilization.to_bits(),
                base_seed: spec.base_seed,
                stream: scenario.problem_stream,
                config_fingerprint: overrides.fingerprint(),
            };
            let problem = memo.problem(key, || {
                let config = overrides.config_for(scenario.cores);
                generate_problem_seeded(
                    &config,
                    utilization,
                    spec.base_seed,
                    scenario.problem_stream,
                )
            });
            let feasible =
                memo.feasibility(hash_taskset(&problem.rt_tasks), scenario.cores, || {
                    necessary_condition_default_horizon(&problem.rt_tasks, scenario.cores)
                });
            if !feasible {
                return ScenarioOutcome::infeasible(
                    *scenario,
                    problem.rt_tasks.len(),
                    problem.security_tasks.len(),
                    problem.total_utilization(),
                );
            }
            allocate_and_measure(spec, scenario, &problem)
        }
        Workload::CaseStudyUav => {
            let key = ProblemKey {
                cores: scenario.cores,
                utilization_bits: 0,
                base_seed: spec.base_seed,
                stream: scenario.problem_stream,
                config_fingerprint: CASE_STUDY_FINGERPRINT,
            };
            let problem = memo.problem(key, || {
                AllocationProblem::new(
                    hydra_core::casestudy::uav_rt_tasks(),
                    hydra_core::catalog::table1_tasks(),
                    scenario.cores,
                )
                .with_partition_config(Workload::uav_partition_config())
            });
            allocate_and_measure(spec, scenario, &problem)
        }
    }
}

fn allocate_and_measure(
    spec: &ScenarioSpec,
    scenario: &Scenario,
    problem: &AllocationProblem,
) -> ScenarioOutcome {
    let allocator = scenario
        .allocator
        .build(problem.security_tasks.len(), &spec.workload);
    let base = ScenarioOutcome {
        scenario: *scenario,
        feasible: true,
        schedulable: false,
        error: None,
        n_rt: problem.rt_tasks.len(),
        n_sec: problem.security_tasks.len(),
        total_utilization: problem.total_utilization(),
        cumulative_tightness: None,
        mean_tightness: None,
        detection: None,
    };
    match allocator.allocate(problem) {
        Ok(allocation) => {
            let detection = match spec.evaluation {
                Evaluation::Allocate => None,
                Evaluation::Detection { horizon, attacks } => Some(measure_detection(
                    spec,
                    scenario,
                    problem,
                    &allocation,
                    horizon,
                    attacks,
                )),
            };
            ScenarioOutcome {
                schedulable: true,
                cumulative_tightness: Some(
                    allocation.cumulative_tightness(&problem.security_tasks),
                ),
                mean_tightness: Some(allocation.mean_tightness()),
                detection,
                ..base
            }
        }
        Err(error) => ScenarioOutcome {
            error: Some(error.to_string()),
            ..base
        },
    }
}

fn measure_detection(
    spec: &ScenarioSpec,
    scenario: &Scenario,
    problem: &AllocationProblem,
    allocation: &hydra_core::Allocation,
    horizon: Time,
    attacks: usize,
) -> DetectionStats {
    let tasks = simulation_tasks(problem, allocation);
    let trace = simulate(&tasks, &SimConfig::new(horizon));
    // Keep injections away from the tail so slow checks can still complete;
    // the seed depends on the problem address but NOT the allocator, so every
    // scheme faces the identical attack times (paired comparison).
    let margin = Time::from_secs(60).min(horizon / 2);
    let attack_seed = derive_seed(spec.base_seed ^ ATTACK_SALT, scenario.problem_stream);
    let targets: Vec<usize> = (0..problem.security_tasks.len()).collect();
    let injected = AttackScenario::new(horizon, margin, attack_seed).generate(attacks, &targets);
    let mut latencies = detection_latencies_ms(&tasks, &trace, &injected);
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    DetectionStats {
        injected: injected.len(),
        detected: latencies.len(),
        mean_ms: mean(&latencies),
        median_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        latencies_ms: latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AllocatorKind, ScenarioSpec, UtilizationGrid};

    fn tiny_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::synthetic("tiny");
        spec.cores = vec![2];
        spec.utilizations = UtilizationGrid::Fractions(vec![0.2, 0.5]);
        spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::SingleCore];
        spec.trials = 3;
        spec
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let spec = tiny_spec();
        let serial = Executor::serial().run(&spec);
        let parallel = Executor::with_threads(4).run(&spec);
        assert_eq!(serial.outcomes, parallel.outcomes);
        assert_eq!(serial.outcomes.len(), 12);
    }

    #[test]
    fn allocator_axis_shares_problem_instances() {
        let spec = tiny_spec();
        let result = Executor::serial().run(&spec);
        // Problems are generated once per (cores, util, trial) point and
        // reused across both allocators.
        assert_eq!(result.memo.problem_misses, 6);
        assert_eq!(result.memo.problem_hits, 6);
        // Paired scenarios report identical problem shapes.
        for pair in result.outcomes.chunks(2) {
            assert_eq!(pair[0].n_rt, pair[1].n_rt);
            assert_eq!(pair[0].n_sec, pair[1].n_sec);
            assert_eq!(pair[0].total_utilization, pair[1].total_utilization);
        }
    }

    #[test]
    fn low_utilization_synthetic_scenarios_schedule() {
        let mut spec = tiny_spec();
        spec.utilizations = UtilizationGrid::Fractions(vec![0.1]);
        let result = Executor::serial().run(&spec);
        for outcome in &result.outcomes {
            assert!(outcome.feasible);
            assert!(
                outcome.schedulable,
                "{:?} failed: {:?}",
                outcome.scenario.allocator, outcome.error
            );
            let eta = outcome.cumulative_tightness.unwrap();
            assert!(eta > 0.0);
        }
    }

    #[test]
    fn detection_scenarios_measure_latencies() {
        let mut spec = ScenarioSpec::uav_detection("uav", 30, 25);
        spec.cores = vec![2];
        let result = Executor::with_threads(2).run(&spec);
        assert_eq!(result.outcomes.len(), 2);
        for outcome in &result.outcomes {
            assert!(outcome.schedulable);
            let d = outcome.detection.as_ref().unwrap();
            assert_eq!(d.injected, 25);
            assert!(d.detected > 0);
            assert!(d.max_ms >= d.p95_ms && d.p95_ms >= d.median_ms);
            assert!(d.latencies_ms.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn throughput_is_reported() {
        let mut spec = tiny_spec();
        spec.trials = 1;
        let result = Executor::serial().run(&spec);
        assert!(result.scenarios_per_sec() > 0.0);
        assert_eq!(result.threads, 1);
    }
}
