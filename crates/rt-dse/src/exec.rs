//! Scenario evaluation and the parallel streaming sweep executor.
//!
//! The executor runs the expanded grid on a pool of scoped worker threads
//! pulling scenario indices from a shared atomic cursor (self-balancing: a
//! worker that lands on a cheap scenario immediately steals the next index,
//! so stragglers never idle the pool). Every scenario derives its inputs
//! from its own `(base_seed, stream)` address, which makes results
//! independent of thread count, scheduling order and the memoization layer —
//! the property the determinism tests pin down.
//!
//! Results **stream**: a reorder buffer restores grid order and feeds each
//! outcome to an [`OutcomeSink`] the moment its turn comes, while each worker
//! folds its own outcomes into a partial [`SweepAccumulator`] merged at the
//! end. Peak memory is therefore O(threads + reorder window) outcomes plus
//! the aggregate state — not O(grid) — and a backpressure gate keeps a
//! worker from racing more than one window ahead of the slowest scenario.
//! [`Executor::run`] is the buffered compatibility wrapper (a [`VecSink`]).
//!
//! Because a scenario's address fully determines its result, any contiguous
//! index range can be evaluated independently: [`shard_range`] splits a grid
//! into `n` chunks whose concatenated streams are byte-identical to a single
//! full run, which is what the `dse` CLI's `--shard i/n` and checkpoint
//! resume build on.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hydra_core::allocator::{Allocator, OptimalAllocator, SingleCoreAllocator};
use hydra_core::{Allocation, AllocationError, AllocationProblem};
use rt_core::batch::{BatchDemandKernel, BatchMode, BatchStats, LANES};
use rt_core::dbf::necessary_condition_default_horizon;
use rt_core::Time;
use rt_partition::partition_tasks_with_mode;
use rt_sim::attack::{AttackScenario, InjectedAttack};
use rt_sim::detection::OnlineDetector;
use rt_sim::engine::{simulate_with_scratch, SimConfig, SimScratch};
use rt_sim::workload::{simulation_tasks_into, SimTask, TaskKind};
use taskgen::{derive_seed, generate_problem_seeded};

use crate::agg::SweepAccumulator;
use crate::api::SweepHandle;
use crate::grid::ScenarioGrid;
use crate::memo::{hash_taskset, AllocationKey, MemoCache, MemoStats, ProblemKey};
use crate::obs::{
    SweepObs, WorkerObs, ENGINE_TRACK, PHASE_ALLOCATE, PHASE_GENERATE, PHASE_PARTITION,
    PHASE_PERIOD_POLICY, PHASE_SIMULATE, PHASE_SINK,
};
use crate::scenario::{DetectionStats, Scenario, ScenarioOutcome};
use crate::sink::{OutcomeSink, VecSink};
use crate::spec::{AllocatorKind, Evaluation, ScenarioSpec, Workload};
use crate::store::MemoStore;

/// Salt separating the attack-injection seed stream from the task-set
/// generation stream at the same scenario address.
const ATTACK_SALT: u64 = 0xa77a_c852_11fe_c7ed;

/// Fingerprint marking case-study problem keys (no generator config).
const CASE_STUDY_FINGERPRINT: u64 = u64::MAX;

/// Lookahead width (in grid scenarios) of the batched Eq. (1) feasibility
/// prefetch: wide enough to span several allocator/policy-axis repetitions
/// of the same problem address and still collect [`LANES`] distinct task
/// sets from the utilization/trial axes, while staying well inside the
/// reorder window so prefetched work is never wasted on unevaluated points.
const PREFETCH_WINDOW: usize = 64;

/// Cap on problems staged per prefetch window across *all* core-count
/// buckets (each bucket is additionally capped at [`LANES`], the kernel
/// width). Bounds the generation work one evaluation may front-load.
const PREFETCH_STAGE_CAP: usize = 2 * LANES;

/// The contiguous scenario-index range of shard `index` (1-based) out of
/// `count` equal splits of a grid: concatenating every shard's streamed
/// output in shard order is byte-identical to a single full-range run.
///
/// # Panics
///
/// Panics unless `1 <= index <= count`.
#[must_use]
pub fn shard_range(grid_len: usize, index: usize, count: usize) -> Range<usize> {
    assert!(
        index >= 1 && index <= count,
        "shard index must satisfy 1 <= {index} <= {count}"
    );
    let at = |i: usize| (i as u128 * grid_len as u128 / count as u128) as usize;
    at(index - 1)..at(index)
}

/// The completed execution of one **buffered** sweep (see
/// [`Executor::run`]). Memory scales with the grid; large sweeps should use
/// [`Executor::run_streaming`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Sweep name (copied from the spec).
    pub name: String,
    /// One outcome per scenario, in grid order — deterministic for a fixed
    /// spec regardless of thread count.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Memoization hit/miss counters.
    pub memo: MemoStats,
    /// Wall-clock execution time (excluded from serialized outputs so they
    /// stay byte-deterministic).
    pub elapsed: Duration,
    /// Number of worker threads used.
    pub threads: usize,
}

impl SweepResult {
    /// Evaluated scenarios per wall-clock second, or `None` when the sweep
    /// finished below timer resolution (never `inf`/NaN — non-finite numbers
    /// must stay out of every report).
    #[must_use]
    pub fn scenarios_per_sec(&self) -> Option<f64> {
        throughput(self.outcomes.len(), self.elapsed)
    }
}

/// The completed execution of one **streaming** sweep range: everything a
/// caller needs except the outcomes themselves, which went to the sink.
#[derive(Debug)]
pub struct StreamSummary {
    /// Sweep name (copied from the spec).
    pub name: String,
    /// Size of the full expanded grid (after sampling).
    pub grid_len: usize,
    /// The evaluated scenario-index range (clamped to the grid).
    pub range: Range<usize>,
    /// Merged per-worker partial aggregates over the evaluated range.
    pub partial: SweepAccumulator,
    /// Memoization hit/miss counters.
    pub memo: MemoStats,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Number of worker threads used.
    pub threads: usize,
    /// Whether the run was cut short by [`SweepHandle::cancel`]. A
    /// cancelled run still finished its sink cleanly; `range` covers
    /// exactly the outcomes the sink received.
    pub cancelled: bool,
}

impl StreamSummary {
    /// Number of scenarios evaluated (the length of the range).
    #[must_use]
    pub fn evaluated(&self) -> usize {
        self.range.len()
    }

    /// Evaluated scenarios per wall-clock second, or `None` when the sweep
    /// finished below timer resolution.
    #[must_use]
    pub fn scenarios_per_sec(&self) -> Option<f64> {
        throughput(self.evaluated(), self.elapsed)
    }
}

fn throughput(evaluated: usize, elapsed: Duration) -> Option<f64> {
    let secs = elapsed.as_secs_f64();
    (secs > 0.0).then(|| evaluated as f64 / secs)
}

/// Executes [`ScenarioSpec`]s over a worker pool.
///
/// Observability is off by default; [`Executor::with_observability`]
/// attaches a [`SweepObs`] bundle. Instrumentation never changes what the
/// sink sees: outputs are byte-identical with observability on or off.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    threads: usize,
    obs: SweepObs,
    batch: BatchMode,
    store: Option<Arc<MemoStore>>,
    handle: Option<SweepHandle>,
    /// When set, every run borrows this cache instead of building a private
    /// one — the frontier driver's probe rounds warm the same memo its
    /// emission phase later reuses. [`StreamSummary::memo`] then reports the
    /// cache's *cumulative* counters, not per-run deltas.
    shared_memo: Option<Arc<MemoCache>>,
}

/// Per-worker reusable evaluation buffers. Each worker thread owns one
/// scratch for the whole sweep, so the steady-state per-scenario evaluation
/// of the hot detection path — building the simulator workload, generating
/// the attack schedule, running the event-driven simulation and folding the
/// detection latencies — recycles these buffers instead of allocating.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// The simulator workload (`SimTask` names reuse their `String`s).
    tasks: Vec<SimTask>,
    /// The injected attack schedule.
    attacks: Vec<InjectedAttack>,
    /// The attack-target cycle (`0..n_sec`).
    targets: Vec<usize>,
    /// Which cores host at least one attacked security task.
    core_monitored: Vec<bool>,
    /// Sorted latency samples staged for the outcome record.
    latencies: Vec<f64>,
    /// The event-driven engine's heaps and member lists.
    sim: SimScratch,
    /// The streaming detection observer.
    detector: OnlineDetector,
    /// The lane-batched Eq. (1) demand kernel of the feasibility prefetch.
    demand: BatchDemandKernel,
    /// Problems (with their task-set hashes and core counts) staged for one
    /// prefetch window; same-cores entries form one kernel bucket.
    prefetch: Vec<(Arc<AllocationProblem>, u64, usize)>,
    /// Problem keys already staged in the current prefetch window.
    prefetch_keys: Vec<ProblemKey>,
}

impl EvalScratch {
    /// Creates an empty scratch.
    #[must_use]
    pub fn new() -> Self {
        EvalScratch::default()
    }
}

/// The in-order emission state shared by all workers: a reorder buffer over
/// the out-of-order completions plus the sink it drains into.
struct Drain<'s> {
    /// Relative index of the next outcome to hand to the sink.
    next: usize,
    /// Completed outcomes waiting for their turn.
    pending: BTreeMap<usize, ScenarioOutcome>,
    /// The grid-order consumer.
    sink: &'s mut dyn OutcomeSink,
    /// First sink error; set once, aborts the sweep.
    error: Option<std::io::Error>,
}

impl Executor {
    /// A single-threaded executor (the reference for determinism tests).
    #[must_use]
    pub fn serial() -> Self {
        Executor {
            threads: 1,
            obs: SweepObs::disabled(),
            batch: BatchMode::Batch,
            store: None,
            handle: None,
            shared_memo: None,
        }
    }

    /// An executor sized to the machine's available parallelism.
    #[must_use]
    pub fn parallel() -> Self {
        Executor {
            threads: 0,
            ..Executor::serial()
        }
    }

    /// An executor with an explicit worker count (`0` = auto).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Executor {
            threads,
            ..Executor::serial()
        }
    }

    /// Selects the analysis-kernel mode: [`BatchMode::Batch`] (the default)
    /// routes the hot partition-admission RTA, Eq. (1) feasibility and
    /// joint-refinement math through the lane-batched SoA kernels;
    /// [`BatchMode::Scalar`] forces the reference scalar implementations
    /// everywhere. Outputs are byte-identical either way (the determinism
    /// tests prove it); the switch exists for differential testing and the
    /// `dse --no-batch` CLI flag.
    #[must_use]
    pub fn with_batch_mode(mut self, batch: BatchMode) -> Self {
        self.batch = batch;
        self
    }

    /// Attaches an observability bundle: metric/span recording flows into
    /// `obs` during every subsequent run. A disabled bundle (the default)
    /// keeps every instrumentation site a no-op.
    #[must_use]
    pub fn with_observability(mut self, obs: SweepObs) -> Self {
        self.obs = obs;
        self
    }

    /// Backs every run's [`MemoCache`] with a persistent [`MemoStore`]:
    /// values computed by any past run sharing the store are read instead of
    /// recomputed, and fresh values are written back. Sweep statistics and
    /// output bytes are unaffected (see [`MemoCache::backed_by`]).
    #[must_use]
    pub fn with_store(mut self, store: Arc<MemoStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches a [`SweepHandle`] for cooperative cancellation and progress
    /// snapshots. The handle is armed per run (one handle should observe one
    /// run); a cancelled run stops promptly after in-flight scenarios,
    /// finishes the sink, and reports [`StreamSummary::cancelled`].
    #[must_use]
    pub fn with_handle(mut self, handle: SweepHandle) -> Self {
        self.handle = Some(handle);
        self
    }

    /// Shares one externally built [`MemoCache`] across every subsequent run
    /// of this executor instead of creating a fresh cache per run. The
    /// frontier driver uses this so its bisection probes warm the exact memo
    /// the emission phase then reads. Takes precedence over
    /// [`Executor::with_store`] (back the shared cache itself instead).
    /// [`StreamSummary::memo`] reports the cache's cumulative counters.
    #[must_use]
    pub(crate) fn with_shared_memo(mut self, memo: Arc<MemoCache>) -> Self {
        self.shared_memo = Some(memo);
        self
    }

    fn resolve_threads(&self, work_items: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let requested = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        requested.clamp(1, work_items.max(1))
    }

    /// Runs the sweep described by `spec`, buffering every outcome in grid
    /// order. Memory scales with the grid — the streaming entry points keep
    /// it bounded instead.
    #[must_use]
    pub fn run(&self, spec: &ScenarioSpec) -> SweepResult {
        let mut sink = VecSink::new();
        let summary = self
            .run_streaming(spec, &mut sink)
            .expect("a VecSink never raises I/O errors");
        SweepResult {
            name: summary.name,
            outcomes: sink.into_outcomes(),
            memo: summary.memo,
            elapsed: summary.elapsed,
            threads: summary.threads,
        }
    }

    /// Runs the whole sweep, streaming outcomes to `sink` in grid order.
    ///
    /// # Errors
    ///
    /// Propagates the first sink I/O error (the sweep aborts early).
    pub fn run_streaming(
        &self,
        spec: &ScenarioSpec,
        sink: &mut dyn OutcomeSink,
    ) -> std::io::Result<StreamSummary> {
        self.run_streaming_range(spec, 0..usize::MAX, sink)
    }

    /// Runs the scenarios whose grid indices fall in `range` (clamped to the
    /// grid; an inverted or out-of-grid range clamps to empty), streaming
    /// outcomes to `sink` in grid order. Sharded and resumed sweeps are
    /// range runs: because every scenario derives its inputs from its own
    /// seed address, concatenating the streams of consecutive ranges is
    /// byte-identical to one full run.
    ///
    /// # Errors
    ///
    /// Propagates the first sink I/O error (the sweep aborts early).
    pub fn run_streaming_range(
        &self,
        spec: &ScenarioSpec,
        range: Range<usize>,
        sink: &mut dyn OutcomeSink,
    ) -> std::io::Result<StreamSummary> {
        let scenarios = ScenarioGrid::expand(spec).into_scenarios();
        self.run_scenario_list(spec, &scenarios, range, sink)
    }

    /// Runs an explicit scenario list — the streaming core every public
    /// entry point (and the frontier driver, which authors its own lists)
    /// funnels through. Each [`Scenario::index`] must equal its list
    /// position, or the reorder buffer and sink indices disagree.
    ///
    /// # Errors
    ///
    /// Propagates the first sink I/O error (the sweep aborts early).
    pub(crate) fn run_scenario_list(
        &self,
        spec: &ScenarioSpec,
        scenarios: &[Scenario],
        range: Range<usize>,
        sink: &mut dyn OutcomeSink,
    ) -> std::io::Result<StreamSummary> {
        let grid_len = scenarios.len();
        let end = range.end.min(grid_len);
        let range = range.start.min(end)..end;
        let slice = &scenarios[range.clone()];
        let threads = self.resolve_threads(slice.len());
        // The memo's hit/miss counters mirror onto the engine track of the
        // registry (inert when observability is off). A shared cache (the
        // frontier driver's) is borrowed as-is; otherwise the run builds a
        // private one, backed by the persistent store when configured.
        let owned;
        let memo: &MemoCache = match &self.shared_memo {
            Some(shared) => shared.as_ref(),
            None => {
                let mut built =
                    MemoCache::with_observability(&self.obs.registry().shard(ENGINE_TRACK));
                if let Some(store) = &self.store {
                    built = built.backed_by(Arc::clone(store));
                }
                owned = built;
                &owned
            }
        };
        if let Some(handle) = &self.handle {
            handle.arm(slice.len());
        }
        // lint-ok(D002): elapsed feeds only StreamSummary.elapsed (stderr
        // reporting) — the determinism tests pin that no outcome byte sees it.
        #[allow(clippy::disallowed_methods)]
        let started = Instant::now();

        let partial = if threads <= 1 {
            let wobs = self.obs.worker(0);
            let mut acc = SweepAccumulator::new();
            let mut scratch = EvalScratch::new();
            for (i, scenario) in slice.iter().enumerate() {
                if self.handle.as_ref().is_some_and(SweepHandle::is_cancelled) {
                    break;
                }
                // lint-ok(D002): metrics-gated timing feeds the rt-obs
                // histogram only; obs-on/off byte-identity is pinned in CI.
                #[allow(clippy::disallowed_methods)]
                let timed = wobs.metrics_enabled().then(Instant::now);
                let lookahead = &slice[i + 1..slice.len().min(i + 1 + PREFETCH_WINDOW)];
                let outcome = evaluate(
                    spec,
                    scenario,
                    lookahead,
                    memo,
                    &mut scratch,
                    &wobs,
                    self.batch,
                );
                wobs.record_scenario(timed.map(|t| t.elapsed()));
                acc.record(&outcome);
                let span = wobs.tracer.span(PHASE_SINK);
                let recorded = sink.record(&outcome);
                drop(span);
                recorded?;
                if let Some(handle) = &self.handle {
                    handle.set_done(i + 1);
                }
            }
            sink.finish()?;
            wobs.add_sim_stats(scratch.sim.stats());
            acc
        } else {
            self.stream_parallel(spec, slice, threads, memo, sink)?
        };

        // A cancelled run delivered a prefix of the range: shrink it so
        // `evaluated()` keeps meaning "outcomes the sink saw". (The partial
        // aggregate of a cancelled parallel run may additionally cover
        // completed-but-undrained outcomes; cancellation is a shutdown path,
        // not a byte-deterministic one.)
        let cancelled = self.handle.as_ref().is_some_and(SweepHandle::is_cancelled);
        let range = if cancelled {
            let emitted = self.handle.as_ref().map_or(0, |h| h.progress().done);
            range.start..(range.start + emitted)
        } else {
            range
        };

        Ok(StreamSummary {
            name: spec.name.clone(),
            grid_len,
            range,
            partial,
            memo: memo.stats(),
            elapsed: started.elapsed(),
            threads,
            cancelled,
        })
    }

    /// The parallel path: workers race an atomic cursor, a reorder buffer
    /// drains completions to the sink in grid order, and a backpressure gate
    /// caps how far any worker may run ahead of the drain.
    fn stream_parallel(
        &self,
        spec: &ScenarioSpec,
        slice: &[Scenario],
        threads: usize,
        memo: &MemoCache,
        sink: &mut dyn OutcomeSink,
    ) -> std::io::Result<SweepAccumulator> {
        // The reorder window bounds pending outcomes: a worker stuck on the
        // scenario the drain waits for can stall at most `window` completed
        // outcomes behind it (plus one in flight per worker).
        let window = (threads * 32).clamp(64, 1024);
        let cursor = AtomicUsize::new(0);
        let drain = Mutex::new(Drain {
            next: 0,
            pending: BTreeMap::new(),
            sink,
            error: None,
        });
        let turnstile = Condvar::new();
        let master: Mutex<SweepAccumulator> = Mutex::new(SweepAccumulator::new());
        // The reorder-buffer depth is a property of the shared drain, not of
        // any worker, so every worker writes the same engine-track gauge
        // (always under the drain lock — no torn updates).
        let reorder_depth = self
            .obs
            .registry()
            .shard(ENGINE_TRACK)
            .gauge("drain.reorder_depth");

        std::thread::scope(|scope| {
            let cursor = &cursor;
            let drain = &drain;
            let turnstile = &turnstile;
            let master = &master;
            let handle = self.handle.as_ref();
            for worker_index in 0..threads {
                let wobs = self.obs.worker(worker_index);
                let reorder_depth = reorder_depth.clone();
                scope.spawn(move || {
                    let mut local = SweepAccumulator::new();
                    let mut scratch = EvalScratch::new();
                    loop {
                        if handle.is_some_and(|h| h.is_cancelled()) {
                            break;
                        }
                        // relaxed-ok: the fetch_add's RMW atomicity alone
                        // guarantees unique indices; no data rides on this
                        // atomic — outcome handoff synchronizes through the
                        // `drain` mutex below, scenario inputs are immutable.
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= slice.len() {
                            break;
                        }
                        // Backpressure: wait until the drain is within one
                        // window of this index. The worker holding the
                        // drain's next index never waits, so progress is
                        // guaranteed. With a cancellable handle the wait is
                        // periodically re-armed so a cancel delivered while
                        // every worker sleeps still terminates the pool.
                        {
                            let mut state = drain.lock().expect("drain poisoned");
                            if state.error.is_none() && i >= state.next + window {
                                // lint-ok(D002): metrics-gated backpressure
                                // timing, rt-obs counters only.
                                #[allow(clippy::disallowed_methods)]
                                let waited = wobs.metrics_enabled().then(Instant::now);
                                while state.error.is_none() && i >= state.next + window {
                                    if let Some(h) = handle {
                                        if h.is_cancelled() {
                                            break;
                                        }
                                        state = turnstile
                                            .wait_timeout(state, Duration::from_millis(25))
                                            .expect("drain poisoned")
                                            .0;
                                    } else {
                                        state = turnstile.wait(state).expect("drain poisoned");
                                    }
                                }
                                if let Some(t0) = waited {
                                    wobs.backpressure_waits.inc();
                                    wobs.backpressure_wait_ns.add(
                                        u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                                    );
                                }
                            }
                            if state.error.is_some() || handle.is_some_and(|h| h.is_cancelled()) {
                                break;
                            }
                        }
                        // lint-ok(D002): metrics-gated timing feeds the
                        // rt-obs histogram only; obs-on/off byte-identity is
                        // pinned in CI.
                        #[allow(clippy::disallowed_methods)]
                        let timed = wobs.metrics_enabled().then(Instant::now);
                        let lookahead = &slice[i + 1..slice.len().min(i + 1 + PREFETCH_WINDOW)];
                        let outcome = evaluate(
                            spec,
                            &slice[i],
                            lookahead,
                            memo,
                            &mut scratch,
                            &wobs,
                            self.batch,
                        );
                        wobs.record_scenario(timed.map(|t| t.elapsed()));
                        local.record(&outcome);
                        let mut state = drain.lock().expect("drain poisoned");
                        state.pending.insert(i, outcome);
                        let mut advanced = false;
                        loop {
                            let turn = state.next;
                            let Some(ready) = state.pending.remove(&turn) else {
                                break;
                            };
                            let span = wobs.tracer.span(PHASE_SINK);
                            let recorded = state.sink.record(&ready);
                            drop(span);
                            if let Err(error) = recorded {
                                state.error = Some(error);
                                break;
                            }
                            state.next += 1;
                            advanced = true;
                        }
                        if let Some(h) = handle {
                            h.set_done(state.next);
                        }
                        reorder_depth.set(state.pending.len() as i64);
                        if advanced || state.error.is_some() {
                            drop(state);
                            turnstile.notify_all();
                        }
                    }
                    wobs.add_sim_stats(scratch.sim.stats());
                    master
                        .lock()
                        .expect("partial-aggregate collector poisoned")
                        .merge(local);
                });
            }
        });

        let state = drain.into_inner().expect("drain poisoned");
        if let Some(error) = state.error {
            return Err(error);
        }
        // A cancelled run legitimately leaves completed-but-undrained
        // outcomes behind; only a clean finish must have drained everything.
        if !self.handle.as_ref().is_some_and(SweepHandle::is_cancelled) {
            debug_assert_eq!(state.next, slice.len());
            debug_assert!(state.pending.is_empty());
        }
        state.sink.finish()?;
        Ok(master
            .into_inner()
            .expect("partial-aggregate collector poisoned"))
    }
}

/// Evaluates a single scenario point, reusing the worker's `scratch`.
/// `lookahead` is the window of grid scenarios after this one, which the
/// batched feasibility prefetch mines for same-shape lanes.
#[allow(clippy::too_many_arguments)]
fn evaluate(
    spec: &ScenarioSpec,
    scenario: &Scenario,
    lookahead: &[Scenario],
    memo: &MemoCache,
    scratch: &mut EvalScratch,
    wobs: &WorkerObs,
    mode: BatchMode,
) -> ScenarioOutcome {
    match &spec.workload {
        Workload::Synthetic(overrides) => {
            let utilization = scenario
                .utilization
                .expect("synthetic scenarios carry a utilization");
            let key = ProblemKey {
                cores: scenario.cores,
                utilization_bits: utilization.to_bits(),
                base_seed: spec.base_seed,
                stream: scenario.problem_stream,
                config_fingerprint: overrides.fingerprint(),
            };
            let problem = memo.problem(key, || {
                let _span = wobs.tracer.span(PHASE_GENERATE);
                let config = overrides.config_for(scenario.cores);
                generate_problem_seeded(
                    &config,
                    utilization,
                    spec.base_seed,
                    scenario.problem_stream,
                )
            });
            let taskset_hash = hash_taskset(&problem.rt_tasks);
            if mode == BatchMode::Batch {
                prefetch_feasibility_batch(
                    spec,
                    scenario,
                    key,
                    &problem,
                    taskset_hash,
                    lookahead,
                    memo,
                    scratch,
                    wobs,
                );
            }
            let feasible = memo.feasibility(taskset_hash, scenario.cores, || {
                necessary_condition_default_horizon(&problem.rt_tasks, scenario.cores)
            });
            if !feasible {
                return ScenarioOutcome::infeasible(
                    *scenario,
                    problem.rt_tasks.len(),
                    problem.security_tasks.len(),
                    problem.total_utilization(),
                );
            }
            allocate_and_measure(spec, scenario, key, &problem, memo, scratch, wobs, mode)
        }
        Workload::CaseStudyUav => {
            let key = ProblemKey {
                cores: scenario.cores,
                utilization_bits: 0,
                base_seed: spec.base_seed,
                stream: scenario.problem_stream,
                config_fingerprint: CASE_STUDY_FINGERPRINT,
            };
            let problem = memo.problem(key, || {
                let _span = wobs.tracer.span(PHASE_GENERATE);
                AllocationProblem::new(
                    hydra_core::casestudy::uav_rt_tasks(),
                    hydra_core::catalog::table1_tasks(),
                    scenario.cores,
                )
                .with_partition_config(Workload::uav_partition_config())
            });
            allocate_and_measure(spec, scenario, key, &problem, memo, scratch, wobs, mode)
        }
    }
}

/// Lane-batched Eq. (1) prefetch. When the current scenario's feasibility
/// verdict is uncached, mine the upcoming grid window for other uncached
/// problems, **bucket them by core count** — every lane of one SoA kernel
/// pass shares a single capacity bound, so only same-cores problems can ride
/// together; task counts may differ (short lanes are padded with zero-demand
/// rows) — and resolve each bucket holding at least two candidates in one
/// kernel pass. Near a core-axis boundary the window used to collapse to
/// the current scenario alone and fall back to the scalar path; bucketing
/// keeps the lanes full by letting the *next* core count's problems fill
/// their own pass instead of being skipped.
///
/// Verdicts enter the memo as *fresh* entries, which defer their miss to the
/// first counted access, so hit/miss statistics and sweep outputs are
/// byte-identical to the scalar path. A current-cores bucket yielding a
/// single lane leaves the verdict to the scalar closure of the counted
/// access and books a `batch.scalar_fallbacks`; a single-candidate bucket
/// for a *different* core count books nothing — its problems are prefetched
/// either way and it pairs up when its own grid region is reached.
#[allow(clippy::too_many_arguments)]
fn prefetch_feasibility_batch(
    spec: &ScenarioSpec,
    scenario: &Scenario,
    current_key: ProblemKey,
    problem: &Arc<AllocationProblem>,
    taskset_hash: u64,
    lookahead: &[Scenario],
    memo: &MemoCache,
    scratch: &mut EvalScratch,
    wobs: &WorkerObs,
) {
    let Workload::Synthetic(overrides) = &spec.workload else {
        return;
    };
    // The probe also consults the persistent store: a warm store answers
    // here and the whole batch pass is skipped — per-lane dedup below stays
    // on the pure in-memory `feasibility_present` so a cold store is not
    // hammered once per lane.
    if memo.feasibility_probe(taskset_hash, scenario.cores) {
        return;
    }
    scratch.prefetch.clear();
    scratch
        .prefetch
        .push((Arc::clone(problem), taskset_hash, scenario.cores));
    scratch.prefetch_keys.clear();
    scratch.prefetch_keys.push(current_key);
    for next in lookahead {
        if scratch.prefetch.len() >= PREFETCH_STAGE_CAP {
            break;
        }
        let Some(utilization) = next.utilization else {
            continue;
        };
        let key = ProblemKey {
            cores: next.cores,
            utilization_bits: utilization.to_bits(),
            base_seed: spec.base_seed,
            stream: next.problem_stream,
            config_fingerprint: overrides.fingerprint(),
        };
        // The allocator/policy axes repeat problem addresses back to back;
        // each distinct address contributes at most one lane.
        if scratch.prefetch_keys.contains(&key) {
            continue;
        }
        scratch.prefetch_keys.push(key);
        // Per-bucket cap: one kernel pass takes at most LANES lanes.
        let in_bucket = scratch
            .prefetch
            .iter()
            .filter(|(_, _, c)| *c == next.cores)
            .count();
        if in_bucket >= LANES {
            continue;
        }
        let next_problem = memo.prefetch_problem(key, || {
            let _span = wobs.tracer.span(PHASE_GENERATE);
            let config = overrides.config_for(next.cores);
            generate_problem_seeded(&config, utilization, spec.base_seed, next.problem_stream)
        });
        let hash = hash_taskset(&next_problem.rt_tasks);
        if memo.feasibility_present(hash, next.cores)
            || scratch
                .prefetch
                .iter()
                .any(|(_, h, c)| *h == hash && *c == next.cores)
        {
            continue;
        }
        scratch.prefetch.push((next_problem, hash, next.cores));
    }
    let mut stats = BatchStats::default();
    // The current scenario's bucket first, then the other core counts in
    // staged order (order is cosmetic: verdicts are pure functions of their
    // inputs, so pass order cannot change any byte).
    let mut bucket_cores: Vec<usize> = vec![scenario.cores];
    for (_, _, c) in &scratch.prefetch {
        if !bucket_cores.contains(c) {
            bucket_cores.push(*c);
        }
    }
    for cores in bucket_cores {
        let lanes = scratch
            .prefetch
            .iter()
            .filter(|(_, _, c)| *c == cores)
            .count();
        if lanes < 2 {
            if cores == scenario.cores {
                // Nothing to pair the current scenario with: leave its
                // verdict to the scalar closure of the counted access.
                stats.record_fallback();
            }
            continue;
        }
        scratch.demand.begin(lanes);
        for (lane, (staged, _, _)) in scratch
            .prefetch
            .iter()
            .filter(|(_, _, c)| *c == cores)
            .enumerate()
        {
            scratch
                .demand
                .load_default_horizon(lane, &staged.rt_tasks, cores);
        }
        let verdicts = scratch.demand.check(cores);
        stats.record_batch(lanes);
        for (lane, (_, hash, _)) in scratch
            .prefetch
            .iter()
            .filter(|(_, _, c)| *c == cores)
            .enumerate()
        {
            memo.prefetch_feasibility(*hash, cores, verdicts[lane]);
        }
    }
    wobs.add_batch_stats(&stats);
    scratch.prefetch.clear();
}

/// Builds the scheme's real-time partition inline (one `partition_tasks`
/// run, spanned and batch-counted). The cross-scheme partition memo that
/// used to sit here was retired after measuring a < 0.1 % hit rate — the
/// allocation memo upstream already dedups every repeat of a
/// `(problem, scheme)` pair, so this closure runs at most once per allocator
/// run anyway; see the "retired partition family" notes in `memo.rs`.
fn partition_inline(
    problem: &AllocationProblem,
    rt_cores: usize,
    wobs: &WorkerObs,
    mode: BatchMode,
) -> Result<rt_partition::Partition, AllocationError> {
    let _span = wobs.tracer.span(PHASE_PARTITION);
    let mut bstats = BatchStats::default();
    let built = partition_tasks_with_mode(
        &problem.rt_tasks,
        rt_cores,
        &problem.partition_config,
        mode,
        &mut bstats,
    )
    .map_err(|e| AllocationError::RtPartitionFailed {
        task: e.task,
        cores: rt_cores,
    });
    wobs.add_batch_stats(&bstats);
    built
}

/// Runs the scenario's allocator against an inline real-time partition.
/// Schemes other than SingleCore partition the full platform; SingleCore
/// partitions `M − 1` cores and re-expresses the result over the full
/// platform.
fn allocate_shared(
    scenario: &Scenario,
    allocator: &dyn Allocator,
    problem: &AllocationProblem,
    wobs: &WorkerObs,
    mode: BatchMode,
) -> Result<Allocation, AllocationError> {
    let single_core = scenario.allocator == AllocatorKind::SingleCore;
    if single_core && problem.cores < 2 {
        // Scheme-specific rejection; no partition is ever computed.
        return allocator.allocate(problem);
    }
    let rt_cores = if single_core {
        problem.cores - 1
    } else {
        problem.cores
    };
    let partition = partition_inline(problem, rt_cores, wobs, mode)?;
    if single_core {
        let widened =
            SingleCoreAllocator::widen_partition(&partition, problem.cores, problem.rt_tasks.len());
        allocator.allocate_with_rt_partition(problem, &widened)
    } else {
        allocator.allocate_with_rt_partition(problem, &partition)
    }
}

/// The Optimal scheme's allocation path: partitions inline exactly like
/// [`allocate_shared`], but runs the branch-and-bound through its
/// stats-returning entry point so the search counters flow onto the
/// registry. The returned allocation is identical to the plain
/// [`Allocator::allocate_with_rt_partition`] path.
fn allocate_optimal(
    problem: &AllocationProblem,
    wobs: &WorkerObs,
    mode: BatchMode,
) -> Result<Allocation, AllocationError> {
    let partition = partition_inline(problem, problem.cores, wobs, mode)?;
    let (allocation, stats) =
        OptimalAllocator::default().allocate_with_rt_partition_stats(problem, &partition)?;
    wobs.add_search_stats(stats.visited, stats.pruned, stats.total);
    Ok(allocation)
}

#[allow(clippy::too_many_arguments)]
fn allocate_and_measure(
    spec: &ScenarioSpec,
    scenario: &Scenario,
    problem_key: ProblemKey,
    problem: &AllocationProblem,
    memo: &MemoCache,
    scratch: &mut EvalScratch,
    wobs: &WorkerObs,
    mode: BatchMode,
) -> ScenarioOutcome {
    let base = ScenarioOutcome {
        scenario: *scenario,
        feasible: true,
        schedulable: false,
        error: None,
        n_rt: problem.rt_tasks.len(),
        n_sec: problem.security_tasks.len(),
        total_utilization: problem.total_utilization(),
        cumulative_tightness: None,
        mean_tightness: None,
        period_slack: None,
        freq_ratio: None,
        detection: None,
    };
    // One placement search per (problem, scheme): scenarios differing only
    // in the period policy share the allocator run through the memo.
    let shared = memo.allocation(
        AllocationKey {
            problem: problem_key,
            allocator: scenario.allocator,
        },
        || {
            let _span = wobs.tracer.span(PHASE_ALLOCATE);
            if scenario.allocator == AllocatorKind::Optimal {
                // Routed through the stats-returning entry point (identical
                // result) so the search counters reach the registry.
                allocate_optimal(problem, wobs, mode)
            } else {
                let allocator = scenario
                    .allocator
                    .build(problem.security_tasks.len(), &spec.workload);
                allocate_shared(scenario, &*allocator, problem, wobs, mode)
            }
        },
    );
    match shared.as_ref() {
        Ok(allocation) => {
            // The period-policy axis acts here: the scheme's placement is
            // kept, the granted periods are re-optimised (or not) before any
            // metric — including the detection simulation — is taken.
            // Schemes whose grants carry invariants the per-core pass cannot
            // preserve (precedence ordering across cores) keep their granted
            // periods under every policy.
            let allocation = if scenario.allocator.supports_period_reoptimization() {
                let _span = wobs.tracer.span(PHASE_PERIOD_POLICY);
                scenario
                    .policy
                    .apply_with_mode(problem, allocation.clone(), mode)
            } else {
                allocation.clone()
            };
            let detection = match spec.evaluation {
                Evaluation::Allocate => None,
                Evaluation::Detection { horizon, attacks } => Some(measure_detection(
                    spec,
                    scenario,
                    problem,
                    &allocation,
                    horizon,
                    attacks,
                    scratch,
                    wobs,
                )),
            };
            ScenarioOutcome {
                schedulable: true,
                cumulative_tightness: Some(
                    allocation.cumulative_tightness(&problem.security_tasks),
                ),
                mean_tightness: Some(allocation.mean_tightness()),
                period_slack: allocation.mean_period_slack(&problem.security_tasks),
                freq_ratio: allocation.frequency_ratio(&problem.security_tasks),
                detection,
                ..base
            }
        }
        Err(error) => ScenarioOutcome {
            error: Some(error.to_string()),
            ..base
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn measure_detection(
    spec: &ScenarioSpec,
    scenario: &Scenario,
    problem: &AllocationProblem,
    allocation: &hydra_core::Allocation,
    horizon: Time,
    attacks: usize,
    scratch: &mut EvalScratch,
    wobs: &WorkerObs,
) -> DetectionStats {
    // One span over the whole measurement: workload build, attack
    // generation, the event-driven simulation and the latency fold.
    let _span = wobs.tracer.span(PHASE_SIMULATE);
    simulation_tasks_into(problem, allocation, &mut scratch.tasks);
    // Keep injections away from the tail so slow checks can still complete;
    // the seed depends on the problem address but NOT the allocator, so every
    // scheme faces the identical attack times (paired comparison).
    let margin = Time::from_secs(60).min(horizon / 2);
    let attack_seed = derive_seed(spec.base_seed ^ ATTACK_SALT, scenario.problem_stream);
    scratch.targets.clear();
    scratch.targets.extend(0..problem.security_tasks.len());
    AttackScenario::new(horizon, margin, attack_seed).generate_into(
        attacks,
        &scratch.targets,
        &mut scratch.attacks,
    );
    // Cores are fully isolated under partitioned scheduling, so a core that
    // hosts no attacked security task cannot influence any detection outcome
    // — drop its tasks before simulating. (The attack cycle hits the first
    // `min(attacks, n_sec)` targets.) Under the SingleCore scheme this
    // collapses the simulation to the dedicated security core alone.
    let attacked = scratch.targets.len().min(attacks);
    let cores_total = scratch.tasks.iter().map(|t| t.core + 1).max().unwrap_or(0);
    scratch.core_monitored.clear();
    scratch.core_monitored.resize(cores_total, false);
    for task in &scratch.tasks {
        if let TaskKind::Security(s) = task.kind {
            if s < attacked {
                scratch.core_monitored[task.core] = true;
            }
        }
    }
    // In-place unstable partition (keeps every recycled buffer alive): the
    // engine's heaps impose the dispatch order, so member order within the
    // slice cannot change any outcome.
    let mut keep = 0usize;
    for i in 0..scratch.tasks.len() {
        if scratch.core_monitored[scratch.tasks[i].core] {
            scratch.tasks.swap(keep, i);
            keep += 1;
        }
    }
    let sim_tasks = &scratch.tasks[..keep];
    // One streaming pass: no trace is materialised, detection latencies fold
    // online per completed job, and the simulation stops as soon as every
    // attack is resolved — outcomes are identical to the trace-based
    // measurement (pinned by the rt-sim equality tests).
    scratch.detector.begin(sim_tasks, &scratch.attacks);
    if !scratch.detector.finished() {
        simulate_with_scratch(
            sim_tasks,
            &SimConfig::new(horizon),
            &mut scratch.sim,
            &mut scratch.detector,
        );
    }
    scratch.latencies.clear();
    scratch.latencies.extend(
        scratch
            .detector
            .outcomes()
            .iter()
            .filter_map(|o| o.latency())
            .map(|t| t.as_millis_f64()),
    );
    scratch
        .latencies
        .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // The samples arrive sorted, so the percentile summaries are computed
    // with the no-clone `percentile_sorted` fast path.
    DetectionStats::from_sorted_latencies(scratch.attacks.len(), scratch.latencies.clone())
}

#[cfg(test)]
#[allow(deprecated)] // `aggregate` stays the buffered reference until removal
mod tests {
    use super::*;
    use crate::sink::{to_csv, to_jsonl, CsvSink, JsonlSink};
    use crate::spec::{AllocatorKind, ScenarioSpec, UtilizationGrid};

    fn tiny_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::synthetic("tiny");
        spec.cores = vec![2];
        spec.utilizations = UtilizationGrid::Fractions(vec![0.2, 0.5]);
        spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::SingleCore];
        spec.trials = 3;
        spec
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let spec = tiny_spec();
        let serial = Executor::serial().run(&spec);
        let parallel = Executor::with_threads(4).run(&spec);
        assert_eq!(serial.outcomes, parallel.outcomes);
        assert_eq!(serial.outcomes.len(), 12);
    }

    #[test]
    fn allocator_axis_shares_problem_instances() {
        let spec = tiny_spec();
        let result = Executor::serial().run(&spec);
        // Problems are generated once per (cores, util, trial) point and
        // reused across both allocators.
        assert_eq!(result.memo.problem_misses, 6);
        assert_eq!(result.memo.problem_hits, 6);
        // Paired scenarios report identical problem shapes.
        for pair in result.outcomes.chunks(2) {
            assert_eq!(pair[0].n_rt, pair[1].n_rt);
            assert_eq!(pair[0].n_sec, pair[1].n_sec);
            assert_eq!(pair[0].total_utilization, pair[1].total_utilization);
        }
    }

    #[test]
    fn allocator_axis_runs_one_allocation_per_scheme() {
        // Each scheme's placement search (with its inline `partition_tasks`)
        // is its own allocation-memo entry: one miss per (problem, scheme),
        // never a cross-scheme hit. This is the invariant that made the old
        // cross-scheme partition memo dead weight — see memo.rs, "the
        // retired partition family".
        let mut spec = tiny_spec();
        spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::NpHydra];
        let result = Executor::serial().run(&spec);
        let feasible_problems = result
            .outcomes
            .iter()
            .filter(|o| o.feasible && o.scenario.allocator == AllocatorKind::Hydra)
            .count() as u64;
        assert!(feasible_problems > 0);
        assert_eq!(result.memo.allocation_misses, 2 * feasible_problems);
        assert_eq!(result.memo.allocation_hits, 0);
    }

    #[test]
    fn single_core_reexpresses_the_smaller_partition_over_the_full_platform() {
        // SingleCore partitions M − 1 cores inline and widens the result to
        // the full platform; the path must agree with the scheme's own
        // allocate() on every outcome (pinned indirectly: outcomes carry the
        // same schedulability as the pre-refactor engine's, which the
        // determinism tests diff at the byte level).
        let spec = tiny_spec();
        let result = Executor::serial().run(&spec);
        let mut scheduled = 0usize;
        for outcome in &result.outcomes {
            if outcome.scenario.allocator == AllocatorKind::SingleCore && outcome.schedulable {
                assert!(outcome.cumulative_tightness.is_some());
                scheduled += 1;
            }
        }
        assert!(
            scheduled > 0,
            "tiny spec must schedule some SingleCore points"
        );
    }

    #[test]
    fn period_policy_axis_shares_problems_and_allocations() {
        use crate::spec::PeriodPolicy;
        // Three policy variants of one allocator re-use the generated
        // problem *and* the allocator run (which partitions inline): the
        // policy pass happens after allocation, so the axis costs no
        // regeneration at all.
        let mut spec = tiny_spec();
        spec.allocators = vec![AllocatorKind::Hydra];
        spec.period_policies = vec![
            PeriodPolicy::Fixed,
            PeriodPolicy::Adapt,
            PeriodPolicy::Joint,
        ];
        let result = Executor::serial().run(&spec);
        assert_eq!(result.outcomes.len(), 18);
        assert_eq!(result.memo.problem_misses, 6);
        assert_eq!(result.memo.problem_hits, 12);
        let feasible_problems = result
            .outcomes
            .iter()
            .filter(|o| o.feasible && o.scenario.policy == PeriodPolicy::Fixed)
            .count() as u64;
        assert!(feasible_problems > 0);
        // The placement search itself runs once per (problem, scheme) and
        // the other two policies reuse it.
        assert_eq!(result.memo.allocation_misses, feasible_problems);
        assert_eq!(result.memo.allocation_hits, 2 * feasible_problems);
    }

    #[test]
    fn period_policies_are_paired_and_ordered() {
        use crate::spec::PeriodPolicy;
        let mut spec = tiny_spec();
        spec.allocators = vec![AllocatorKind::Hydra];
        spec.period_policies = vec![
            PeriodPolicy::Fixed,
            PeriodPolicy::Adapt,
            PeriodPolicy::Joint,
        ];
        let result = Executor::serial().run(&spec);
        for triple in result.outcomes.chunks(3) {
            let [fixed, adapt, joint] = triple else {
                panic!("policy triples must be adjacent in grid order");
            };
            assert_eq!(fixed.scenario.policy, PeriodPolicy::Fixed);
            assert_eq!(adapt.scenario.policy, PeriodPolicy::Adapt);
            assert_eq!(joint.scenario.policy, PeriodPolicy::Joint);
            // The policy acts post-allocation: the paired problem and the
            // schedulability verdict are identical across the axis.
            assert_eq!(fixed.scenario.problem_stream, joint.scenario.problem_stream);
            assert_eq!(fixed.feasible, adapt.feasible);
            assert_eq!(fixed.schedulable, adapt.schedulable);
            assert_eq!(fixed.schedulable, joint.schedulable);
            assert_eq!(fixed.n_rt, joint.n_rt);
            if !fixed.schedulable {
                continue;
            }
            // HYDRA already grants greedy minimal periods, so the greedy
            // re-adaptation is a fixed point of its allocations…
            assert_eq!(fixed.cumulative_tightness, adapt.cumulative_tightness);
            assert_eq!(fixed.period_slack, adapt.period_slack);
            assert_eq!(fixed.freq_ratio, adapt.freq_ratio);
            // …and the joint refinement starts from greedy, so it never
            // loses cumulative tightness. (Frequency ratio and slack are not
            // monotonic across policies: stretching a high-priority period
            // can let the tasks below it run faster.)
            let (f, j) = (
                fixed.cumulative_tightness.unwrap(),
                joint.cumulative_tightness.unwrap(),
            );
            assert!(j >= f - 1e-12, "joint {j} lost to fixed {f}");
            for o in triple {
                let ratio = o.freq_ratio.unwrap();
                let slack = o.period_slack.unwrap();
                assert!((0.0..=1.0 + 1e-12).contains(&ratio), "freq ratio {ratio}");
                assert!((0.0..=1.0).contains(&slack), "period slack {slack}");
            }
        }
    }

    #[test]
    fn precedence_allocations_keep_their_granted_periods_under_every_policy() {
        use crate::spec::PeriodPolicy;
        // The precedence scheme guarantees successor periods >= predecessor
        // periods across cores — an invariant the per-core re-optimisation
        // cannot preserve, so adapt/joint must be no-ops for it.
        let mut spec = tiny_spec();
        spec.allocators = vec![AllocatorKind::Precedence];
        spec.period_policies = vec![
            PeriodPolicy::Fixed,
            PeriodPolicy::Adapt,
            PeriodPolicy::Joint,
        ];
        let result = Executor::serial().run(&spec);
        for triple in result.outcomes.chunks(3) {
            for o in &triple[1..] {
                assert_eq!(o.cumulative_tightness, triple[0].cumulative_tightness);
                assert_eq!(o.mean_tightness, triple[0].mean_tightness);
                assert_eq!(o.period_slack, triple[0].period_slack);
                assert_eq!(o.freq_ratio, triple[0].freq_ratio);
            }
        }
    }

    #[test]
    fn low_utilization_synthetic_scenarios_schedule() {
        let mut spec = tiny_spec();
        spec.utilizations = UtilizationGrid::Fractions(vec![0.1]);
        let result = Executor::serial().run(&spec);
        for outcome in &result.outcomes {
            assert!(outcome.feasible);
            assert!(
                outcome.schedulable,
                "{:?} failed: {:?}",
                outcome.scenario.allocator, outcome.error
            );
            let eta = outcome.cumulative_tightness.unwrap();
            assert!(eta > 0.0);
        }
    }

    #[test]
    fn detection_scenarios_measure_latencies() {
        let mut spec = ScenarioSpec::uav_detection("uav", 30, 25);
        spec.cores = vec![2];
        let result = Executor::with_threads(2).run(&spec);
        assert_eq!(result.outcomes.len(), 2);
        for outcome in &result.outcomes {
            assert!(outcome.schedulable);
            let d = outcome.detection.as_ref().unwrap();
            assert_eq!(d.injected, 25);
            assert!(d.detected > 0);
            assert_eq!(d.missed, d.injected - d.detected);
            assert!(d.max_ms >= d.p95_ms && d.p95_ms >= d.median_ms);
            assert!(d.latencies_ms.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn throughput_is_reported_and_always_finite() {
        let mut spec = tiny_spec();
        spec.trials = 1;
        let result = Executor::serial().run(&spec);
        assert!(result.scenarios_per_sec().unwrap() > 0.0);
        assert_eq!(result.threads, 1);
        // Regression: an elapsed time below timer resolution used to report
        // f64::INFINITY; it must surface as None instead.
        let degenerate = SweepResult {
            elapsed: Duration::ZERO,
            ..result
        };
        assert_eq!(degenerate.scenarios_per_sec(), None);
    }

    #[test]
    fn streaming_matches_the_buffered_run_byte_for_byte() {
        let spec = tiny_spec();
        let buffered = Executor::serial().run(&spec);
        let mut jsonl = JsonlSink::new(Vec::new());
        let summary = Executor::with_threads(4)
            .run_streaming(&spec, &mut jsonl)
            .unwrap();
        assert_eq!(summary.grid_len, buffered.outcomes.len());
        assert_eq!(summary.evaluated(), buffered.outcomes.len());
        assert_eq!(
            String::from_utf8(jsonl.into_inner()).unwrap(),
            to_jsonl(&buffered.outcomes)
        );
        // The merged per-worker partials equal the buffered aggregation.
        assert_eq!(
            summary.partial.rows(),
            crate::agg::aggregate(&buffered.outcomes)
        );
    }

    #[test]
    fn shard_ranges_tile_the_grid_and_concatenate_exactly() {
        let spec = tiny_spec();
        let full = Executor::serial().run(&spec);
        let n = full.outcomes.len();
        for count in [1usize, 2, 3, 5] {
            // The ranges tile [0, n) without gaps or overlap.
            let mut covered = 0;
            let mut jsonl_parts: Vec<u8> = Vec::new();
            let mut csv_parts: Vec<u8> = Vec::new();
            for index in 1..=count {
                let range = shard_range(n, index, count);
                assert_eq!(range.start, covered);
                covered = range.end;
                let mut jsonl = JsonlSink::new(Vec::new());
                let mut csv = CsvSink::new(Vec::new(), index == 1);
                let summary = Executor::with_threads(2)
                    .run_streaming_range(&spec, range.clone(), &mut jsonl)
                    .unwrap();
                assert_eq!(summary.range, range);
                Executor::serial()
                    .run_streaming_range(&spec, range, &mut csv)
                    .unwrap();
                jsonl_parts.extend(jsonl.into_inner());
                csv_parts.extend(csv.into_inner());
            }
            assert_eq!(covered, n);
            assert_eq!(
                String::from_utf8(jsonl_parts).unwrap(),
                to_jsonl(&full.outcomes),
                "{count} JSONL shards"
            );
            assert_eq!(
                String::from_utf8(csv_parts).unwrap(),
                to_csv(&full.outcomes),
                "{count} CSV shards"
            );
        }
    }

    #[test]
    fn sink_errors_abort_the_sweep() {
        struct FailAfter(usize);
        impl OutcomeSink for FailAfter {
            fn record(&mut self, _: &ScenarioOutcome) -> std::io::Result<()> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("sink full"));
                }
                self.0 -= 1;
                Ok(())
            }
        }
        let spec = tiny_spec();
        for executor in [Executor::serial(), Executor::with_threads(3)] {
            let err = executor
                .run_streaming(&spec, &mut FailAfter(2))
                .expect_err("the sink error must propagate");
            assert_eq!(err.to_string(), "sink full");
        }
    }

    #[test]
    fn out_of_grid_and_inverted_ranges_clamp_to_empty() {
        let spec = tiny_spec();
        #[allow(clippy::reversed_empty_ranges)]
        for range in [100..200, 10..5, 3..3] {
            let mut sink = VecSink::new();
            let summary = Executor::serial()
                .run_streaming_range(&spec, range, &mut sink)
                .unwrap();
            assert_eq!(summary.evaluated(), 0);
            assert!(summary.partial.is_empty());
            assert!(sink.into_outcomes().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "shard index")]
    fn zero_shard_index_is_rejected() {
        let _ = shard_range(10, 0, 2);
    }
}
