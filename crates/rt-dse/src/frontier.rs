//! Frontier-seeking adaptive sweeps: deterministic utilization-cliff search
//! replacing exhaustive grids.
//!
//! An exhaustive sweep spends most of its budget far from the only region
//! that matters: the *acceptance cliff*, the narrow utilization band where a
//! scheme's acceptance ratio collapses from ≈1 to ≈0. The frontier mode
//! finds that band directly. Per `(cores, allocator, policy)` **slice** it
//! runs a two-phase driver:
//!
//! 1. **Phase A — bisection.** Round-synchronous probes over the *reference
//!    grid* ([`crate::spec::UtilizationGrid::points`] for the slice's core
//!    count): round 0 probes each slice's endpoints, every later round
//!    probes the bracket midpoint of each unresolved slice, until the cliff
//!    is bracketed by two *adjacent* grid indices — so the located cliff is
//!    within one exhaustive-grid step by construction. A probe's acceptance
//!    ratio is `scheduled / feasible` over the spec's `trials`, and the
//!    cliff threshold is `0.5`. Probe rounds are never emitted and never
//!    checkpointed: they are cheap, deterministic, and simply replayed
//!    (memo-warm) on resume.
//! 2. **Phase B — emission.** A *refinement plan* — a pure function of the
//!    final brackets — spends [`crate::spec::FrontierConfig::refine_budget`]
//!    extra points per slice: half bracketing the cliff outward on the
//!    reference grid (`lo−1, hi+1, lo−2, hi+2, …`), half van der Corput
//!    base-2 low-discrepancy samples over the rest of the axis. The union
//!    of probed and refinement points becomes one flat scenario list —
//!    slice-major, utilizations ascending within each slice, trials
//!    innermost — streamed through the ordinary executor with full
//!    parallelism, so the existing sink/checkpoint/shard machinery applies
//!    unchanged.
//!
//! # Determinism
//!
//! Every probe round runs through the deterministic executor, so its
//! acceptance ratios — and therefore the bisection decisions, the
//! refinement plan and all emitted bytes — are independent of thread count.
//! Problem streams are the **positional** ones the exhaustive grid assigns
//! to the same `(cores, utilization, trial)` point, so every probe and
//! emitted scenario evaluates exactly the task set an exhaustive sweep of
//! the same spec would: Phase A warms the exact memo entries Phase B reads,
//! the allocator/policy axes stay problem-paired, and the probed acceptance
//! curve is a pointwise sample of the exhaustive curve. The emitted bytes
//! are *not* expected to equal an exhaustive run's (scenario indices and
//! emission order differ — the point is to evaluate far fewer scenarios);
//! cliff-bracket agreement with a dense exhaustive reference is the
//! contract, enforced exactly by the `frontier` bench gate.
//!
//! # Sharding and resume
//!
//! The plan always covers *all* slices, so scenario indices are absolute;
//! a shard runs the contiguous scenario range of its slice subset
//! ([`FrontierPlan::shard_scenario_range`]) and shard outputs concatenate
//! byte-identically, exactly like exhaustive shards. Resume re-derives the
//! plan (Phase A replays against the warm memo store) and continues Phase B
//! from the checkpointed index; the checkpoint's `plan_points` header pins
//! the plan length so a diverging plan is rejected instead of spliced.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

use rt_core::batch::BatchMode;

use crate::agg::SweepAccumulator;
use crate::api::{SweepHandle, SweepSession};
use crate::exec::{shard_range, Executor, StreamSummary};
use crate::memo::MemoCache;
use crate::obs::{SweepObs, ENGINE_TRACK};
use crate::scenario::Scenario;
use crate::sink::{OutcomeSink, VecSink};
use crate::spec::{AllocatorKind, ExploreMode, FrontierConfig, PeriodPolicy, ScenarioSpec};

/// The acceptance ratio the bisection hunts the crossing of.
const CLIFF_THRESHOLD: f64 = 0.5;

// Problem streams are the *positional* ones the exhaustive grid assigns
// (see `ScenarioGrid::expand`): stream = base(cores) + util_index × trials
// + trial, with allocator/policy variants sharing the address. Every
// frontier probe and emission therefore evaluates exactly the task set an
// exhaustive sweep draws at the same grid point — the bisected acceptance
// curve is a pointwise sample of the exhaustive curve, not merely a
// statistical twin, which is what lets the `frontier` bench gate verify
// cliff brackets against a dense reference exactly.

/// The radical-inverse (van der Corput) sequence in base 2: `k = 1, 2, 3…`
/// maps to `0.5, 0.25, 0.75, 0.125…` — a deterministic low-discrepancy
/// cover of `(0, 1)` used to spread refinement points over the unprobed
/// remainder of the utilization axis.
fn van_der_corput(mut k: u64) -> f64 {
    let mut v = 0.0;
    let mut denom = 1.0;
    while k > 0 {
        denom *= 2.0;
        v += (k & 1) as f64 / denom;
        k >>= 1;
    }
    v
}

/// One `(cores, allocator, policy)` slice of a frontier plan: its final
/// cliff bracket on the reference grid and the utilization points Phase B
/// emits for it.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierSlice {
    /// Number of cores.
    pub cores: usize,
    /// Allocation scheme.
    pub allocator: AllocatorKind,
    /// Period policy.
    pub policy: PeriodPolicy,
    /// Size of the reference utilization grid for this core count.
    pub grid_points: usize,
    /// Distinct utilization points probed during the Phase A bisection.
    pub probed: usize,
    /// Utilization values Phase B emits (probed ∪ refinement), ascending.
    pub points: Vec<f64>,
    /// Highest reference-grid utilization whose acceptance ratio still
    /// reached [`CLIFF_THRESHOLD`]; `None` when the slice rejects already at
    /// the grid's first point.
    pub cliff_lo: Option<f64>,
    /// Lowest reference-grid utilization whose acceptance ratio fell below
    /// the threshold; `None` when the slice accepts through the grid's last
    /// point.
    pub cliff_hi: Option<f64>,
}

/// One row of the frontier artifact: a probed utilization point of one
/// slice with its Phase-B aggregates, the slice's cliff bracket, and the
/// in-slice Pareto-front membership over
/// `(acceptance_ratio, mean_tightness, mean_freq_ratio)` (all maximised).
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRow {
    /// Number of cores.
    pub cores: usize,
    /// Allocation scheme.
    pub allocator: AllocatorKind,
    /// Period policy.
    pub policy: PeriodPolicy,
    /// Utilization of this point.
    pub utilization: f64,
    /// Scenarios emitted at this point (the spec's trial count).
    pub scenarios: usize,
    /// Scenarios whose task set passed the Eq. (1) filter.
    pub feasible: usize,
    /// Scenarios the scheme scheduled.
    pub scheduled: usize,
    /// `scheduled / feasible` (`0` when nothing was feasible).
    pub acceptance_ratio: f64,
    /// Mean cumulative tightness over the scheduled scenarios.
    pub mean_tightness: f64,
    /// Mean achieved-vs-desired monitoring-frequency ratio.
    pub mean_freq_ratio: f64,
    /// The slice's cliff bracket, low side (see [`FrontierSlice::cliff_lo`]).
    pub cliff_lo: Option<f64>,
    /// The slice's cliff bracket, high side (see
    /// [`FrontierSlice::cliff_hi`]).
    pub cliff_hi: Option<f64>,
    /// Whether no other point of the same slice weakly dominates this one on
    /// `(acceptance_ratio, mean_tightness, mean_freq_ratio)`.
    pub pareto: bool,
}

/// The deterministic product of Phase A: per-slice cliff brackets plus the
/// flat Phase-B scenario list. Derivable from the spec alone (plus the warm
/// memo), so resume and sharding recompute it instead of persisting it.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPlan {
    /// Per-slice search results, in spec order
    /// (cores → allocator → policy).
    pub slices: Vec<FrontierSlice>,
    /// The flat emission list: slice-major, utilizations ascending within a
    /// slice, trials innermost. Every [`Scenario::index`] equals its
    /// position, so the list feeds the executor's streaming core directly.
    pub scenarios: Vec<Scenario>,
    /// Trials per utilization point (copied from the spec; the emission
    /// granularity checkpoints must align to).
    pub trials: usize,
    /// Scenarios evaluated by the Phase A probe rounds.
    pub probe_evals: usize,
    /// Whether the bisection was cancelled before completing. A cancelled
    /// plan must not be emitted (its brackets are partial).
    pub cancelled: bool,
}

impl FrontierPlan {
    /// Number of scenarios Phase B emits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the plan emits nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The contiguous scenario range shard `index` of `count` emits: the
    /// slice list is split like [`shard_range`] and mapped to scenario
    /// offsets. Slice-major emission makes shard outputs concatenate
    /// byte-identically to a full run.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= index <= count` (as [`shard_range`]).
    #[must_use]
    pub fn shard_scenario_range(&self, index: usize, count: usize) -> Range<usize> {
        let slices = shard_range(self.slices.len(), index, count);
        let offset = |slice_idx: usize| -> usize {
            self.slices[..slice_idx]
                .iter()
                .map(|s| s.points.len() * self.trials)
                .sum()
        };
        offset(slices.start)..offset(slices.end)
    }

    /// Builds the frontier artifact rows from the final aggregates of the
    /// emitted range: one row per `(slice, utilization)` point present in
    /// `agg`, with the in-slice Pareto flags computed over
    /// `(acceptance_ratio, mean_tightness, mean_freq_ratio)`. A sharded or
    /// cancelled run yields rows only for the points its aggregate covers.
    #[must_use]
    pub fn rows(&self, agg: &SweepAccumulator) -> Vec<FrontierRow> {
        let by_key: BTreeMap<(usize, AllocatorKind, PeriodPolicy, u64), crate::agg::AggregateRow> =
            agg.rows()
                .into_iter()
                .map(|row| {
                    let bits = row.utilization.map_or(0, f64::to_bits);
                    ((row.cores, row.allocator, row.policy, bits), row)
                })
                .collect();
        let mut out = Vec::new();
        for slice in &self.slices {
            let start = out.len();
            for &util in &slice.points {
                let key = (slice.cores, slice.allocator, slice.policy, util.to_bits());
                let Some(row) = by_key.get(&key) else {
                    continue;
                };
                out.push(FrontierRow {
                    cores: slice.cores,
                    allocator: slice.allocator,
                    policy: slice.policy,
                    utilization: util,
                    scenarios: row.scenarios,
                    feasible: row.feasible,
                    scheduled: row.scheduled,
                    acceptance_ratio: row.acceptance_ratio,
                    mean_tightness: row.mean_tightness,
                    mean_freq_ratio: row.mean_freq_ratio,
                    cliff_lo: slice.cliff_lo,
                    cliff_hi: slice.cliff_hi,
                    pareto: false,
                });
            }
            mark_pareto(&mut out[start..]);
        }
        out
    }
}

/// Flags the non-dominated rows of one slice: row `i` is on the front
/// unless some row `j` is at least as good on all three objectives and
/// strictly better on one.
fn mark_pareto(rows: &mut [FrontierRow]) {
    let objectives: Vec<[f64; 3]> = rows
        .iter()
        .map(|r| [r.acceptance_ratio, r.mean_tightness, r.mean_freq_ratio])
        .collect();
    for (i, row) in rows.iter_mut().enumerate() {
        let dominated = objectives.iter().enumerate().any(|(j, other)| {
            j != i
                && other
                    .iter()
                    .zip(&objectives[i])
                    .all(|(o, s)| o.total_cmp(s).is_ge())
                && other
                    .iter()
                    .zip(&objectives[i])
                    .any(|(o, s)| o.total_cmp(s).is_gt())
        });
        row.pareto = !dominated;
    }
}

/// Bisection state of one slice during Phase A.
struct SliceSearch {
    cores: usize,
    allocator: AllocatorKind,
    policy: PeriodPolicy,
    /// The reference utilization grid for this core count.
    utils: Vec<f64>,
    /// First positional problem stream of this core count's grid block
    /// (the exhaustive grid numbers streams sequentially across core
    /// counts; allocator/policy share, so the base is per-cores).
    stream_base: u64,
    /// Reference-grid indices probed so far.
    probed: Vec<usize>,
    /// Highest index whose acceptance reached the threshold.
    lo: Option<usize>,
    /// Lowest index whose acceptance fell below the threshold.
    hi: Option<usize>,
    resolved: bool,
}

impl SliceSearch {
    /// The positional (exhaustive-grid) problem stream of grid point
    /// `index`, trial `trial` — identical for every allocator/policy slice
    /// of the same core count, matching [`crate::ScenarioGrid::expand`].
    fn stream(&self, index: usize, trial: usize, trials: usize) -> u64 {
        self.stream_base + (index as u64) * (trials.max(1) as u64) + trial as u64
    }

    /// The midpoint probe of the current bracket, when still unresolved.
    fn midpoint(&self) -> Option<usize> {
        if self.resolved {
            return None;
        }
        let (lo, hi) = (self.lo?, self.hi?);
        (hi - lo > 1).then_some(lo + (hi - lo) / 2)
    }

    /// Commits one probe's acceptance ratio and tightens the bracket.
    fn commit(&mut self, index: usize, acceptance: f64) {
        self.probed.push(index);
        if acceptance >= CLIFF_THRESHOLD {
            self.lo = Some(self.lo.map_or(index, |lo| lo.max(index)));
        } else {
            self.hi = Some(self.hi.map_or(index, |hi| hi.min(index)));
        }
        self.resolved = match (self.lo, self.hi) {
            (Some(lo), Some(hi)) => hi.saturating_sub(lo) <= 1,
            // One-sided results only resolve once both endpoints are in
            // (round 0 probes both); a single-point grid resolves on the
            // side its lone probe landed.
            _ => self.probed.len() >= self.utils.len().min(2),
        };
    }
}

/// The frontier-mode driver: wraps one [`SweepSession`]'s configuration,
/// owns the memo the two phases share, and exposes
/// [`FrontierRunner::plan`] (Phase A) plus [`FrontierRunner::run`]
/// (Phase B). The session's `range` builder is ignored — frontier ranges
/// are plan-relative ([`FrontierPlan::shard_scenario_range`]).
#[derive(Debug)]
pub struct FrontierRunner {
    spec: ScenarioSpec,
    config: FrontierConfig,
    threads: usize,
    batch: BatchMode,
    obs: SweepObs,
    handle: SweepHandle,
    /// Shared by every probe round and the emission phase, so Phase A warms
    /// exactly the entries Phase B reads. Cumulative counters: a summary's
    /// [`StreamSummary::memo`] covers everything up to that point.
    memo: Arc<MemoCache>,
}

impl FrontierRunner {
    /// Builds the driver from a configured session. The spec's
    /// [`ExploreMode::Frontier`] config applies; a session still set to
    /// [`ExploreMode::Exhaustive`] gets the default [`FrontierConfig`].
    #[must_use]
    pub fn new(session: SweepSession) -> Self {
        let config = match session.spec.explore {
            ExploreMode::Frontier(config) => config,
            ExploreMode::Exhaustive => FrontierConfig::default(),
        };
        let mut memo = MemoCache::with_observability(&session.obs.registry().shard(ENGINE_TRACK));
        if let Some(store) = &session.store {
            memo = memo.backed_by(Arc::clone(store));
        }
        FrontierRunner {
            spec: session.spec,
            config,
            threads: session.threads,
            batch: session.batch,
            obs: session.obs,
            handle: session.handle,
            memo: Arc::new(memo),
        }
    }

    /// The spec this driver explores.
    #[must_use]
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The cancellation/progress handle (shared with the session it was
    /// built from). Progress totals reset at each probe round and again at
    /// Phase B — `total` only becomes stable once emission starts.
    #[must_use]
    pub fn handle(&self) -> SweepHandle {
        self.handle.clone()
    }

    fn executor(&self) -> Executor {
        Executor::with_threads(self.threads)
            .with_batch_mode(self.batch)
            .with_observability(self.obs.clone())
            .with_handle(self.handle.clone())
            .with_shared_memo(Arc::clone(&self.memo))
    }

    /// Phase A: bisects every slice's acceptance cliff and derives the
    /// refinement plan. Deterministic for a fixed spec — independent of
    /// thread count — because every probe round runs through the
    /// deterministic executor and every later decision is a pure function
    /// of committed round results. Cancellation marks the returned plan
    /// [`FrontierPlan::cancelled`]; such a plan must not be emitted.
    #[must_use]
    pub fn plan(&self) -> FrontierPlan {
        let trials = self.spec.trials;
        let mut searches: Vec<SliceSearch> = Vec::new();
        let mut stream_base = 0u64;
        for &cores in &self.spec.cores {
            let utils = self.spec.utilizations.points(cores);
            for &allocator in &self.spec.allocators {
                for &policy in &self.spec.period_policies {
                    searches.push(SliceSearch {
                        cores,
                        allocator,
                        policy,
                        utils: utils.clone(),
                        stream_base,
                        probed: Vec::new(),
                        lo: None,
                        hi: None,
                        resolved: false,
                    });
                }
            }
            // The exhaustive grid numbers one stream per (util, trial)
            // across core counts in order; the next block starts past ours.
            stream_base += utils.len() as u64 * trials.max(1) as u64;
        }

        let mut probe_evals = 0;
        let mut cancelled = false;
        if trials > 0 {
            // Round 0: both endpoints of every non-empty slice.
            let mut requests: Vec<(usize, usize)> = Vec::new();
            for (s, search) in searches.iter().enumerate() {
                match search.utils.len() {
                    0 => {}
                    1 => requests.push((s, 0)),
                    n => requests.extend([(s, 0), (s, n - 1)]),
                }
            }
            loop {
                if requests.is_empty() {
                    break;
                }
                probe_evals += requests.len() * trials;
                let Some(ratios) = self.probe(&searches, &requests, trials) else {
                    cancelled = true;
                    break;
                };
                for (&(s, index), &acceptance) in requests.iter().zip(&ratios) {
                    searches[s].commit(index, acceptance);
                }
                // Next round: the bracket midpoints of unresolved slices.
                requests = searches
                    .iter()
                    .enumerate()
                    .filter_map(|(s, search)| search.midpoint().map(|mid| (s, mid)))
                    .collect();
            }
        }

        let mut slices = Vec::with_capacity(searches.len());
        let mut scenarios = Vec::new();
        for search in &searches {
            let indices = emission_indices(search, self.config.refine_budget);
            let points: Vec<f64> = indices.iter().map(|&i| search.utils[i]).collect();
            for &i in &indices {
                for trial in 0..trials {
                    scenarios.push(Scenario {
                        index: scenarios.len(),
                        cores: search.cores,
                        utilization: Some(search.utils[i]),
                        allocator: search.allocator,
                        policy: search.policy,
                        trial,
                        problem_stream: search.stream(i, trial, trials),
                    });
                }
            }
            slices.push(FrontierSlice {
                cores: search.cores,
                allocator: search.allocator,
                policy: search.policy,
                grid_points: search.utils.len(),
                probed: search.probed.len(),
                points,
                cliff_lo: search.lo.map(|i| search.utils[i]),
                cliff_hi: search.hi.map(|i| search.utils[i]),
            });
        }
        FrontierPlan {
            slices,
            scenarios,
            trials,
            probe_evals,
            cancelled,
        }
    }

    /// Evaluates one probe round and returns each request's acceptance
    /// ratio, or `None` when the round was cancelled mid-flight (partial
    /// ratios must never feed the bisection).
    fn probe(
        &self,
        searches: &[SliceSearch],
        requests: &[(usize, usize)],
        trials: usize,
    ) -> Option<Vec<f64>> {
        let mut scenarios = Vec::with_capacity(requests.len() * trials);
        for &(s, index) in requests {
            let search = &searches[s];
            let util = search.utils[index];
            for trial in 0..trials {
                scenarios.push(Scenario {
                    index: scenarios.len(),
                    cores: search.cores,
                    utilization: Some(util),
                    allocator: search.allocator,
                    policy: search.policy,
                    trial,
                    problem_stream: search.stream(index, trial, trials),
                });
            }
        }
        let mut sink = VecSink::new();
        let summary = self
            .executor()
            .run_scenario_list(&self.spec, &scenarios, 0..scenarios.len(), &mut sink)
            .expect("a VecSink never raises I/O errors");
        if summary.cancelled {
            return None;
        }
        let outcomes = sink.into_outcomes();
        Some(
            outcomes
                .chunks(trials)
                .map(|chunk| {
                    let feasible = chunk.iter().filter(|o| o.feasible).count();
                    let scheduled = chunk.iter().filter(|o| o.schedulable).count();
                    if feasible == 0 {
                        0.0
                    } else {
                        scheduled as f64 / feasible as f64
                    }
                })
                .collect(),
        )
    }

    /// Phase B: streams the plan's scenarios in `range` (clamped) into
    /// `sink` in plan order with full parallelism — the shard/resume entry
    /// point. [`StreamSummary::memo`] reports the shared memo's cumulative
    /// counters (probe rounds included).
    ///
    /// # Errors
    ///
    /// Propagates the first sink I/O error (the run aborts early).
    pub fn run(
        &self,
        plan: &FrontierPlan,
        range: Range<usize>,
        sink: &mut dyn OutcomeSink,
    ) -> std::io::Result<StreamSummary> {
        self.executor()
            .run_scenario_list(&self.spec, &plan.scenarios, range, sink)
    }

    /// Convenience: Phase A then the full Phase B. A cancellation during
    /// Phase A returns the cancelled plan with an empty summary (nothing
    /// was emitted).
    ///
    /// # Errors
    ///
    /// Propagates the first sink I/O error from the emission phase.
    pub fn explore(
        &self,
        sink: &mut dyn OutcomeSink,
    ) -> std::io::Result<(FrontierPlan, StreamSummary)> {
        let plan = self.plan();
        if plan.cancelled {
            let summary = StreamSummary {
                name: self.spec.name.clone(),
                grid_len: plan.len(),
                range: 0..0,
                partial: SweepAccumulator::new(),
                memo: self.memo.stats(),
                elapsed: Duration::ZERO,
                threads: self.threads.max(1),
                cancelled: true,
            };
            return Ok((plan, summary));
        }
        let summary = self.run(&plan, 0..plan.len(), sink)?;
        Ok((plan, summary))
    }
}

/// The emission indices of one finished slice search: the probed indices,
/// plus up to `budget` refinement points — half bracketing the cliff
/// outward (`lo−1, hi+1, lo−2, hi+2, …`), half van der Corput base-2
/// samples over the rest of the axis — deduplicated and ascending. A pure
/// function of the committed search state, so every shard and resume
/// derives the identical plan.
fn emission_indices(search: &SliceSearch, budget: usize) -> Vec<usize> {
    let n = search.utils.len();
    if n == 0 {
        return Vec::new();
    }
    let mut chosen: Vec<bool> = vec![false; n];
    let mut count = 0;
    let insert = |chosen: &mut Vec<bool>, index: usize| -> bool {
        if chosen[index] {
            false
        } else {
            chosen[index] = true;
            true
        }
    };
    for &i in &search.probed {
        if insert(&mut chosen, i) {
            count += 1;
        }
    }

    // Half the budget walks outward from the bracket, alternating sides.
    let bracket_budget = budget.div_ceil(2);
    let mut added = 0;
    let mut step = 1usize;
    while added < bracket_budget && count < n {
        let below = search
            .lo
            .or(search.hi)
            .and_then(|anchor| anchor.checked_sub(step));
        let above = search
            .hi
            .or(search.lo)
            .map(|anchor| anchor + step)
            .filter(|&i| i < n);
        if below.is_none() && above.is_none() {
            break;
        }
        for index in [below, above].into_iter().flatten() {
            if added >= bracket_budget || count >= n {
                break;
            }
            if insert(&mut chosen, index) {
                added += 1;
                count += 1;
            }
        }
        step += 1;
    }

    // The other half spreads low-discrepancy samples over the whole axis
    // (skipping points already taken). The iteration cap guarantees
    // termination on small grids.
    let ld_budget = budget - bracket_budget;
    let mut added = 0;
    let mut k = 1u64;
    let cap = 8 * n as u64 + 16;
    while added < ld_budget && count < n && k <= cap {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let index = ((van_der_corput(k) * n as f64) as usize).min(n - 1);
        if insert(&mut chosen, index) {
            added += 1;
            count += 1;
        }
        k += 1;
    }

    (0..n).filter(|&i| chosen[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CsvSink, JsonlSink};
    use crate::spec::UtilizationGrid;

    fn frontier_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::synthetic("frontier-test");
        spec.cores = vec![2];
        // Per-core fractions past 1.0 so every scheme's cliff lies strictly
        // inside the grid (the normalized grids stop at 0.975/core, which
        // HYDRA can still accept).
        spec.utilizations =
            UtilizationGrid::Fractions((1..=24).map(|i| 0.05 * f64::from(i)).collect());
        spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::SingleCore];
        spec.trials = 4;
        spec.explore = ExploreMode::Frontier(FrontierConfig { refine_budget: 4 });
        spec
    }

    fn runner(threads: usize) -> FrontierRunner {
        FrontierRunner::new(SweepSession::new(frontier_spec()).threads(threads))
    }

    #[test]
    fn plans_are_identical_across_thread_counts() {
        let reference = runner(1).plan();
        assert!(!reference.cancelled);
        assert!(!reference.is_empty());
        for threads in [2, 4] {
            assert_eq!(runner(threads).plan(), reference);
        }
    }

    #[test]
    fn bisection_brackets_are_adjacent_grid_steps() {
        let plan = runner(1).plan();
        assert_eq!(plan.slices.len(), 2);
        let utils = frontier_spec().utilizations.points(2);
        for slice in &plan.slices {
            let (Some(lo), Some(hi)) = (slice.cliff_lo, slice.cliff_hi) else {
                panic!("a grid reaching 1.2 utilization per core must bracket the cliff");
            };
            let lo_idx = utils.iter().position(|&u| u == lo).unwrap();
            let hi_idx = utils.iter().position(|&u| u == hi).unwrap();
            assert_eq!(hi_idx, lo_idx + 1, "bracket must be one grid step");
            // Far fewer points than the exhaustive grid.
            assert!(slice.points.len() < utils.len() / 2);
            // Emission points are sorted and unique.
            assert!(slice.points.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn emission_is_byte_identical_across_thread_counts() {
        let reference_plan = runner(1).plan();
        let mut reference = JsonlSink::new(Vec::new());
        runner(1)
            .run(&reference_plan, 0..reference_plan.len(), &mut reference)
            .unwrap();
        let reference = reference.into_inner();
        assert!(!reference.is_empty());
        for threads in [2, 4] {
            let r = runner(threads);
            let plan = r.plan();
            let mut sink = JsonlSink::new(Vec::new());
            r.run(&plan, 0..plan.len(), &mut sink).unwrap();
            assert_eq!(sink.into_inner(), reference, "threads={threads}");
        }
    }

    #[test]
    fn slice_shards_concatenate_to_the_full_run() {
        let r = runner(2);
        let plan = r.plan();
        let mut full_csv = CsvSink::new(Vec::new(), true);
        r.run(&plan, 0..plan.len(), &mut full_csv).unwrap();
        let full = full_csv.into_inner();
        let mut joined = Vec::new();
        for shard in 1..=2 {
            let range = plan.shard_scenario_range(shard, 2);
            let mut sink = CsvSink::new(Vec::new(), shard == 1);
            r.run(&plan, range, &mut sink).unwrap();
            joined.extend_from_slice(&sink.into_inner());
        }
        assert_eq!(joined, full);
        // The shard split is a partition of the scenario list.
        assert_eq!(plan.shard_scenario_range(1, 2).start, 0);
        assert_eq!(
            plan.shard_scenario_range(1, 2).end,
            plan.shard_scenario_range(2, 2).start
        );
        assert_eq!(plan.shard_scenario_range(2, 2).end, plan.len());
    }

    #[test]
    fn frontier_rows_carry_cliffs_and_a_nonempty_pareto_front() {
        let r = runner(2);
        let mut sink = VecSink::new();
        let (plan, summary) = r.explore(&mut sink).unwrap();
        assert!(!summary.cancelled);
        let rows = plan.rows(&summary.partial);
        assert_eq!(
            rows.len(),
            plan.slices.iter().map(|s| s.points.len()).sum::<usize>()
        );
        for slice in &plan.slices {
            let slice_rows: Vec<&FrontierRow> = rows
                .iter()
                .filter(|row| {
                    row.cores == slice.cores
                        && row.allocator == slice.allocator
                        && row.policy == slice.policy
                })
                .collect();
            assert_eq!(slice_rows.len(), slice.points.len());
            assert!(slice_rows.iter().any(|row| row.pareto));
            for row in slice_rows {
                assert_eq!(row.cliff_lo, slice.cliff_lo);
                assert_eq!(row.cliff_hi, slice.cliff_hi);
                assert_eq!(row.scenarios, plan.trials);
            }
        }
        // The artifact rendering matches its header's arity.
        let csv = crate::sink::frontier_to_csv(&rows);
        let commas = crate::sink::FRONTIER_HEADER.matches(',').count();
        for line in csv.lines() {
            assert_eq!(line.matches(',').count(), commas, "{line}");
        }
    }

    #[test]
    fn probe_streams_pair_allocators_on_the_same_problem() {
        // Positional streams: every emitted scenario carries exactly the
        // problem stream the exhaustive grid assigns to the same
        // (cores, utilization, trial, allocator, policy) point, so frontier
        // runs sample the very curve an exhaustive sweep measures.
        let plan = runner(1).plan();
        let grid = crate::ScenarioGrid::expand(&frontier_spec());
        let exhaustive: std::collections::BTreeMap<_, u64> = grid
            .scenarios()
            .iter()
            .map(|s| {
                let bits = s.utilization.map_or(0, f64::to_bits);
                (
                    (s.cores, bits, s.trial, s.allocator, s.policy),
                    s.problem_stream,
                )
            })
            .collect();
        for s in &plan.scenarios {
            let bits = s.utilization.map_or(0, f64::to_bits);
            assert_eq!(
                exhaustive.get(&(s.cores, bits, s.trial, s.allocator, s.policy)),
                Some(&s.problem_stream),
                "frontier streams must be the exhaustive grid's positional streams"
            );
        }
        let streams_of = |kind: AllocatorKind| -> std::collections::BTreeMap<(u64, usize), u64> {
            plan.scenarios
                .iter()
                .filter(|s| s.allocator == kind)
                .map(|s| {
                    let bits = s.utilization.map_or(0, f64::to_bits);
                    ((bits, s.trial), s.problem_stream)
                })
                .collect()
        };
        let hydra = streams_of(AllocatorKind::Hydra);
        let single = streams_of(AllocatorKind::SingleCore);
        // The slices refine different points, but every address both slices
        // evaluate names the identical problem stream — the paired-join
        // contract. The probed endpoints guarantee a non-empty overlap.
        let shared: Vec<_> = hydra
            .iter()
            .filter(|(k, v)| single.get(k) == Some(v))
            .collect();
        assert!(!shared.is_empty());
        for (key, stream) in &hydra {
            if let Some(other) = single.get(key) {
                assert_eq!(stream, other, "shared address must share its stream");
            }
        }
    }

    #[test]
    fn cancelled_plans_refuse_emission() {
        let session = SweepSession::new(frontier_spec());
        let handle = session.handle();
        let r = FrontierRunner::new(session);
        handle.cancel();
        let mut sink = VecSink::new();
        let (plan, summary) = r.explore(&mut sink).unwrap();
        assert!(plan.cancelled);
        assert!(summary.cancelled);
        assert_eq!(summary.evaluated(), 0);
        assert!(sink.outcomes().is_empty());
    }

    #[test]
    fn van_der_corput_is_the_base2_radical_inverse() {
        let head: Vec<f64> = (1..=6).map(van_der_corput).collect();
        assert_eq!(head, vec![0.5, 0.25, 0.75, 0.125, 0.625, 0.375]);
    }

    #[test]
    fn degenerate_grids_still_plan() {
        // Single-point grid: the lone probe decides the side.
        let mut spec = frontier_spec();
        spec.utilizations = UtilizationGrid::Fractions(vec![0.2]);
        spec.allocators = vec![AllocatorKind::Hydra];
        let plan = FrontierRunner::new(SweepSession::new(spec).threads(1)).plan();
        assert_eq!(plan.slices.len(), 1);
        assert_eq!(plan.slices[0].points.len(), 1);
        assert!(plan.slices[0].cliff_lo.is_some() ^ plan.slices[0].cliff_hi.is_some());
        // No utilization axis: nothing to search, nothing to emit.
        let mut fixed = frontier_spec();
        fixed.utilizations = UtilizationGrid::NotApplicable;
        let plan = FrontierRunner::new(SweepSession::new(fixed).threads(1)).plan();
        assert!(plan.is_empty());
        assert!(plan.slices.iter().all(|s| s.points.is_empty()));
    }
}
