//! Expansion of a [`ScenarioSpec`] into concrete [`Scenario`] points.

use rand::Rng;
use taskgen::stream_rng;

use crate::scenario::Scenario;
use crate::spec::{Expansion, ScenarioSpec, Workload};

/// Salt mixed into the RNG used to *choose* sampled scenarios, so sampling
/// never shares a stream with problem generation.
const SAMPLE_SALT: u64 = 0x5ee1_ab1e_0000_0001;

/// The expanded scenario grid of one spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    scenarios: Vec<Scenario>,
    full_size: usize,
}

impl ScenarioGrid {
    /// Expands `spec` into its scenario points.
    ///
    /// The full grid is the cartesian product
    /// `cores × utilizations × trials × allocators × period policies`,
    /// enumerated in that nesting order (policy innermost). The *problem
    /// stream* — the seed address task-set generation uses — is derived from
    /// the position along the first three axes only, so every allocator and
    /// every period policy sees the identical problem instance at a given
    /// `(cores, utilization, trial)` point.
    ///
    /// With [`Expansion::Sampled`], a deterministic subset of at most the
    /// requested size is drawn (seeded from the spec's base seed) while
    /// preserving grid order and stream addresses.
    #[must_use]
    pub fn expand(spec: &ScenarioSpec) -> Self {
        let mut scenarios = Vec::new();
        let mut problem_stream = 0u64;
        for &cores in &spec.cores {
            // The utilization axis is owned by the workload: a fixed workload
            // (UAV case study) evaluates the identical problem regardless of
            // any configured grid, so it always expands exactly one pseudo
            // point — never N copies mislabelled with distinct utilizations.
            // Conversely a synthetic workload *needs* the axis: marking it
            // `NotApplicable` expands zero points rather than panicking in a
            // worker thread later.
            let utils: Vec<Option<f64>> = match &spec.workload {
                Workload::CaseStudyUav => vec![None],
                Workload::Synthetic(_) => spec
                    .utilizations
                    .points(cores)
                    .into_iter()
                    .map(Some)
                    .collect(),
            };
            for utilization in utils {
                for trial in 0..spec.trials.max(1) {
                    for &allocator in &spec.allocators {
                        for &policy in &spec.period_policies {
                            scenarios.push(Scenario {
                                index: scenarios.len(),
                                cores,
                                utilization,
                                allocator,
                                policy,
                                trial,
                                problem_stream,
                            });
                        }
                    }
                    problem_stream += 1;
                }
            }
        }
        let full_size = scenarios.len();

        if let Expansion::Sampled(target) = spec.expansion {
            if target < scenarios.len() {
                // Deterministic partial Fisher–Yates: draw `target` distinct
                // positions, then restore grid order and re-index.
                let mut rng = stream_rng(spec.base_seed, SAMPLE_SALT);
                let mut positions: Vec<usize> = (0..scenarios.len()).collect();
                for i in 0..target {
                    let j = rng.gen_range(i..positions.len());
                    positions.swap(i, j);
                }
                let mut chosen: Vec<usize> = positions[..target].to_vec();
                chosen.sort_unstable();
                scenarios = chosen
                    .into_iter()
                    .enumerate()
                    .map(|(new_index, old)| Scenario {
                        index: new_index,
                        ..scenarios[old]
                    })
                    .collect();
            }
        }

        ScenarioGrid {
            scenarios,
            full_size,
        }
    }

    /// The scenario points, in deterministic grid order.
    #[must_use]
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Consumes the grid, returning its points.
    #[must_use]
    pub fn into_scenarios(self) -> Vec<Scenario> {
        self.scenarios
    }

    /// Number of points after sampling.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Size of the full cartesian product before sampling.
    #[must_use]
    pub fn full_size(&self) -> usize {
        self.full_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AllocatorKind, Expansion, ScenarioSpec, UtilizationGrid};

    fn small_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::synthetic("test");
        spec.cores = vec![2, 4];
        spec.utilizations = UtilizationGrid::NormalizedSteps(3);
        spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::SingleCore];
        spec.trials = 2;
        spec
    }

    #[test]
    fn cartesian_product_has_the_expected_size_and_order() {
        let grid = ScenarioGrid::expand(&small_spec());
        // 2 cores × 3 utils × 2 trials × 2 allocators.
        assert_eq!(grid.len(), 24);
        assert_eq!(grid.full_size(), 24);
        for (i, s) in grid.scenarios().iter().enumerate() {
            assert_eq!(s.index, i);
        }
        // Allocator is the innermost axis: consecutive pairs share streams.
        let s = grid.scenarios();
        for pair in s.chunks(2) {
            assert_eq!(pair[0].problem_stream, pair[1].problem_stream);
            assert_ne!(pair[0].allocator, pair[1].allocator);
            assert_eq!(pair[0].cores, pair[1].cores);
            assert_eq!(pair[0].utilization, pair[1].utilization);
        }
    }

    #[test]
    fn period_policy_axis_is_innermost_and_shares_seed_addresses() {
        use crate::spec::PeriodPolicy;
        let mut spec = small_spec();
        spec.period_policies = vec![
            PeriodPolicy::Fixed,
            PeriodPolicy::Adapt,
            PeriodPolicy::Joint,
        ];
        let grid = ScenarioGrid::expand(&spec);
        // 2 cores × 3 utils × 2 trials × 2 allocators × 3 policies.
        assert_eq!(grid.len(), 72);
        // Policy is the innermost axis: consecutive triplets share the
        // allocator and the problem stream, differing only in policy.
        for triple in grid.scenarios().chunks(3) {
            assert_eq!(triple[0].policy, PeriodPolicy::Fixed);
            assert_eq!(triple[1].policy, PeriodPolicy::Adapt);
            assert_eq!(triple[2].policy, PeriodPolicy::Joint);
            for s in &triple[1..] {
                assert_eq!(s.allocator, triple[0].allocator);
                assert_eq!(s.problem_stream, triple[0].problem_stream);
                assert_eq!(s.cores, triple[0].cores);
                assert_eq!(s.utilization, triple[0].utilization);
                assert_eq!(s.trial, triple[0].trial);
            }
        }
    }

    #[test]
    fn an_empty_policy_axis_expands_to_nothing() {
        let mut spec = small_spec();
        spec.period_policies = Vec::new();
        assert!(ScenarioGrid::expand(&spec).is_empty());
    }

    #[test]
    fn problem_streams_are_unique_per_point() {
        let grid = ScenarioGrid::expand(&small_spec());
        let mut streams: Vec<u64> = grid
            .scenarios()
            .iter()
            .filter(|s| s.allocator == AllocatorKind::Hydra)
            .map(|s| s.problem_stream)
            .collect();
        let n = streams.len();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), n);
    }

    #[test]
    fn sampling_is_deterministic_and_preserves_addresses() {
        let mut spec = small_spec();
        spec.expansion = Expansion::Sampled(10);
        let a = ScenarioGrid::expand(&spec);
        let b = ScenarioGrid::expand(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(a.full_size(), 24);
        // Sampled points carry the stream address they had in the full grid.
        let full = ScenarioGrid::expand(&small_spec());
        for s in a.scenarios() {
            assert!(full.scenarios().iter().any(|f| {
                f.cores == s.cores
                    && f.utilization == s.utilization
                    && f.trial == s.trial
                    && f.allocator == s.allocator
                    && f.policy == s.policy
                    && f.problem_stream == s.problem_stream
            }));
        }
    }

    #[test]
    fn sampling_larger_than_grid_is_a_no_op() {
        let mut spec = small_spec();
        spec.expansion = Expansion::Sampled(1000);
        assert_eq!(ScenarioGrid::expand(&spec).len(), 24);
    }

    #[test]
    fn fixed_workloads_expand_without_a_utilization_axis() {
        let spec = ScenarioSpec::uav_detection("fig1", 60, 10);
        let grid = ScenarioGrid::expand(&spec);
        // 3 core counts × 2 allocators × 1 trial.
        assert_eq!(grid.len(), 6);
        assert!(grid.scenarios().iter().all(|s| s.utilization.is_none()));
    }

    #[test]
    fn fixed_workloads_ignore_a_configured_utilization_grid() {
        // A utilization axis on the UAV workload would only relabel copies
        // of the identical problem — the expander collapses it to one point.
        let mut spec = ScenarioSpec::uav_detection("fig1", 60, 10);
        spec.utilizations = UtilizationGrid::Fractions(vec![0.2, 0.5, 0.8]);
        let grid = ScenarioGrid::expand(&spec);
        assert_eq!(grid.len(), 6);
        assert!(grid.scenarios().iter().all(|s| s.utilization.is_none()));
    }

    #[test]
    fn synthetic_without_a_utilization_axis_expands_to_nothing() {
        // Synthetic generation needs a utilization; marking the axis
        // inapplicable yields an empty grid instead of a worker panic.
        let mut spec = small_spec();
        spec.utilizations = UtilizationGrid::NotApplicable;
        let grid = ScenarioGrid::expand(&spec);
        assert!(grid.is_empty());
    }
}
