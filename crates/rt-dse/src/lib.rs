//! # rt-dse — a parallel design-space exploration engine
//!
//! The paper this workspace reproduces is, in essence, one large
//! design-space exploration: sweep core counts, total utilizations and
//! security-task workloads, compare allocation schemes, aggregate. This
//! crate turns that pattern into declarative data plus a parallel engine:
//!
//! * [`ScenarioSpec`](spec::ScenarioSpec) — the axes of a sweep (cores,
//!   utilization grid, allocators, period policies, trials, seed) as a
//!   value,
//! * [`ScenarioGrid`](grid::ScenarioGrid) — cartesian or sampled expansion
//!   into concrete [`Scenario`](scenario::Scenario) points with
//!   deterministic per-point seed addresses,
//! * [`Executor`](exec::Executor) — a self-balancing worker pool (scoped
//!   threads pulling from a shared cursor) whose results are independent of
//!   thread count and evaluation order; the streaming entry points feed an
//!   [`OutcomeSink`](sink::OutcomeSink) in grid order through a reorder
//!   buffer, so memory stays O(threads + reorder window) instead of O(grid),
//! * [`MemoCache`](memo::MemoCache) — cross-scenario caching of generated
//!   problems, Eq. (1) feasibility verdicts and allocator runs, so the
//!   allocator/policy axes never regenerate or re-solve the same point,
//! * [`FrontierRunner`](frontier::FrontierRunner) — the adaptive
//!   exploration mode: per-slice bisection for the acceptance cliff plus a
//!   deterministic refinement plan, replacing exhaustive utilization grids,
//! * [`SweepAccumulator`](agg::SweepAccumulator) /
//!   [`PairedSink`](agg::PairedSink) — online acceptance-ratio and tightness
//!   summaries (mean / p50 / p99) plus the paired HYDRA-vs-Optimal gap of
//!   Figure 3, built from per-worker partials merged at the end — no
//!   retained outcome vector,
//! * [`sink`] — byte-deterministic streaming JSONL / CSV / summary sinks,
//! * [`shard_range`](exec::shard_range) /
//!   [`Checkpoint`](checkpoint::Checkpoint) — contiguous grid shards and
//!   killed-run resume whose concatenated outputs are byte-identical to a
//!   single full run (every scenario owns a deterministic seed address).
//!
//! The `dse` binary exposes all of it on the command line; the
//! `hydra-bench` figure drivers are thin [`ScenarioSpec`](spec::ScenarioSpec)
//! definitions executed on this engine.
//!
//! # Example
//!
//! ```
//! use rt_dse::prelude::*;
//!
//! let mut spec = ScenarioSpec::synthetic("demo");
//! spec.cores = vec![2];
//! spec.utilizations = UtilizationGrid::Fractions(vec![0.2, 0.6]);
//! spec.allocators = vec![AllocatorKind::Hydra, AllocatorKind::SingleCore];
//! spec.trials = 3;
//!
//! let mut sink = VecSink::new();
//! let summary = SweepSession::new(spec)
//!     .run(&mut sink)
//!     .expect("VecSink never raises I/O errors");
//! assert_eq!(summary.evaluated(), 12);
//! assert_eq!(summary.partial.rows().len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agg;
pub mod api;
pub mod checkpoint;
pub mod exec;
pub mod frontier;
pub mod grid;
pub mod memo;
pub mod obs;
pub mod scenario;
pub mod sink;
pub mod spec;
pub mod store;

#[allow(deprecated)]
pub use agg::{
    aggregate, paired_comparison, AggregateRow, PairedPoint, PairedSink, SweepAccumulator,
};
pub use api::{Progress, SweepHandle, SweepSession};
pub use checkpoint::{sweep_fingerprint, Checkpoint};
pub use exec::{shard_range, Executor, StreamSummary, SweepResult};
pub use frontier::{FrontierPlan, FrontierRow, FrontierRunner, FrontierSlice};
pub use grid::ScenarioGrid;
pub use memo::{hash_taskset, AllocationKey, MemoCache, MemoStats, ProblemKey, SharedAllocation};
pub use obs::{phase_table, SweepObs, WorkerObs, ENGINE_TRACK, PHASES};
pub use rt_core::batch::{BatchMode, BatchStats};
pub use rt_core::Time;
pub use scenario::{DetectionStats, Scenario, ScenarioOutcome};
pub use sink::{CsvSink, JsonlSink, NullSink, OutcomeSink, TeeSink, VecSink};
pub use spec::{
    AllocatorKind, Evaluation, Expansion, ExploreMode, FrontierConfig, PeriodPolicy, ScenarioSpec,
    SyntheticOverrides, UtilizationGrid, Workload,
};
pub use store::MemoStore;

/// Convenience re-exports for sweep definitions.
pub mod prelude {
    #[allow(deprecated)]
    pub use crate::agg::{aggregate, paired_comparison, PairedSink, SweepAccumulator};
    pub use crate::api::{Progress, SweepHandle, SweepSession};
    pub use crate::exec::{shard_range, Executor, StreamSummary, SweepResult};
    pub use crate::frontier::{FrontierPlan, FrontierRow, FrontierRunner, FrontierSlice};
    pub use crate::grid::ScenarioGrid;
    pub use crate::scenario::{Scenario, ScenarioOutcome};
    #[allow(deprecated)]
    pub use crate::sink::{
        to_csv, to_jsonl, write_outputs, CsvSink, JsonlSink, NullSink, OutcomeSink, VecSink,
    };
    pub use crate::spec::{
        AllocatorKind, Evaluation, Expansion, ExploreMode, FrontierConfig, PeriodPolicy,
        ScenarioSpec, SyntheticOverrides, UtilizationGrid, Workload,
    };
    pub use crate::store::MemoStore;
    pub use rt_core::batch::BatchMode;
}
