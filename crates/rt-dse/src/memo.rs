//! Cross-scenario memoization.
//!
//! Three kinds of expensive intermediate work are shared across scenario
//! points:
//!
//! * scenarios differing only in the **allocator** or **period-policy**
//!   axis share the identical generated problem (same seed-stream address),
//!   so task-set generation runs once per address, not once per scheme;
//! * the Eq. (1) **necessary-condition** filter depends only on the
//!   real-time task set and the core count, so its verdict is cached keyed
//!   by `(task-set hash, cores)`;
//! * the **allocation** (placement search) depends only on `(problem,
//!   scheme)` — the period-policy axis re-derives periods from one shared
//!   allocator run instead of repeating the search per policy.
//!
//! The cache is sharded to keep lock contention negligible under the
//! work-stealing executor; every entry is immutable once inserted (`Arc`ed
//! problems), so readers never block writers of *other* keys for long.
//!
//! # The retired partition family
//!
//! Earlier revisions carried a fourth family caching the real-time
//! partition per `(task-set hash, cores, config)` key. Sweep telemetry
//! measured it essentially dead — **5 hits against 5754 misses** (< 0.1 %)
//! on the default bench grid — and the cause is structural, not a fixable
//! key choice:
//!
//! 1. **The allocation memo sits upstream.** The partition was only built
//!    inside an allocator run, and whole allocator runs are themselves
//!    cached per `(problem, scheme)`, so repeat visitors never reached it.
//! 2. **Hydra-family and SingleCore keys are disjoint.** Full-platform
//!    schemes partition `M` cores while SingleCore partitions `M − 1`: a
//!    Hydra + SingleCore sweep — the paper's headline comparison — had zero
//!    possible cross-scheme reuse.
//! 3. **Task sets are unique per scenario address.** Each set derives from
//!    its own `(seed, stream)` address, so two grid points virtually never
//!    hash alike; the stray hits were low-utilization collisions.
//!
//! The partition is now computed inline by the allocator paths. The only
//! reuse the family ever delivered — sweeps mixing two or more
//! full-platform schemes, one hit per extra scheme per feasible problem —
//! costs at most one extra `partition_tasks` run per such scheme, noise
//! next to the placement search the allocation family still dedups.

// The sharded caches are keyed point-lookups, never iterated, so hash order
// cannot reach output bytes (allowlisted for lint rule D001).
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hydra_core::{Allocation, AllocationError, AllocationProblem};
use rt_core::TaskSet;

use crate::spec::AllocatorKind;
use crate::store::MemoStore;

const SHARDS: usize = 32;

/// Identifies one generated problem instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemKey {
    /// Core count of the platform.
    pub cores: usize,
    /// Requested total utilization (bit pattern, so the key is `Eq + Hash`);
    /// zero for fixed workloads.
    pub utilization_bits: u64,
    /// The sweep's base seed.
    pub base_seed: u64,
    /// The scenario's problem-stream address.
    pub stream: u64,
    /// Fingerprint of generator overrides (different overrides generate
    /// different problems from the same address).
    pub config_fingerprint: u64,
}

/// Identifies one allocator run: the exact problem instance plus the scheme.
/// Scenarios differing only in the **period policy** share this key — the
/// placement search runs once and each policy re-derives its periods from
/// the shared result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocationKey {
    /// The generated problem's identity.
    pub problem: ProblemKey,
    /// The allocation scheme that ran.
    pub allocator: AllocatorKind,
}

/// FNV-1a over the timing parameters of a real-time task set: a stable
/// structural fingerprint for schedulability caching.
#[must_use]
pub fn hash_taskset(set: &TaskSet) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    feed(set.len() as u64);
    for task in set.tasks() {
        feed(task.wcet().as_ticks());
        feed(task.period().as_ticks());
        feed(task.deadline().as_ticks());
    }
    h
}

/// Bumps one hit/miss statistics counter.
fn bump(counter: &AtomicU64) {
    // relaxed-ok: pure monotonic statistics — no cross-thread data handoff
    // is guarded by these counters, and `stats()` snapshots them only after
    // the sweep's worker threads have joined.
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Reads one hit/miss statistics counter.
fn read(counter: &AtomicU64) -> u64 {
    // relaxed-ok: statistics snapshot; same verdict as `bump`.
    counter.load(Ordering::Relaxed)
}

/// Hit/miss counters of a finished sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Problem-cache hits (a regeneration elided).
    pub problem_hits: u64,
    /// Problem-cache misses (the generator actually ran).
    pub problem_misses: u64,
    /// Feasibility-cache hits (an Eq. (1) evaluation elided).
    pub feasibility_hits: u64,
    /// Feasibility-cache misses.
    pub feasibility_misses: u64,
    /// Allocation-cache hits (a placement search elided — the period-policy
    /// axis reuses one allocator run per `(problem, scheme)` key).
    pub allocation_hits: u64,
    /// Allocation-cache misses (the allocator actually ran).
    pub allocation_misses: u64,
    /// Persistent-store hits, summed over all three families: an in-memory
    /// miss that was answered from the attached [`MemoStore`] instead of
    /// recomputed. Always zero without an attached store. The in-memory
    /// family counters above deliberately do **not** distinguish warm from
    /// cold stores — a store hit still books the family miss the
    /// computation would have booked, keeping them byte-identical across
    /// store states.
    pub store_hits: u64,
    /// Persistent-store misses (all three families): the key was absent —
    /// or its entry corrupt — so the value was computed and written back.
    /// A fully warm store completes a repeat sweep with zero misses.
    pub store_misses: u64,
    /// Failed persistent-store writes (all three families). Write failures
    /// are tolerated — the sweep's results are unaffected; the entry is
    /// simply recomputed by whoever needs it next.
    pub store_write_errors: u64,
}

/// A cached allocator run: the allocation, or the scheme's rejection
/// (failures cache too — an unschedulable task set fails once per scheme,
/// not once per period policy).
pub type SharedAllocation = Arc<Result<Allocation, AllocationError>>;

/// One shard of a cache family whose values carry the *fresh* flag described
/// on [`MemoCache`] (true = prefetched, not yet counted).
type FreshShard<K, V> = Mutex<HashMap<K, (V, bool)>>;

/// Mirror counters on the metrics registry, so the live heartbeat can read
/// memo traffic mid-sweep instead of waiting for the end-of-run
/// [`MemoStats`]. Inert (no-op handles) unless the cache was built with
/// [`MemoCache::with_observability`].
#[derive(Debug, Default)]
struct MemoObsCounters {
    problem_hits: rt_obs::Counter,
    problem_misses: rt_obs::Counter,
    feasibility_hits: rt_obs::Counter,
    feasibility_misses: rt_obs::Counter,
    allocation_hits: rt_obs::Counter,
    allocation_misses: rt_obs::Counter,
    store_hits: rt_obs::Counter,
    store_misses: rt_obs::Counter,
    store_write_errors: rt_obs::Counter,
}

/// The shared memoization cache of one sweep execution.
///
/// Problem and feasibility entries carry a *fresh* flag: an entry inserted
/// by one of the `prefetch_*` methods (the batched lookahead path) is marked
/// fresh and stays invisible to the hit/miss counters until the first
/// counted access, which books the miss the scalar path would have booked
/// and clears the flag. Counters are therefore identical whether batching
/// is on or off — the property the engine's pinned memo-count tests rely
/// on.
///
/// # Persistent backing
///
/// A cache built with [`MemoCache::backed_by`] consults a shared on-disk
/// [`MemoStore`] on every in-memory miss before computing, and writes every
/// freshly computed value back. Store traffic is booked on the three
/// `store_*` counters only; the per-family counters keep their in-memory
/// meaning (a store hit still books the family miss), so sweep statistics
/// — and output bytes — are identical whether the store is cold, warm or
/// absent.
#[derive(Debug, Default)]
pub struct MemoCache {
    store: Option<Arc<MemoStore>>,
    problems: Vec<FreshShard<ProblemKey, Arc<AllocationProblem>>>,
    feasibility: Vec<FreshShard<(u64, usize), bool>>,
    allocations: Vec<Mutex<HashMap<AllocationKey, SharedAllocation>>>,
    problem_hits: AtomicU64,
    problem_misses: AtomicU64,
    feasibility_hits: AtomicU64,
    feasibility_misses: AtomicU64,
    allocation_hits: AtomicU64,
    allocation_misses: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_write_errors: AtomicU64,
    obs: MemoObsCounters,
}

impl MemoCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        MemoCache {
            store: None,
            problems: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            feasibility: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            allocations: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            problem_hits: AtomicU64::new(0),
            problem_misses: AtomicU64::new(0),
            feasibility_hits: AtomicU64::new(0),
            feasibility_misses: AtomicU64::new(0),
            allocation_hits: AtomicU64::new(0),
            allocation_misses: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            store_write_errors: AtomicU64::new(0),
            obs: MemoObsCounters::default(),
        }
    }

    /// Creates an empty cache whose hit/miss counters are mirrored onto the
    /// `memo.*` registry counters of `shard` (live telemetry for the
    /// heartbeat). With a disabled shard this is exactly [`MemoCache::new`].
    #[must_use]
    pub fn with_observability(shard: &rt_obs::ShardHandle) -> Self {
        MemoCache {
            obs: MemoObsCounters {
                problem_hits: shard.counter("memo.problem_hits"),
                problem_misses: shard.counter("memo.problem_misses"),
                feasibility_hits: shard.counter("memo.feasibility_hits"),
                feasibility_misses: shard.counter("memo.feasibility_misses"),
                allocation_hits: shard.counter("memo.allocation_hits"),
                allocation_misses: shard.counter("memo.allocation_misses"),
                store_hits: shard.counter("memo.store_hits"),
                store_misses: shard.counter("memo.store_misses"),
                store_write_errors: shard.counter("memo.store_write_errors"),
            },
            ..MemoCache::new()
        }
    }

    /// Attaches a persistent [`MemoStore`]: every in-memory miss consults
    /// the store before computing, every freshly computed value is written
    /// back, and store traffic is booked on the `store_*` counters. The
    /// per-family hit/miss counters are unaffected (see the type docs), so
    /// attaching a store never changes sweep statistics or output bytes.
    #[must_use]
    pub fn backed_by(mut self, store: Arc<MemoStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Books one persistent-store hit.
    fn book_store_hit(&self) {
        bump(&self.store_hits);
        self.obs.store_hits.inc();
    }

    /// Books one persistent-store miss.
    fn book_store_miss(&self) {
        bump(&self.store_misses);
        self.obs.store_misses.inc();
    }

    /// Books a persistent-store write outcome (failures count, successes
    /// are free).
    fn book_store_write(&self, result: std::io::Result<()>) {
        if result.is_err() {
            bump(&self.store_write_errors);
            self.obs.store_write_errors.inc();
        }
    }

    fn shard_of(hash: u64) -> usize {
        // High bits: the low bits of sequential streams are too regular.
        (hash >> 58) as usize % SHARDS
    }

    /// Returns the problem for `key`, generating it with `generate` on a
    /// miss. Concurrent callers of the same key may both generate (the
    /// generator is deterministic, so both produce the identical problem and
    /// either insert wins); the lock is *not* held during generation.
    pub fn problem(
        &self,
        key: ProblemKey,
        generate: impl FnOnce() -> AllocationProblem,
    ) -> Arc<AllocationProblem> {
        let shard = self.problem_shard(key);
        if let Some((found, fresh)) = shard.lock().expect("memo shard poisoned").get_mut(&key) {
            if *fresh {
                // A prefetched entry: the generation already happened on the
                // lookahead path, but this is the access the scalar engine
                // would have paid for — book the miss it would have booked.
                *fresh = false;
                bump(&self.problem_misses);
                self.obs.problem_misses.inc();
            } else {
                bump(&self.problem_hits);
                self.obs.problem_hits.inc();
            }
            return Arc::clone(found);
        }
        bump(&self.problem_misses);
        self.obs.problem_misses.inc();
        if let Some(found) = self.store.as_deref().and_then(|s| s.get_problem(&key)) {
            self.book_store_hit();
            let mut guard = shard.lock().expect("memo shard poisoned");
            return Arc::clone(&guard.entry(key).or_insert((Arc::new(found), false)).0);
        }
        if self.store.is_some() {
            self.book_store_miss();
        }
        let generated = Arc::new(generate());
        if let Some(store) = self.store.as_deref() {
            self.book_store_write(store.put_problem(&key, &generated));
        }
        let mut guard = shard.lock().expect("memo shard poisoned");
        Arc::clone(&guard.entry(key).or_insert((generated, false)).0)
    }

    fn problem_shard(
        &self,
        key: ProblemKey,
    ) -> &Mutex<HashMap<ProblemKey, (Arc<AllocationProblem>, bool)>> {
        let hash = key.stream ^ key.base_seed.rotate_left(32) ^ (key.cores as u64).rotate_left(48);
        &self.problems[Self::shard_of(hash.wrapping_mul(0x9E37_79B9_7F4A_7C15))]
    }

    /// Uncounted lookahead access: returns the problem for `key`, generating
    /// and caching it (marked *fresh*) on a miss. The first counted
    /// [`MemoCache::problem`] access then books the miss, so prefetching
    /// never perturbs the hit/miss statistics.
    pub fn prefetch_problem(
        &self,
        key: ProblemKey,
        generate: impl FnOnce() -> AllocationProblem,
    ) -> Arc<AllocationProblem> {
        let shard = self.problem_shard(key);
        if let Some((found, _)) = shard.lock().expect("memo shard poisoned").get(&key) {
            return Arc::clone(found);
        }
        if let Some(found) = self.store.as_deref().and_then(|s| s.get_problem(&key)) {
            self.book_store_hit();
            let mut guard = shard.lock().expect("memo shard poisoned");
            return Arc::clone(&guard.entry(key).or_insert((Arc::new(found), true)).0);
        }
        if self.store.is_some() {
            self.book_store_miss();
        }
        let generated = Arc::new(generate());
        if let Some(store) = self.store.as_deref() {
            self.book_store_write(store.put_problem(&key, &generated));
        }
        let mut guard = shard.lock().expect("memo shard poisoned");
        Arc::clone(&guard.entry(key).or_insert((generated, true)).0)
    }

    /// Returns the cached Eq. (1) verdict for `(taskset_hash, cores)`,
    /// computing it with `check` on a miss.
    pub fn feasibility(
        &self,
        taskset_hash: u64,
        cores: usize,
        check: impl FnOnce() -> bool,
    ) -> bool {
        let shard = self.feasibility_shard(taskset_hash, cores);
        if let Some((verdict, fresh)) = shard
            .lock()
            .expect("memo shard poisoned")
            .get_mut(&(taskset_hash, cores))
        {
            if *fresh {
                // Batched lookahead computed this verdict; book the miss the
                // scalar path would have booked (see `prefetch_feasibility`).
                *fresh = false;
                bump(&self.feasibility_misses);
                self.obs.feasibility_misses.inc();
            } else {
                bump(&self.feasibility_hits);
                self.obs.feasibility_hits.inc();
            }
            return *verdict;
        }
        bump(&self.feasibility_misses);
        self.obs.feasibility_misses.inc();
        if let Some(store) = self.store.as_deref() {
            if let Some(verdict) = store.get_feasibility(taskset_hash, cores) {
                self.book_store_hit();
                shard
                    .lock()
                    .expect("memo shard poisoned")
                    .entry((taskset_hash, cores))
                    .or_insert((verdict, false));
                return verdict;
            }
            self.book_store_miss();
        }
        let verdict = check();
        if let Some(store) = self.store.as_deref() {
            self.book_store_write(store.put_feasibility(taskset_hash, cores, verdict));
        }
        shard
            .lock()
            .expect("memo shard poisoned")
            .entry((taskset_hash, cores))
            .or_insert((verdict, false));
        verdict
    }

    fn feasibility_shard(
        &self,
        taskset_hash: u64,
        cores: usize,
    ) -> &FreshShard<(u64, usize), bool> {
        &self.feasibility[Self::shard_of(taskset_hash.wrapping_add((cores as u64).rotate_left(40)))]
    }

    /// Whether a feasibility verdict for `(taskset_hash, cores)` is already
    /// cached (fresh or not). Uncounted — the lookahead path uses it to pick
    /// batch lanes without disturbing the statistics.
    #[must_use]
    pub fn feasibility_present(&self, taskset_hash: u64, cores: usize) -> bool {
        self.feasibility_shard(taskset_hash, cores)
            .lock()
            .expect("memo shard poisoned")
            .contains_key(&(taskset_hash, cores))
    }

    /// Extends [`MemoCache::feasibility_present`] to the persistent store:
    /// a store hit is pulled into memory (marked *fresh*, so the first
    /// counted access books the miss the scalar path would have booked) and
    /// reported as present. Like `feasibility_present`, the per-family
    /// counters are untouched; only the `store_*` counters move. The
    /// lookahead path uses this once per scenario to skip batch work a warm
    /// store has already paid for, while per-lane dedup sticks to the pure
    /// in-memory probe.
    #[must_use]
    pub fn feasibility_probe(&self, taskset_hash: u64, cores: usize) -> bool {
        if self.feasibility_present(taskset_hash, cores) {
            return true;
        }
        let Some(store) = self.store.as_deref() else {
            return false;
        };
        if let Some(verdict) = store.get_feasibility(taskset_hash, cores) {
            self.book_store_hit();
            self.feasibility_shard(taskset_hash, cores)
                .lock()
                .expect("memo shard poisoned")
                .entry((taskset_hash, cores))
                .or_insert((verdict, true));
            true
        } else {
            self.book_store_miss();
            false
        }
    }

    /// Uncounted lookahead insert of a batch-computed Eq. (1) verdict,
    /// marked *fresh*: the first counted [`MemoCache::feasibility`] access
    /// books the miss the scalar path would have booked. An already-present
    /// entry is left untouched (the racing value is identical — the kernel
    /// is deterministic). A newly inserted verdict is written through to the
    /// attached store, if any — the batched path never reaches the scalar
    /// write-back in [`MemoCache::feasibility`].
    pub fn prefetch_feasibility(&self, taskset_hash: u64, cores: usize, verdict: bool) {
        let inserted = {
            let mut guard = self
                .feasibility_shard(taskset_hash, cores)
                .lock()
                .expect("memo shard poisoned");
            match guard.entry((taskset_hash, cores)) {
                std::collections::hash_map::Entry::Occupied(_) => false,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert((verdict, true));
                    true
                }
            }
        };
        if inserted {
            if let Some(store) = self.store.as_deref() {
                self.book_store_write(store.put_feasibility(taskset_hash, cores, verdict));
            }
        }
    }

    /// Returns the cached allocator run for `key`, computing it with
    /// `build` on a miss. The period-policy axis calls this once per
    /// scenario but the placement search runs once per `(problem, scheme)`
    /// key; rejections cache too. Like the other families, the lock is not
    /// held while `build` runs — racing builders of the same key may both
    /// run the deterministic allocator and either result wins.
    pub fn allocation(
        &self,
        key: AllocationKey,
        build: impl FnOnce() -> Result<Allocation, AllocationError>,
    ) -> SharedAllocation {
        let shard = &self.allocations[Self::shard_of(
            key.problem
                .stream
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((key.allocator as u64).rotate_left(12)),
        )];
        if let Some(found) = shard.lock().expect("memo shard poisoned").get(&key) {
            bump(&self.allocation_hits);
            self.obs.allocation_hits.inc();
            return Arc::clone(found);
        }
        bump(&self.allocation_misses);
        self.obs.allocation_misses.inc();
        if let Some(found) = self.store.as_deref().and_then(|s| s.get_allocation(&key)) {
            self.book_store_hit();
            let mut guard = shard.lock().expect("memo shard poisoned");
            return Arc::clone(guard.entry(key).or_insert(Arc::new(found)));
        }
        if self.store.is_some() {
            self.book_store_miss();
        }
        let built = Arc::new(build());
        if let Some(store) = self.store.as_deref() {
            self.book_store_write(store.put_allocation(&key, &built));
        }
        let mut guard = shard.lock().expect("memo shard poisoned");
        Arc::clone(guard.entry(key).or_insert(built))
    }

    /// Snapshot of the hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            problem_hits: read(&self.problem_hits),
            problem_misses: read(&self.problem_misses),
            feasibility_hits: read(&self.feasibility_hits),
            feasibility_misses: read(&self.feasibility_misses),
            allocation_hits: read(&self.allocation_hits),
            allocation_misses: read(&self.allocation_misses),
            store_hits: read(&self.store_hits),
            store_misses: read(&self.store_misses),
            store_write_errors: read(&self.store_write_errors),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::{casestudy, catalog};
    use rt_partition::Partition;

    fn key(stream: u64) -> ProblemKey {
        ProblemKey {
            cores: 2,
            utilization_bits: 1.5f64.to_bits(),
            base_seed: 7,
            stream,
            config_fingerprint: 0,
        }
    }

    fn uav_problem() -> AllocationProblem {
        AllocationProblem::new(casestudy::uav_rt_tasks(), catalog::table1_tasks(), 2)
    }

    #[test]
    fn problem_generation_runs_once_per_key() {
        let cache = MemoCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let _ = cache.problem(key(1), || {
                calls += 1;
                uav_problem()
            });
        }
        assert_eq!(calls, 1);
        let stats = cache.stats();
        assert_eq!(stats.problem_misses, 1);
        assert_eq!(stats.problem_hits, 2);
    }

    #[test]
    fn distinct_keys_generate_distinct_entries() {
        let cache = MemoCache::new();
        let a = cache.problem(key(1), uav_problem);
        let b = cache.problem(key(2), uav_problem);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().problem_misses, 2);
    }

    #[test]
    fn feasibility_verdicts_are_cached() {
        let cache = MemoCache::new();
        let mut calls = 0;
        for _ in 0..4 {
            let verdict = cache.feasibility(99, 2, || {
                calls += 1;
                true
            });
            assert!(verdict);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats().feasibility_hits, 3);
        // Different cores: a fresh verdict.
        let _ = cache.feasibility(99, 4, || false);
        assert_eq!(cache.stats().feasibility_misses, 2);
    }

    #[test]
    fn allocations_are_cached_including_rejections() {
        let cache = MemoCache::new();
        let key = AllocationKey {
            problem: key(1),
            allocator: AllocatorKind::Hydra,
        };
        let mut calls = 0;
        for _ in 0..3 {
            let a = cache.allocation(key, || {
                calls += 1;
                Ok(Allocation::new(Partition::new(0, 2), Vec::new()))
            });
            assert!(a.is_ok());
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats().allocation_misses, 1);
        assert_eq!(cache.stats().allocation_hits, 2);
        // A different scheme on the same problem is a different entry, and
        // rejections cache too.
        let other = AllocationKey {
            allocator: AllocatorKind::SingleCore,
            ..key
        };
        for _ in 0..2 {
            let a = cache.allocation(other, || {
                Err(AllocationError::InsufficientCores {
                    available: 1,
                    required: 2,
                })
            });
            assert!(a.is_err());
        }
        assert_eq!(cache.stats().allocation_misses, 2);
        assert_eq!(cache.stats().allocation_hits, 3);
    }

    #[test]
    fn prefetched_problems_defer_their_miss_to_the_first_counted_access() {
        let cache = MemoCache::new();
        // Prefetch generates but books nothing.
        let mut calls = 0;
        let _ = cache.prefetch_problem(key(1), || {
            calls += 1;
            uav_problem()
        });
        assert_eq!(calls, 1);
        assert_eq!(cache.stats(), MemoStats::default());
        // The first counted access books the miss the scalar path would
        // have booked — without regenerating.
        let _ = cache.problem(key(1), || {
            calls += 1;
            uav_problem()
        });
        assert_eq!(calls, 1);
        assert_eq!(cache.stats().problem_misses, 1);
        assert_eq!(cache.stats().problem_hits, 0);
        // Subsequent accesses hit as usual.
        let _ = cache.problem(key(1), uav_problem);
        assert_eq!(cache.stats().problem_hits, 1);
        // Prefetching an already-counted entry changes nothing.
        let _ = cache.prefetch_problem(key(1), uav_problem);
        let _ = cache.problem(key(1), uav_problem);
        assert_eq!(cache.stats().problem_misses, 1);
        assert_eq!(cache.stats().problem_hits, 2);
    }

    #[test]
    fn prefetched_feasibility_verdicts_are_counter_neutral() {
        let cache = MemoCache::new();
        assert!(!cache.feasibility_present(7, 2));
        cache.prefetch_feasibility(7, 2, true);
        assert!(cache.feasibility_present(7, 2));
        assert_eq!(cache.stats(), MemoStats::default());
        // First counted access: the deferred miss, no recomputation.
        assert!(cache.feasibility(7, 2, || panic!("verdict was prefetched")));
        assert_eq!(cache.stats().feasibility_misses, 1);
        assert_eq!(cache.stats().feasibility_hits, 0);
        // Second counted access: a plain hit.
        assert!(cache.feasibility(7, 2, || panic!("verdict was cached")));
        assert_eq!(cache.stats().feasibility_hits, 1);
        // A prefetch never overwrites an existing verdict.
        cache.prefetch_feasibility(7, 2, false);
        assert!(cache.feasibility(7, 2, || unreachable!()));
    }

    fn store_in(tag: &str) -> (Arc<MemoStore>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("rt-dse-memo-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = MemoStore::open(&dir)
            .expect("temp store opens")
            .with_fsync(false);
        (Arc::new(store), dir)
    }

    #[test]
    fn store_backed_cache_answers_repeat_misses_from_disk() {
        let (store, dir) = store_in("repeat");
        // Cold cache: everything misses the store, computes, writes back.
        let cold = MemoCache::new().backed_by(Arc::clone(&store));
        let mut generated = 0;
        let _ = cold.problem(key(1), || {
            generated += 1;
            uav_problem()
        });
        assert!(cold.feasibility(77, 2, || true));
        let stats = cold.stats();
        assert_eq!(stats.store_hits, 0);
        assert_eq!(stats.store_misses, 2);
        assert_eq!(stats.store_write_errors, 0);
        // Warm cache (fresh in-memory state, same disk): the family counters
        // book the same misses a cold run would, but nothing is recomputed.
        let warm = MemoCache::new().backed_by(store);
        let _ = warm.problem(key(1), || {
            generated += 1;
            uav_problem()
        });
        assert!(warm.feasibility(77, 2, || panic!("verdict is on disk")));
        assert_eq!(generated, 1);
        let stats = warm.stats();
        assert_eq!(stats.problem_misses, 1);
        assert_eq!(stats.feasibility_misses, 1);
        assert_eq!(stats.store_hits, 2);
        assert_eq!(stats.store_misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_backed_allocations_round_trip() {
        let (store, dir) = store_in("pa");
        let akey = AllocationKey {
            problem: key(1),
            allocator: AllocatorKind::Hydra,
        };
        let cold = MemoCache::new().backed_by(Arc::clone(&store));
        let _ = cold.allocation(akey, || {
            Err(AllocationError::InsufficientCores {
                available: 1,
                required: 2,
            })
        });
        let warm = MemoCache::new().backed_by(store);
        let a = warm.allocation(akey, || panic!("allocation is on disk"));
        assert!(a.is_err());
        let stats = warm.stats();
        assert_eq!(stats.allocation_misses, 1);
        assert_eq!(stats.store_hits, 1);
        assert_eq!(stats.store_misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn feasibility_probe_reaches_the_store_and_defers_the_family_miss() {
        let (store, dir) = store_in("probe");
        store.put_feasibility(7, 2, true).expect("seed the store");
        let cache = MemoCache::new().backed_by(store);
        // A probe miss books a store miss and computes nothing.
        assert!(!cache.feasibility_probe(9, 2));
        assert_eq!(cache.stats().store_misses, 1);
        // A probe hit pulls the verdict into memory, marked fresh…
        assert!(cache.feasibility_probe(7, 2));
        assert!(cache.feasibility_present(7, 2));
        assert_eq!(cache.stats().store_hits, 1);
        assert_eq!(cache.stats().feasibility_misses, 0);
        // …and the first counted access books the deferred family miss.
        assert!(cache.feasibility(7, 2, || panic!("verdict was probed in")));
        assert_eq!(cache.stats().feasibility_misses, 1);
        // A second probe is a pure in-memory answer: no new store traffic.
        assert!(cache.feasibility_probe(7, 2));
        assert_eq!(cache.stats().store_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefetched_feasibility_writes_through_to_the_store() {
        let (store, dir) = store_in("prefetch");
        {
            let cache = MemoCache::new().backed_by(Arc::clone(&store));
            cache.prefetch_feasibility(11, 4, false);
        }
        assert_eq!(store.get_feasibility(11, 4), Some(false));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn storeless_probe_is_plain_presence() {
        let cache = MemoCache::new();
        assert!(!cache.feasibility_probe(1, 2));
        cache.prefetch_feasibility(1, 2, true);
        assert!(cache.feasibility_probe(1, 2));
        assert_eq!(cache.stats().store_hits, 0);
        assert_eq!(cache.stats().store_misses, 0);
    }

    #[test]
    fn taskset_hash_is_structural() {
        let a = casestudy::uav_rt_tasks();
        let b = casestudy::uav_rt_tasks();
        assert_eq!(hash_taskset(&a), hash_taskset(&b));
        let mut c = casestudy::uav_rt_tasks();
        c.push(
            rt_core::RtTask::implicit_deadline(
                rt_core::Time::from_millis(1),
                rt_core::Time::from_millis(100),
            )
            .unwrap(),
        );
        assert_ne!(hash_taskset(&a), hash_taskset(&c));
    }
}
