//! Observability wiring for the sweep engine: the fixed phase list, the
//! metric names of the documented `metrics.json` schema, and the per-sweep
//! / per-worker handle bundles the executor threads record through.
//!
//! Everything here follows the `rt-obs` overhead contract: a disabled
//! [`SweepObs`] hands out inert handles, the executor's outputs are
//! byte-identical with observability on or off, and the enabled hot path
//! per scenario is a handful of relaxed atomics plus (when tracing) two
//! clock reads per phase.
//!
//! # Metric names
//!
//! Counters (all monotonic over the run):
//!
//! | name | meaning |
//! |------|---------|
//! | `sweep.scenarios_done` | scenarios fully evaluated |
//! | `sweep.backpressure_waits` | times a worker blocked on the reorder window |
//! | `sweep.backpressure_wait_ns` | total time workers spent blocked |
//! | `memo.{problem,feasibility,allocation}_{hits,misses}` | memo cache traffic |
//! | `sim.{releases,completions,truncated,preemptions,idle_jumps}` | simulator scheduling events |
//! | `optimal.{visited,pruned,total}` | branch-and-bound search statistics |
//! | `batch.scalar_fallbacks` | analyses the batch kernels handed back to the scalar path |
//! | `checkpoint.writes` | checkpoint files durably written (CLI only) |
//!
//! Gauges: `drain.reorder_depth` — outcomes parked in the reorder buffer.
//!
//! Histograms: `sweep.scenario_ns` — per-scenario evaluation latency;
//! `batch.lanes_filled` — occupied lanes per batch-kernel dispatch.
//!
//! # Trace tracks
//!
//! Chrome-trace `tid`s are worker indices; [`ENGINE_TRACK`] is the
//! synthetic track carrying engine-level (non-worker) events such as
//! checkpoint writes.

use std::time::Duration;

use rt_obs::{Counter, Histogram, PhaseRow, Registry, ShardHandle, Tracer, WorkerTracer};
use rt_sim::SimStats;

/// The per-scenario phases, in canonical order. Indices into this slice are
/// the `PHASE_*` constants.
pub const PHASES: &[&str] = &[
    "generate",
    "partition",
    "allocate",
    "period_policy",
    "simulate",
    "sink",
    "checkpoint",
];

/// Task-set generation (a problem-memo miss).
pub const PHASE_GENERATE: usize = 0;
/// Real-time partitioning (a partition-memo miss; nests inside `allocate`).
pub const PHASE_PARTITION: usize = 1;
/// The placement search (an allocation-memo miss).
pub const PHASE_ALLOCATE: usize = 2;
/// Period re-optimisation of the period-policy axis.
pub const PHASE_PERIOD_POLICY: usize = 3;
/// The attack-detection simulation.
pub const PHASE_SIMULATE: usize = 4;
/// Handing an in-order outcome to the sink.
pub const PHASE_SINK: usize = 5;
/// A durable checkpoint write (CLI).
pub const PHASE_CHECKPOINT: usize = 6;

/// The registry shard / trace track used for engine-level recording that
/// belongs to no worker (the memo cache, checkpoint writes).
pub const ENGINE_TRACK: usize = usize::MAX;

/// The observability bundle of one sweep: a metrics [`Registry`] plus a
/// phase [`Tracer`], threaded through the executor. Cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct SweepObs {
    registry: Registry,
    tracer: Tracer,
}

impl SweepObs {
    /// Observability with `metrics` (the registry) and `tracing` (phase
    /// spans) independently switchable — `--metrics-out`/`--progress` need
    /// only the former, `--trace-out` the latter.
    #[must_use]
    pub fn new(metrics: bool, tracing: bool) -> Self {
        SweepObs {
            registry: if metrics {
                Registry::enabled()
            } else {
                Registry::disabled()
            },
            tracer: if tracing {
                Tracer::enabled(PHASES)
            } else {
                Tracer::disabled()
            },
        }
    }

    /// Fully enabled observability (metrics and tracing).
    #[must_use]
    pub fn enabled() -> Self {
        SweepObs::new(true, true)
    }

    /// Fully disabled observability — the default; every handle is inert.
    #[must_use]
    pub fn disabled() -> Self {
        SweepObs::default()
    }

    /// Whether any recording (metrics or tracing) is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled() || self.tracer.is_enabled()
    }

    /// The metrics registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The phase tracer.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The merged per-phase time table, in [`PHASES`] order (empty when
    /// tracing is off). `allocate` rows include the `partition` time nested
    /// inside them on a memo miss.
    #[must_use]
    pub fn phase_rows(&self) -> Vec<PhaseRow> {
        self.tracer.phase_rows()
    }

    /// Renders the documented `metrics.json` document: the registry
    /// snapshot plus the per-phase table.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.registry
            .snapshot()
            .to_json_with_phases(&self.phase_rows())
    }

    /// The recording bundle for worker `index`.
    #[must_use]
    pub fn worker(&self, index: usize) -> WorkerObs {
        let shard = self.registry.shard(index);
        WorkerObs {
            tracer: self.tracer.worker(index),
            scenarios_done: shard.counter("sweep.scenarios_done"),
            scenario_ns: shard.histogram("sweep.scenario_ns"),
            backpressure_waits: shard.counter("sweep.backpressure_waits"),
            backpressure_wait_ns: shard.counter("sweep.backpressure_wait_ns"),
            shard,
        }
    }
}

/// One worker's pre-resolved recording handles. Inert when the sweep's
/// observability is disabled.
#[derive(Debug, Clone, Default)]
pub struct WorkerObs {
    /// Phase span recorder (worker index = trace `tid`).
    pub tracer: WorkerTracer,
    /// `sweep.scenarios_done`.
    pub scenarios_done: Counter,
    /// `sweep.scenario_ns`.
    pub scenario_ns: Histogram,
    /// `sweep.backpressure_waits`.
    pub backpressure_waits: Counter,
    /// `sweep.backpressure_wait_ns`.
    pub backpressure_wait_ns: Counter,
    shard: ShardHandle,
}

impl WorkerObs {
    /// An inert bundle (what a disabled [`SweepObs`] hands out).
    #[must_use]
    pub fn disabled() -> Self {
        WorkerObs::default()
    }

    /// Whether metric recording is on (gates the per-scenario clock reads
    /// that feed `sweep.scenario_ns`).
    #[must_use]
    pub fn metrics_enabled(&self) -> bool {
        self.shard.is_enabled()
    }

    /// Folds a worker's accumulated [`SimStats`] into the `sim.*` counters
    /// (called once per worker at drain, with the stats delta since the
    /// last fold).
    pub fn add_sim_stats(&self, stats: SimStats) {
        if !self.shard.is_enabled() {
            return;
        }
        self.shard.counter("sim.releases").add(stats.releases);
        self.shard.counter("sim.completions").add(stats.completions);
        self.shard.counter("sim.truncated").add(stats.truncated);
        self.shard.counter("sim.preemptions").add(stats.preemptions);
        self.shard.counter("sim.idle_jumps").add(stats.idle_jumps);
    }

    /// Folds an Optimal branch-and-bound run's search statistics into the
    /// `optimal.*` counters (u128 totals saturate at `u64::MAX`).
    pub fn add_search_stats(&self, visited: u128, pruned: u128, total: u128) {
        if !self.shard.is_enabled() {
            return;
        }
        let clamp = |v: u128| u64::try_from(v).unwrap_or(u64::MAX);
        self.shard.counter("optimal.visited").add(clamp(visited));
        self.shard.counter("optimal.pruned").add(clamp(pruned));
        self.shard.counter("optimal.total").add(clamp(total));
    }

    /// Folds a [`rt_core::batch::BatchStats`] delta into the `batch.*`
    /// metrics: `batch.scalar_fallbacks` counts analyses handed back to the
    /// scalar path, and the `batch.lanes_filled` histogram records the
    /// occupied-lane count of every batch dispatch.
    pub fn add_batch_stats(&self, stats: &rt_core::batch::BatchStats) {
        if !self.shard.is_enabled() || stats.is_empty() {
            return;
        }
        self.shard
            .counter("batch.scalar_fallbacks")
            .add(stats.scalar_fallbacks);
        let lanes_filled = self.shard.histogram("batch.lanes_filled");
        for (lanes, &dispatches) in stats.lanes_filled.iter().enumerate() {
            for _ in 0..dispatches {
                lanes_filled.record(lanes as u64);
            }
        }
    }

    /// Records one scenario's evaluation latency (`sweep.scenario_ns`) and
    /// bumps `sweep.scenarios_done`.
    pub fn record_scenario(&self, elapsed: Option<Duration>) {
        if let Some(elapsed) = elapsed {
            self.scenario_ns
                .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
        self.scenarios_done.inc();
    }
}

/// Renders the per-phase time table as the aligned text block the CLI
/// appends to its stderr summary (empty string when no phase ever ran).
#[must_use]
pub fn phase_table(rows: &[PhaseRow]) -> String {
    if rows.iter().all(|r| r.count == 0) {
        return String::new();
    }
    let mut out = String::from("phase           count      total (ms)    mean (us)     max (us)\n");
    for row in rows {
        let mean_us = row.mean_ns().map_or(0.0, |m| m / 1_000.0);
        out.push_str(&format!(
            "{:<14} {:>7} {:>14.3} {:>12.2} {:>12.2}\n",
            row.name,
            row.count,
            row.total_ns as f64 / 1_000_000.0,
            mean_us,
            row.max_ns as f64 / 1_000.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_hands_out_inert_handles() {
        let obs = SweepObs::disabled();
        assert!(!obs.is_enabled());
        let worker = obs.worker(0);
        assert!(!worker.metrics_enabled());
        worker.record_scenario(None);
        worker.add_sim_stats(SimStats::default());
        worker.add_search_stats(1, 2, 3);
        let mut batch = rt_core::batch::BatchStats::default();
        batch.record_batch(8);
        worker.add_batch_stats(&batch);
        assert!(obs.registry().snapshot().counters.is_empty());
        assert!(obs.phase_rows().is_empty());
    }

    #[test]
    fn metrics_only_obs_records_counters_but_no_phases() {
        let obs = SweepObs::new(true, false);
        assert!(obs.is_enabled());
        let worker = obs.worker(0);
        assert!(worker.metrics_enabled());
        assert!(!worker.tracer.is_enabled());
        worker.record_scenario(Some(Duration::from_micros(5)));
        worker.add_search_stats(10, 5, 15);
        let mut batch = rt_core::batch::BatchStats::default();
        batch.record_fallback();
        batch.record_batch(4);
        batch.record_batch(8);
        worker.add_batch_stats(&batch);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("sweep.scenarios_done"), 1);
        assert_eq!(snap.counter("optimal.total"), 15);
        assert_eq!(snap.counter("batch.scalar_fallbacks"), 1);
        assert_eq!(snap.histograms["batch.lanes_filled"].count, 2);
        assert_eq!(snap.histograms["sweep.scenario_ns"].count, 1);
        assert!(obs.phase_rows().is_empty());
    }

    #[test]
    fn fully_enabled_obs_renders_the_documented_schema() {
        let obs = SweepObs::enabled();
        let worker = obs.worker(0);
        drop(worker.tracer.span(PHASE_SIMULATE));
        worker.add_sim_stats(SimStats {
            releases: 3,
            completions: 2,
            truncated: 1,
            preemptions: 0,
            idle_jumps: 4,
        });
        let json = obs.metrics_json();
        assert!(json.contains("\"schema\": \"rt-obs/v1\""));
        assert!(json.contains("\"sim.releases\": 3"));
        assert!(json.contains("\"simulate\": { \"count\": 1"));
        // Every phase appears in the table, in order.
        let rows = obs.phase_rows();
        assert_eq!(rows.len(), PHASES.len());
        assert_eq!(rows[PHASE_SIMULATE].count, 1);
        assert_eq!(rows[PHASE_GENERATE].count, 0);
    }

    #[test]
    fn phase_table_is_empty_without_spans_and_aligned_with_them() {
        let obs = SweepObs::enabled();
        assert_eq!(phase_table(&obs.phase_rows()), "");
        drop(obs.worker(1).tracer.span(PHASE_ALLOCATE));
        let table = phase_table(&obs.phase_rows());
        assert!(table.starts_with("phase"));
        assert!(table.contains("allocate"));
        assert_eq!(table.lines().count(), 1 + PHASES.len());
    }
}
