//! Concrete scenario points and their evaluation results.

use crate::spec::AllocatorKind;

/// One fully-specified point of the design space: what to generate, which
/// scheme to run, and the deterministic seed address to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Position in the expanded grid; results are reported in this order, so
    /// output is independent of evaluation order and thread count.
    pub index: usize,
    /// Number of cores.
    pub cores: usize,
    /// Total system utilization of the generated task set (`None` for fixed
    /// workloads such as the UAV case study).
    pub utilization: Option<f64>,
    /// The allocation scheme under test.
    pub allocator: AllocatorKind,
    /// Trial number within the `(cores, utilization)` point.
    pub trial: usize,
    /// The problem's seed-stream address. Scenarios that differ only in
    /// `allocator` share this address — and therefore the identical problem
    /// instance — which is what makes cross-scheme comparisons paired and
    /// lets the memoization layer elide regeneration.
    pub problem_stream: u64,
}

/// Detection-latency statistics from a [`crate::spec::Evaluation::Detection`]
/// scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionStats {
    /// Number of injected attacks.
    pub injected: usize,
    /// Number detected before the horizon.
    pub detected: usize,
    /// Mean detection latency in milliseconds.
    pub mean_ms: f64,
    /// Median detection latency in milliseconds.
    pub median_ms: f64,
    /// 95th-percentile detection latency in milliseconds.
    pub p95_ms: f64,
    /// Worst observed detection latency in milliseconds.
    pub max_ms: f64,
    /// The raw latency samples (sorted ascending), so downstream reporting
    /// can rebuild the full empirical CDF.
    pub latencies_ms: Vec<f64>,
}

/// The result of evaluating one [`Scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The evaluated scenario.
    pub scenario: Scenario,
    /// Whether the generated task set passed the Eq. (1) necessary condition
    /// (fixed workloads are always feasible). Infeasible task sets are not
    /// offered to the allocator, mirroring the paper's discard rule.
    pub feasible: bool,
    /// Whether the scheme scheduled the task set.
    pub schedulable: bool,
    /// Rendered allocation error when `schedulable` is false (and the task
    /// set was feasible).
    pub error: Option<String>,
    /// Number of real-time tasks in the problem.
    pub n_rt: usize,
    /// Number of security tasks in the problem.
    pub n_sec: usize,
    /// Achieved total utilization of the generated problem (WCET rounding
    /// moves it slightly off the requested grid value).
    pub total_utilization: f64,
    /// Cumulative tightness `Σ ω_s · η_s` of the allocation.
    pub cumulative_tightness: Option<f64>,
    /// Mean per-task tightness of the allocation.
    pub mean_tightness: Option<f64>,
    /// Detection statistics (only for detection scenarios that scheduled).
    pub detection: Option<DetectionStats>,
}

impl ScenarioOutcome {
    /// An outcome for a scenario whose task set failed the Eq. (1) filter.
    #[must_use]
    pub fn infeasible(
        scenario: Scenario,
        n_rt: usize,
        n_sec: usize,
        total_utilization: f64,
    ) -> Self {
        ScenarioOutcome {
            scenario,
            feasible: false,
            schedulable: false,
            error: None,
            n_rt,
            n_sec,
            total_utilization,
            cumulative_tightness: None,
            mean_tightness: None,
            detection: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AllocatorKind;

    #[test]
    fn infeasible_outcomes_are_marked_unschedulable() {
        let scenario = Scenario {
            index: 3,
            cores: 4,
            utilization: Some(3.9),
            allocator: AllocatorKind::Hydra,
            trial: 0,
            problem_stream: 17,
        };
        let outcome = ScenarioOutcome::infeasible(scenario, 12, 8, 3.91);
        assert!(!outcome.feasible);
        assert!(!outcome.schedulable);
        assert_eq!(outcome.n_rt, 12);
        assert!(outcome.cumulative_tightness.is_none());
    }
}
