//! Concrete scenario points and their evaluation results.

use crate::spec::{AllocatorKind, PeriodPolicy};

/// One fully-specified point of the design space: what to generate, which
/// scheme to run, and the deterministic seed address to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Position in the expanded grid; results are reported in this order, so
    /// output is independent of evaluation order and thread count.
    pub index: usize,
    /// Number of cores.
    pub cores: usize,
    /// Total system utilization of the generated task set (`None` for fixed
    /// workloads such as the UAV case study).
    pub utilization: Option<f64>,
    /// The allocation scheme under test.
    pub allocator: AllocatorKind,
    /// The post-allocation period policy under test.
    pub policy: PeriodPolicy,
    /// Trial number within the `(cores, utilization)` point.
    pub trial: usize,
    /// The problem's seed-stream address. Scenarios that differ only in
    /// `allocator` and/or `policy` share this address — and therefore the
    /// identical problem instance — which is what makes cross-scheme and
    /// cross-policy comparisons paired and lets the memoization layer elide
    /// regeneration.
    pub problem_stream: u64,
}

/// Detection-latency statistics from a [`crate::spec::Evaluation::Detection`]
/// scenario.
///
/// The latency summaries are `None` when **no** attack was detected within
/// the horizon — a run that detects nothing must stay distinguishable from a
/// run that detects instantly, so these serialize as `null` (JSONL) / empty
/// (CSV) rather than `0.0`. Undetected attacks are counted explicitly in
/// [`DetectionStats::missed`].
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionStats {
    /// Number of injected attacks.
    pub injected: usize,
    /// Number detected before the horizon.
    pub detected: usize,
    /// Number of injected attacks that were **not** detected before the
    /// horizon (`injected − detected`).
    pub missed: usize,
    /// Mean detection latency in milliseconds (`None` if nothing was
    /// detected).
    pub mean_ms: Option<f64>,
    /// Median detection latency in milliseconds (`None` if nothing was
    /// detected).
    pub median_ms: Option<f64>,
    /// 95th-percentile detection latency in milliseconds (`None` if nothing
    /// was detected).
    pub p95_ms: Option<f64>,
    /// Worst observed detection latency in milliseconds (`None` if nothing
    /// was detected).
    pub max_ms: Option<f64>,
    /// The raw latency samples (sorted ascending), so downstream reporting
    /// can rebuild the full empirical CDF.
    pub latencies_ms: Vec<f64>,
}

impl DetectionStats {
    /// Builds the statistics from ascending-sorted latency samples.
    ///
    /// # Panics
    ///
    /// Panics if more latencies than injected attacks are supplied.
    #[must_use]
    pub fn from_sorted_latencies(injected: usize, latencies_ms: Vec<f64>) -> Self {
        use hydra_core::metrics::{mean, percentile_sorted};
        debug_assert!(latencies_ms.windows(2).all(|w| w[0] <= w[1]));
        let detected = latencies_ms.len();
        assert!(
            detected <= injected,
            "more detections ({detected}) than injected attacks ({injected})"
        );
        let nonempty = detected > 0;
        DetectionStats {
            injected,
            detected,
            missed: injected - detected,
            mean_ms: nonempty.then(|| mean(&latencies_ms)),
            median_ms: nonempty.then(|| percentile_sorted(&latencies_ms, 50.0)),
            p95_ms: nonempty.then(|| percentile_sorted(&latencies_ms, 95.0)),
            max_ms: latencies_ms.last().copied(),
            latencies_ms,
        }
    }
}

/// The result of evaluating one [`Scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The evaluated scenario.
    pub scenario: Scenario,
    /// Whether the generated task set passed the Eq. (1) necessary condition
    /// (fixed workloads are always feasible). Infeasible task sets are not
    /// offered to the allocator, mirroring the paper's discard rule.
    pub feasible: bool,
    /// Whether the scheme scheduled the task set.
    pub schedulable: bool,
    /// Rendered allocation error when `schedulable` is false (and the task
    /// set was feasible).
    pub error: Option<String>,
    /// Number of real-time tasks in the problem.
    pub n_rt: usize,
    /// Number of security tasks in the problem.
    pub n_sec: usize,
    /// Achieved total utilization of the generated problem (WCET rounding
    /// moves it slightly off the requested grid value).
    pub total_utilization: f64,
    /// Cumulative tightness `Σ ω_s · η_s` of the allocation (after the
    /// scenario's period policy was applied).
    pub cumulative_tightness: Option<f64>,
    /// Mean per-task tightness of the allocation.
    pub mean_tightness: Option<f64>,
    /// Mean normalised period slack `(T^max − T)/T^max` over the placed
    /// security tasks — how far the granted periods stay from the point
    /// where monitoring becomes ineffective. `None` when nothing scheduled
    /// or the security set is empty.
    pub period_slack: Option<f64>,
    /// Achieved-vs-desired monitoring frequency ratio
    /// `Σ 1/T_s / Σ 1/T_s^des ∈ (0, 1]` — `1` means every check runs at the
    /// rate the designer asked for. `None` when nothing scheduled or the
    /// security set is empty.
    pub freq_ratio: Option<f64>,
    /// Detection statistics (only for detection scenarios that scheduled).
    pub detection: Option<DetectionStats>,
}

impl ScenarioOutcome {
    /// An outcome for a scenario whose task set failed the Eq. (1) filter.
    #[must_use]
    pub fn infeasible(
        scenario: Scenario,
        n_rt: usize,
        n_sec: usize,
        total_utilization: f64,
    ) -> Self {
        ScenarioOutcome {
            scenario,
            feasible: false,
            schedulable: false,
            error: None,
            n_rt,
            n_sec,
            total_utilization,
            cumulative_tightness: None,
            mean_tightness: None,
            period_slack: None,
            freq_ratio: None,
            detection: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AllocatorKind;

    #[test]
    fn zero_detections_report_null_latency_stats() {
        // Regression: `detected == 0` used to report mean/median/p95 of 0.0,
        // indistinguishable from instant detection.
        let stats = DetectionStats::from_sorted_latencies(7, Vec::new());
        assert_eq!(stats.injected, 7);
        assert_eq!(stats.detected, 0);
        assert_eq!(stats.missed, 7);
        assert_eq!(stats.mean_ms, None);
        assert_eq!(stats.median_ms, None);
        assert_eq!(stats.p95_ms, None);
        assert_eq!(stats.max_ms, None);
    }

    #[test]
    fn detection_stats_summarize_sorted_latencies() {
        let stats = DetectionStats::from_sorted_latencies(5, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(stats.detected, 4);
        assert_eq!(stats.missed, 1);
        assert_eq!(stats.mean_ms, Some(2.5));
        assert_eq!(stats.median_ms, Some(2.5));
        assert_eq!(stats.max_ms, Some(4.0));
        assert!(stats.p95_ms.unwrap() > stats.median_ms.unwrap());
    }

    #[test]
    fn infeasible_outcomes_are_marked_unschedulable() {
        let scenario = Scenario {
            index: 3,
            cores: 4,
            utilization: Some(3.9),
            allocator: AllocatorKind::Hydra,
            policy: crate::spec::PeriodPolicy::Fixed,
            trial: 0,
            problem_stream: 17,
        };
        let outcome = ScenarioOutcome::infeasible(scenario, 12, 8, 3.91);
        assert!(!outcome.feasible);
        assert!(!outcome.schedulable);
        assert_eq!(outcome.n_rt, 12);
        assert!(outcome.cumulative_tightness.is_none());
    }
}
