//! Structured result sinks: streaming JSONL / CSV writers and the aggregate
//! summary rendering.
//!
//! All renderings are **byte-deterministic** for a fixed spec: outcomes are
//! serialized in grid order with a fixed field order, floats are formatted
//! with Rust's shortest-round-trip formatter, and no wall-clock data is ever
//! included. The determinism property tests diff these bytes across runs,
//! thread counts and shard splits.
//!
//! The [`OutcomeSink`] trait is the streaming half: the executor feeds it one
//! outcome at a time **in grid order** (a reorder buffer over the parallel
//! workers restores the order), so a sweep's memory footprint no longer
//! scales with the grid — [`JsonlSink`] and [`CsvSink`] write each record as
//! it arrives and retain nothing. [`VecSink`] is the buffered adapter the
//! compatibility API [`crate::Executor::run`] uses.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::agg::AggregateRow;
use crate::scenario::ScenarioOutcome;

/// Escapes a string for embedding in a JSON value.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number (shortest round-trip; `null` for
/// non-finite values, which JSON cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_owned(), json_f64)
}

/// Renders one outcome as a single JSON line with a fixed field order.
#[must_use]
pub fn outcome_to_json(outcome: &ScenarioOutcome) -> String {
    let s = &outcome.scenario;
    let mut line = String::with_capacity(256);
    let _ = write!(
        line,
        "{{\"index\":{},\"cores\":{},\"utilization\":{},\"allocator\":\"{}\",\"policy\":\"{}\",\
         \"trial\":{},\"stream\":{},\"feasible\":{},\"schedulable\":{},\"n_rt\":{},\"n_sec\":{},\
         \"total_utilization\":{},\"cumulative_tightness\":{},\"mean_tightness\":{},\
         \"period_slack\":{},\"freq_ratio\":{}",
        s.index,
        s.cores,
        opt_f64(s.utilization),
        s.allocator.label(),
        s.policy.label(),
        s.trial,
        s.problem_stream,
        outcome.feasible,
        outcome.schedulable,
        outcome.n_rt,
        outcome.n_sec,
        json_f64(outcome.total_utilization),
        opt_f64(outcome.cumulative_tightness),
        opt_f64(outcome.mean_tightness),
        opt_f64(outcome.period_slack),
        opt_f64(outcome.freq_ratio),
    );
    if let Some(error) = &outcome.error {
        let _ = write!(line, ",\"error\":\"{}\"", json_escape(error));
    }
    if let Some(d) = &outcome.detection {
        let _ = write!(
            line,
            ",\"detection\":{{\"injected\":{},\"detected\":{},\"missed\":{},\"mean_ms\":{},\
             \"median_ms\":{},\"p95_ms\":{},\"max_ms\":{}}}",
            d.injected,
            d.detected,
            d.missed,
            opt_f64(d.mean_ms),
            opt_f64(d.median_ms),
            opt_f64(d.p95_ms),
            opt_f64(d.max_ms),
        );
    }
    line.push('}');
    line
}

/// The header line of the per-scenario CSV rendering (no trailing newline).
pub const CSV_HEADER: &str = "index,cores,utilization,allocator,policy,trial,stream,feasible,\
                              schedulable,n_rt,n_sec,total_utilization,cumulative_tightness,\
                              mean_tightness,period_slack,freq_ratio,detected,missed,\
                              mean_detection_ms";

/// Renders one outcome as a CSV row matching [`CSV_HEADER`] (no newline).
#[must_use]
pub fn outcome_to_csv_row(outcome: &ScenarioOutcome) -> String {
    let s = &outcome.scenario;
    let csv_opt = |v: Option<f64>| v.map_or(String::new(), |v| format!("{v}"));
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        s.index,
        s.cores,
        csv_opt(s.utilization),
        s.allocator.label(),
        s.policy.label(),
        s.trial,
        s.problem_stream,
        outcome.feasible,
        outcome.schedulable,
        outcome.n_rt,
        outcome.n_sec,
        outcome.total_utilization,
        csv_opt(outcome.cumulative_tightness),
        csv_opt(outcome.mean_tightness),
        csv_opt(outcome.period_slack),
        csv_opt(outcome.freq_ratio),
        outcome
            .detection
            .as_ref()
            .map_or(String::new(), |d| d.detected.to_string()),
        outcome
            .detection
            .as_ref()
            .map_or(String::new(), |d| d.missed.to_string()),
        csv_opt(outcome.detection.as_ref().and_then(|d| d.mean_ms)),
    )
}

/// A consumer of scenario outcomes, fed **in grid order** by the streaming
/// executor ([`crate::Executor::run_streaming`]).
///
/// Implementations should write or fold each record as it arrives and retain
/// O(1) state, so sweep memory stays bounded regardless of grid size.
///
/// `Send` is required because the parallel executor's reorder buffer hands
/// the sink across worker threads (exactly one worker drains it at a time,
/// under a lock, so `Sync` is not needed).
pub trait OutcomeSink: Send {
    /// Consumes the next outcome (called in ascending grid-index order).
    ///
    /// # Errors
    ///
    /// Returns an I/O error to abort the sweep (e.g. a full disk).
    fn record(&mut self, outcome: &ScenarioOutcome) -> std::io::Result<()>;

    /// Called once after the last outcome of the swept range.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from flushing buffered output.
    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Streams outcomes as JSONL (one JSON object per line) to any writer.
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write> {
    writer: W,
    bytes: u64,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, bytes: 0 }
    }

    /// Bytes handed to the writer so far (a flushed writer's file length).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Returns the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    /// The inner writer (e.g. to flush it).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.writer
    }
}

impl<W: std::io::Write + Send> OutcomeSink for JsonlSink<W> {
    fn record(&mut self, outcome: &ScenarioOutcome) -> std::io::Result<()> {
        let mut line = outcome_to_json(outcome);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.bytes += line.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

/// Streams outcomes as CSV rows to any writer.
///
/// The header is written before the first record when `with_header` is set —
/// shard 1 of a split sweep writes it, later shards suppress it so the
/// concatenation of all shard files is byte-identical to a single-run CSV.
#[derive(Debug)]
pub struct CsvSink<W: std::io::Write> {
    writer: W,
    bytes: u64,
    header_pending: bool,
}

impl<W: std::io::Write> CsvSink<W> {
    /// Wraps a writer; `with_header` controls whether [`CSV_HEADER`] is
    /// emitted before the first row.
    pub fn new(writer: W, with_header: bool) -> Self {
        CsvSink {
            writer,
            bytes: 0,
            header_pending: with_header,
        }
    }

    /// Bytes handed to the writer so far (a flushed writer's file length).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Returns the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    /// The inner writer (e.g. to flush it).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.writer
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.bytes += line.len() as u64 + 1;
        Ok(())
    }
}

impl<W: std::io::Write + Send> OutcomeSink for CsvSink<W> {
    fn record(&mut self, outcome: &ScenarioOutcome) -> std::io::Result<()> {
        if self.header_pending {
            self.header_pending = false;
            self.write_line(CSV_HEADER)?;
        }
        self.write_line(&outcome_to_csv_row(outcome))
    }

    fn finish(&mut self) -> std::io::Result<()> {
        // An empty shard of a headered CSV still owes its header.
        if self.header_pending {
            self.header_pending = false;
            self.write_line(CSV_HEADER)?;
        }
        self.writer.flush()
    }
}

/// Buffers outcomes in memory — the adapter behind the non-streaming
/// [`crate::Executor::run`]. Memory scales with the grid; prefer the
/// streaming sinks for large sweeps.
#[derive(Debug, Default)]
pub struct VecSink {
    outcomes: Vec<ScenarioOutcome>,
}

impl VecSink {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The buffered outcomes, in grid order.
    #[must_use]
    pub fn into_outcomes(self) -> Vec<ScenarioOutcome> {
        self.outcomes
    }

    /// Borrows the buffered outcomes, in grid order.
    #[must_use]
    pub fn outcomes(&self) -> &[ScenarioOutcome] {
        &self.outcomes
    }
}

impl OutcomeSink for VecSink {
    fn record(&mut self, outcome: &ScenarioOutcome) -> std::io::Result<()> {
        self.outcomes.push(outcome.clone());
        Ok(())
    }
}

/// Discards every outcome — for sweeps consumed purely through the online
/// aggregates (e.g. the Figure 2 driver).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl OutcomeSink for NullSink {
    fn record(&mut self, _outcome: &ScenarioOutcome) -> std::io::Result<()> {
        Ok(())
    }
}

/// Fans one outcome stream out to several sinks (e.g. JSONL + CSV +
/// checkpointer in the `dse` CLI).
#[derive(Debug, Default)]
pub struct TeeSink<'a> {
    sinks: Vec<&'a mut dyn OutcomeSink>,
}

impl<'a> TeeSink<'a> {
    /// Creates an empty tee.
    #[must_use]
    pub fn new() -> Self {
        TeeSink { sinks: Vec::new() }
    }

    /// Adds a downstream sink.
    #[must_use]
    pub fn with(mut self, sink: &'a mut dyn OutcomeSink) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl std::fmt::Debug for dyn OutcomeSink + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn OutcomeSink")
    }
}

impl OutcomeSink for TeeSink<'_> {
    fn record(&mut self, outcome: &ScenarioOutcome) -> std::io::Result<()> {
        for sink in &mut self.sinks {
            sink.record(outcome)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> std::io::Result<()> {
        for sink in &mut self.sinks {
            sink.finish()?;
        }
        Ok(())
    }
}

/// Renders all outcomes as JSONL (one JSON object per line, grid order).
#[must_use]
pub fn to_jsonl(outcomes: &[ScenarioOutcome]) -> String {
    let mut out = String::new();
    for outcome in outcomes {
        out.push_str(&outcome_to_json(outcome));
        out.push('\n');
    }
    out
}

/// Renders all outcomes as a flat CSV (header + one row per scenario).
#[must_use]
pub fn to_csv(outcomes: &[ScenarioOutcome]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for outcome in outcomes {
        out.push_str(&outcome_to_csv_row(outcome));
        out.push('\n');
    }
    out
}

/// Renders the aggregate summary as CSV.
#[must_use]
pub fn summary_to_csv(rows: &[AggregateRow]) -> String {
    let mut out = String::from(
        "cores,allocator,policy,utilization,scenarios,feasible,scheduled,acceptance_ratio,\
         mean_tightness,p50_tightness,p99_tightness,mean_freq_ratio\n",
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            row.cores,
            row.allocator.label(),
            row.policy.label(),
            row.utilization.map_or(String::new(), |v| format!("{v}")),
            row.scenarios,
            row.feasible,
            row.scheduled,
            row.acceptance_ratio,
            row.mean_tightness,
            row.p50_tightness,
            row.p99_tightness,
            row.mean_freq_ratio,
        );
    }
    out
}

/// The header line of the frontier artifact CSV (no trailing newline) — one
/// row per probed utilization point of each `(cores, allocator, policy)`
/// slice, carrying that slice's final cliff bracket and the in-slice
/// Pareto-front flag.
pub const FRONTIER_HEADER: &str = "cores,allocator,policy,utilization,scenarios,feasible,\
                                   schedulable,acceptance_ratio,mean_tightness,mean_freq_ratio,\
                                   cliff_lo,cliff_hi,pareto";

/// Renders one frontier row as a CSV line matching [`FRONTIER_HEADER`]
/// (no newline).
#[must_use]
pub fn frontier_row_to_csv(row: &crate::frontier::FrontierRow) -> String {
    let csv_opt = |v: Option<f64>| v.map_or(String::new(), |v| format!("{v}"));
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{}",
        row.cores,
        row.allocator.label(),
        row.policy.label(),
        row.utilization,
        row.scenarios,
        row.feasible,
        row.scheduled,
        row.acceptance_ratio,
        row.mean_tightness,
        row.mean_freq_ratio,
        csv_opt(row.cliff_lo),
        csv_opt(row.cliff_hi),
        row.pareto,
    )
}

/// Renders the full frontier artifact (header + one row per probed point,
/// slices in spec order, utilizations ascending within each slice).
#[must_use]
pub fn frontier_to_csv(rows: &[crate::frontier::FrontierRow]) -> String {
    let mut out = String::from(FRONTIER_HEADER);
    out.push('\n');
    for row in rows {
        out.push_str(&frontier_row_to_csv(row));
        out.push('\n');
    }
    out
}

/// The files one sweep wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrittenFiles {
    /// Per-scenario JSONL records.
    pub jsonl: PathBuf,
    /// Per-scenario flat CSV.
    pub csv: PathBuf,
    /// Aggregate summary CSV.
    pub summary: PathBuf,
}

/// Writes the three renderings to `dir/{name}.jsonl`, `dir/{name}.csv` and
/// `dir/{name}_summary.csv`, creating `dir` if needed.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing a file.
#[deprecated(
    since = "0.1.0",
    note = "stream through `JsonlSink`/`CsvSink` (as the `dse` CLI does) instead of \
            buffering the whole sweep; this shim will be removed next release"
)]
pub fn write_outputs(
    dir: impl AsRef<Path>,
    name: &str,
    outcomes: &[ScenarioOutcome],
    rows: &[AggregateRow],
) -> std::io::Result<WrittenFiles> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let write = |path: &Path, content: &str| -> std::io::Result<()> {
        let mut file = fs::File::create(path)?;
        file.write_all(content.as_bytes())
    };
    let files = WrittenFiles {
        jsonl: dir.join(format!("{name}.jsonl")),
        csv: dir.join(format!("{name}.csv")),
        summary: dir.join(format!("{name}_summary.csv")),
    };
    write(&files.jsonl, &to_jsonl(outcomes))?;
    write(&files.csv, &to_csv(outcomes))?;
    write(&files.summary, &summary_to_csv(rows))?;
    Ok(files)
}

#[cfg(test)]
#[allow(deprecated)] // the buffered shims stay covered until their removal
mod tests {
    use super::*;
    use crate::agg::aggregate;
    use crate::exec::Executor;
    use crate::scenario::{DetectionStats, Scenario, ScenarioOutcome};
    use crate::spec::{AllocatorKind, ScenarioSpec, UtilizationGrid};

    fn outcomes() -> Vec<ScenarioOutcome> {
        let mut spec = ScenarioSpec::synthetic("sink-test");
        spec.cores = vec![2];
        spec.utilizations = UtilizationGrid::Fractions(vec![0.2]);
        spec.allocators = vec![AllocatorKind::Hydra];
        spec.trials = 2;
        Executor::serial().run(&spec).outcomes
    }

    #[test]
    fn jsonl_has_one_wellformed_line_per_outcome() {
        let outcomes = outcomes();
        let jsonl = to_jsonl(&outcomes);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), outcomes.len());
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"allocator\":\"hydra\""));
            assert!(line.contains("\"schedulable\":"));
            // Balanced braces (no stray quotes breaking the structure).
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "{line}"
            );
        }
    }

    #[test]
    fn csv_rows_match_header_arity() {
        let csv = to_csv(&outcomes());
        let mut lines = csv.lines();
        let header_fields = lines.next().unwrap().matches(',').count();
        for line in lines {
            assert_eq!(line.matches(',').count(), header_fields, "{line}");
        }
    }

    #[test]
    fn streaming_sinks_match_the_buffered_renderings() {
        let outcomes = outcomes();
        let mut jsonl = JsonlSink::new(Vec::new());
        let mut csv = CsvSink::new(Vec::new(), true);
        for outcome in &outcomes {
            jsonl.record(outcome).unwrap();
            csv.record(outcome).unwrap();
        }
        jsonl.finish().unwrap();
        csv.finish().unwrap();
        assert_eq!(jsonl.bytes_written(), to_jsonl(&outcomes).len() as u64);
        assert_eq!(
            String::from_utf8(jsonl.into_inner()).unwrap(),
            to_jsonl(&outcomes)
        );
        assert_eq!(
            String::from_utf8(csv.into_inner()).unwrap(),
            to_csv(&outcomes)
        );
    }

    #[test]
    fn headerless_csv_shards_concatenate_to_the_full_csv() {
        let outcomes = outcomes();
        let (head, tail) = outcomes.split_at(1);
        let mut first = CsvSink::new(Vec::new(), true);
        let mut second = CsvSink::new(Vec::new(), false);
        for o in head {
            first.record(o).unwrap();
        }
        for o in tail {
            second.record(o).unwrap();
        }
        first.finish().unwrap();
        second.finish().unwrap();
        let mut joined = first.into_inner();
        joined.extend_from_slice(&second.into_inner());
        assert_eq!(String::from_utf8(joined).unwrap(), to_csv(&outcomes));
    }

    #[test]
    fn zero_detection_serializes_as_null_and_empty() {
        // Regression: an outcome that detected nothing must not render 0.0.
        let scenario = Scenario {
            index: 0,
            cores: 2,
            utilization: None,
            allocator: AllocatorKind::Hydra,
            policy: crate::spec::PeriodPolicy::Fixed,
            trial: 0,
            problem_stream: 0,
        };
        let mut outcome = ScenarioOutcome::infeasible(scenario, 3, 2, 0.5);
        outcome.feasible = true;
        outcome.schedulable = true;
        outcome.detection = Some(DetectionStats::from_sorted_latencies(4, Vec::new()));
        let json = outcome_to_json(&outcome);
        assert!(
            json.contains(
                "\"detection\":{\"injected\":4,\"detected\":0,\"missed\":4,\"mean_ms\":null,\
                 \"median_ms\":null,\"p95_ms\":null,\"max_ms\":null}"
            ),
            "{json}"
        );
        let row = outcome_to_csv_row(&outcome);
        assert!(row.ends_with(",0,4,"), "{row}");
    }

    #[test]
    fn summary_csv_renders_aggregates() {
        let outcomes = outcomes();
        let rows = aggregate(&outcomes);
        let csv = summary_to_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(csv.contains("acceptance_ratio"));
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn outputs_write_to_disk() {
        let dir = std::env::temp_dir().join("rt_dse_sink_test");
        let outcomes = outcomes();
        let rows = aggregate(&outcomes);
        let files = write_outputs(&dir, "demo", &outcomes, &rows).unwrap();
        assert!(fs::read_to_string(&files.jsonl).unwrap().contains("hydra"));
        assert!(fs::read_to_string(&files.csv)
            .unwrap()
            .starts_with("index,"));
        assert!(fs::read_to_string(&files.summary)
            .unwrap()
            .starts_with("cores,"));
        let _ = fs::remove_dir_all(&dir);
    }
}
