//! Structured result sinks: JSONL, CSV and the aggregate summary.
//!
//! All renderings are **byte-deterministic** for a fixed spec: outcomes are
//! serialized in grid order with a fixed field order, floats are formatted
//! with Rust's shortest-round-trip formatter, and no wall-clock data is ever
//! included. The determinism property tests diff these bytes across runs and
//! thread counts.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::agg::AggregateRow;
use crate::scenario::ScenarioOutcome;

/// Escapes a string for embedding in a JSON value.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number (shortest round-trip; `null` for
/// non-finite values, which JSON cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_owned(), json_f64)
}

/// Renders one outcome as a single JSON line with a fixed field order.
#[must_use]
pub fn outcome_to_json(outcome: &ScenarioOutcome) -> String {
    let s = &outcome.scenario;
    let mut line = String::with_capacity(256);
    let _ = write!(
        line,
        "{{\"index\":{},\"cores\":{},\"utilization\":{},\"allocator\":\"{}\",\"trial\":{},\
         \"stream\":{},\"feasible\":{},\"schedulable\":{},\"n_rt\":{},\"n_sec\":{},\
         \"total_utilization\":{},\"cumulative_tightness\":{},\"mean_tightness\":{}",
        s.index,
        s.cores,
        opt_f64(s.utilization),
        s.allocator.label(),
        s.trial,
        s.problem_stream,
        outcome.feasible,
        outcome.schedulable,
        outcome.n_rt,
        outcome.n_sec,
        json_f64(outcome.total_utilization),
        opt_f64(outcome.cumulative_tightness),
        opt_f64(outcome.mean_tightness),
    );
    if let Some(error) = &outcome.error {
        let _ = write!(line, ",\"error\":\"{}\"", json_escape(error));
    }
    if let Some(d) = &outcome.detection {
        let _ = write!(
            line,
            ",\"detection\":{{\"injected\":{},\"detected\":{},\"mean_ms\":{},\
             \"median_ms\":{},\"p95_ms\":{},\"max_ms\":{}}}",
            d.injected,
            d.detected,
            json_f64(d.mean_ms),
            json_f64(d.median_ms),
            json_f64(d.p95_ms),
            json_f64(d.max_ms),
        );
    }
    line.push('}');
    line
}

/// Renders all outcomes as JSONL (one JSON object per line, grid order).
#[must_use]
pub fn to_jsonl(outcomes: &[ScenarioOutcome]) -> String {
    let mut out = String::new();
    for outcome in outcomes {
        out.push_str(&outcome_to_json(outcome));
        out.push('\n');
    }
    out
}

/// Renders all outcomes as a flat CSV (header + one row per scenario).
#[must_use]
pub fn to_csv(outcomes: &[ScenarioOutcome]) -> String {
    let mut out = String::from(
        "index,cores,utilization,allocator,trial,stream,feasible,schedulable,\
         n_rt,n_sec,total_utilization,cumulative_tightness,mean_tightness,\
         detected,mean_detection_ms\n",
    );
    for outcome in outcomes {
        let s = &outcome.scenario;
        let csv_opt = |v: Option<f64>| v.map_or(String::new(), |v| format!("{v}"));
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            s.index,
            s.cores,
            csv_opt(s.utilization),
            s.allocator.label(),
            s.trial,
            s.problem_stream,
            outcome.feasible,
            outcome.schedulable,
            outcome.n_rt,
            outcome.n_sec,
            outcome.total_utilization,
            csv_opt(outcome.cumulative_tightness),
            csv_opt(outcome.mean_tightness),
            outcome
                .detection
                .as_ref()
                .map_or(String::new(), |d| d.detected.to_string()),
            csv_opt(outcome.detection.as_ref().map(|d| d.mean_ms)),
        );
    }
    out
}

/// Renders the aggregate summary as CSV.
#[must_use]
pub fn summary_to_csv(rows: &[AggregateRow]) -> String {
    let mut out = String::from(
        "cores,allocator,utilization,scenarios,feasible,scheduled,acceptance_ratio,\
         mean_tightness,p50_tightness,p99_tightness\n",
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            row.cores,
            row.allocator.label(),
            row.utilization.map_or(String::new(), |v| format!("{v}")),
            row.scenarios,
            row.feasible,
            row.scheduled,
            row.acceptance_ratio,
            row.mean_tightness,
            row.p50_tightness,
            row.p99_tightness,
        );
    }
    out
}

/// The files one sweep wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrittenFiles {
    /// Per-scenario JSONL records.
    pub jsonl: PathBuf,
    /// Per-scenario flat CSV.
    pub csv: PathBuf,
    /// Aggregate summary CSV.
    pub summary: PathBuf,
}

/// Writes the three renderings to `dir/{name}.jsonl`, `dir/{name}.csv` and
/// `dir/{name}_summary.csv`, creating `dir` if needed.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing a file.
pub fn write_outputs(
    dir: impl AsRef<Path>,
    name: &str,
    outcomes: &[ScenarioOutcome],
    rows: &[AggregateRow],
) -> std::io::Result<WrittenFiles> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let write = |path: &Path, content: &str| -> std::io::Result<()> {
        let mut file = fs::File::create(path)?;
        file.write_all(content.as_bytes())
    };
    let files = WrittenFiles {
        jsonl: dir.join(format!("{name}.jsonl")),
        csv: dir.join(format!("{name}.csv")),
        summary: dir.join(format!("{name}_summary.csv")),
    };
    write(&files.jsonl, &to_jsonl(outcomes))?;
    write(&files.csv, &to_csv(outcomes))?;
    write(&files.summary, &summary_to_csv(rows))?;
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::aggregate;
    use crate::exec::Executor;
    use crate::spec::{AllocatorKind, ScenarioSpec, UtilizationGrid};

    fn outcomes() -> Vec<ScenarioOutcome> {
        let mut spec = ScenarioSpec::synthetic("sink-test");
        spec.cores = vec![2];
        spec.utilizations = UtilizationGrid::Fractions(vec![0.2]);
        spec.allocators = vec![AllocatorKind::Hydra];
        spec.trials = 2;
        Executor::serial().run(&spec).outcomes
    }

    #[test]
    fn jsonl_has_one_wellformed_line_per_outcome() {
        let outcomes = outcomes();
        let jsonl = to_jsonl(&outcomes);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), outcomes.len());
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"allocator\":\"hydra\""));
            assert!(line.contains("\"schedulable\":"));
            // Balanced braces (no stray quotes breaking the structure).
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "{line}"
            );
        }
    }

    #[test]
    fn csv_rows_match_header_arity() {
        let csv = to_csv(&outcomes());
        let mut lines = csv.lines();
        let header_fields = lines.next().unwrap().matches(',').count();
        for line in lines {
            assert_eq!(line.matches(',').count(), header_fields, "{line}");
        }
    }

    #[test]
    fn summary_csv_renders_aggregates() {
        let outcomes = outcomes();
        let rows = aggregate(&outcomes);
        let csv = summary_to_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(csv.contains("acceptance_ratio"));
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn outputs_write_to_disk() {
        let dir = std::env::temp_dir().join("rt_dse_sink_test");
        let outcomes = outcomes();
        let rows = aggregate(&outcomes);
        let files = write_outputs(&dir, "demo", &outcomes, &rows).unwrap();
        assert!(fs::read_to_string(&files.jsonl).unwrap().contains("hydra"));
        assert!(fs::read_to_string(&files.csv)
            .unwrap()
            .starts_with("index,"));
        assert!(fs::read_to_string(&files.summary)
            .unwrap()
            .starts_with("cores,"));
        let _ = fs::remove_dir_all(&dir);
    }
}
