//! Declarative description of a design-space sweep.
//!
//! A [`ScenarioSpec`] names the *axes* of an exploration — core counts,
//! utilization grid, allocation schemes, trial counts and the base seed —
//! and the engine turns it into concrete scenario points, evaluates them in
//! parallel and aggregates the results. The paper's whole evaluation
//! (Figures 1–3) is expressible as three such specs.

use hydra_core::allocator::{Allocator, HydraAllocator, OptimalAllocator, SingleCoreAllocator};
use hydra_core::precedence::{table1_precedence, PrecedenceGraph};
use hydra_core::{readapt_allocation_with_mode, JointOptions};
use hydra_core::{Allocation, AllocationProblem, NpHydraAllocator, PrecedenceHydraAllocator};
use rt_core::batch::BatchMode;
use taskgen::SyntheticConfig;

/// The allocation schemes the sweep engine can compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AllocatorKind {
    /// The paper's contribution: iterative best-fit with period adaptation.
    Hydra,
    /// The baseline: one core dedicated to security tasks.
    SingleCore,
    /// HYDRA with non-preemptive security-task execution.
    NpHydra,
    /// HYDRA honouring a precedence order between security tasks.
    Precedence,
    /// The exhaustive optimal allocation (exponential; small instances only).
    Optimal,
}

impl AllocatorKind {
    /// Every scheme, in canonical order.
    pub const ALL: [AllocatorKind; 5] = [
        AllocatorKind::Hydra,
        AllocatorKind::SingleCore,
        AllocatorKind::NpHydra,
        AllocatorKind::Precedence,
        AllocatorKind::Optimal,
    ];

    /// Stable lower-case label used in output records and CLI flags.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AllocatorKind::Hydra => "hydra",
            AllocatorKind::SingleCore => "singlecore",
            AllocatorKind::NpHydra => "nphydra",
            AllocatorKind::Precedence => "precedence",
            AllocatorKind::Optimal => "optimal",
        }
    }

    /// Parses a label (as produced by [`AllocatorKind::label`], case
    /// insensitive; `single_core` and `single-core` are accepted aliases).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "hydra" => Some(AllocatorKind::Hydra),
            "singlecore" | "single" => Some(AllocatorKind::SingleCore),
            "nphydra" | "np" => Some(AllocatorKind::NpHydra),
            "precedence" | "prec" => Some(AllocatorKind::Precedence),
            "optimal" | "opt" => Some(AllocatorKind::Optimal),
            _ => None,
        }
    }

    /// Whether this scheme's granted periods may be re-optimised after
    /// allocation by the [`PeriodPolicy::Adapt`]/[`PeriodPolicy::Joint`]
    /// passes, which work per core under the base preemptive model of
    /// Eq. (5)/(7).
    ///
    /// The precedence scheme is excluded: it guarantees every successor's
    /// period is at least its predecessor's *across cores*, an invariant a
    /// per-core pass cannot see, let alone preserve. Its allocations keep
    /// the granted periods under every policy. (The non-preemptive scheme
    /// stays eligible — re-optimised periods ignore its blocking term and
    /// are documented as an upper bound, but no hard ordering invariant
    /// breaks.)
    #[must_use]
    pub fn supports_period_reoptimization(self) -> bool {
        !matches!(self, AllocatorKind::Precedence)
    }

    /// Builds the allocator for a problem with `security_task_count` tasks.
    ///
    /// The precedence scheme receives the Table I precedence graph when the
    /// workload is the UAV case study (whose security set *is* Table I), and
    /// an unconstrained graph of the right size otherwise.
    #[must_use]
    pub fn build(self, security_task_count: usize, workload: &Workload) -> Box<dyn Allocator> {
        match self {
            AllocatorKind::Hydra => Box::new(HydraAllocator::default()),
            AllocatorKind::SingleCore => Box::new(SingleCoreAllocator::default()),
            AllocatorKind::NpHydra => Box::new(NpHydraAllocator::new()),
            AllocatorKind::Precedence => {
                let graph = match workload {
                    Workload::CaseStudyUav => table1_precedence(),
                    Workload::Synthetic(_) => PrecedenceGraph::new(security_task_count),
                };
                Box::new(PrecedenceHydraAllocator::new(graph))
            }
            AllocatorKind::Optimal => Box::new(OptimalAllocator::default()),
        }
    }
}

/// What happens to the security-task periods **after** an allocation scheme
/// has placed the tasks — the *period policy* axis of the design space.
///
/// The DATE 2018 paper fixes each period at allocation time; the follow-up
/// "Period Adaptation for Continuous Security Monitoring in Multicore
/// Real-Time Systems" (Hasan et al., 2019) shows that re-optimising periods
/// once the assignment is known changes the achievable monitoring frequency.
/// Scenarios that differ only in this axis share their seed address *and*
/// their allocator, so policy comparisons are paired exactly like the
/// allocator axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PeriodPolicy {
    /// Keep the periods the allocator granted (the paper's behaviour).
    Fixed,
    /// Re-run the closed-form Eq. (7) adaptation per core in priority order
    /// (greedy smallest feasible periods given the final assignment).
    Adapt,
    /// Jointly re-optimise every core's period vector with the
    /// coordinate-ascent refinement of `hydra_core::joint` — may stretch a
    /// high-priority period to recover cumulative tightness below it.
    Joint,
}

impl PeriodPolicy {
    /// Every policy, in canonical order.
    pub const ALL: [PeriodPolicy; 3] = [
        PeriodPolicy::Fixed,
        PeriodPolicy::Adapt,
        PeriodPolicy::Joint,
    ];

    /// Stable lower-case label used in output records and CLI flags.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PeriodPolicy::Fixed => "fixed",
            PeriodPolicy::Adapt => "adapt",
            PeriodPolicy::Joint => "joint",
        }
    }

    /// Parses a label (as produced by [`PeriodPolicy::label`], case
    /// insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "fixed" | "none" => Some(PeriodPolicy::Fixed),
            "adapt" | "adaptive" | "greedy" => Some(PeriodPolicy::Adapt),
            "joint" => Some(PeriodPolicy::Joint),
            _ => None,
        }
    }

    /// Applies the policy to a finished allocation: [`PeriodPolicy::Fixed`]
    /// is the identity, the other two are post-allocation re-optimisation
    /// passes over the same core assignment (see
    /// [`hydra_core::readapt_allocation`]).
    #[must_use]
    pub fn apply(self, problem: &AllocationProblem, allocation: Allocation) -> Allocation {
        self.apply_with_mode(problem, allocation, BatchMode::Batch)
    }

    /// [`PeriodPolicy::apply`] with an explicit kernel [`BatchMode`] for the
    /// per-core joint optimisation. Both modes produce bit-identical
    /// allocations (pinned by the engine's determinism tests).
    #[must_use]
    pub fn apply_with_mode(
        self,
        problem: &AllocationProblem,
        allocation: Allocation,
        mode: BatchMode,
    ) -> Allocation {
        match self {
            PeriodPolicy::Fixed => allocation,
            PeriodPolicy::Adapt => readapt_allocation_with_mode(
                problem,
                &allocation,
                &JointOptions::greedy_only(),
                mode,
            ),
            PeriodPolicy::Joint => {
                readapt_allocation_with_mode(problem, &allocation, &JointOptions::default(), mode)
            }
        }
    }
}

/// Overrides applied on top of [`SyntheticConfig::paper_default`] for each
/// core count in the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyntheticOverrides {
    /// Overrides the real-time task-count range.
    pub rt_tasks: Option<(usize, usize)>,
    /// Overrides the security task-count range (Figure 3 restricts this to
    /// `[2, 6]` so the exhaustive scheme stays tractable).
    pub security_tasks: Option<(usize, usize)>,
}

impl SyntheticOverrides {
    /// Materialises the synthetic-generator configuration for `cores`.
    #[must_use]
    pub fn config_for(self, cores: usize) -> SyntheticConfig {
        let mut config = SyntheticConfig::paper_default(cores);
        if let Some(rt) = self.rt_tasks {
            config.rt_tasks = rt;
        }
        if let Some(sec) = self.security_tasks {
            config.security_tasks = sec;
        }
        config
    }

    /// A stable fingerprint of the overrides, mixed into problem cache keys.
    #[must_use]
    pub(crate) fn fingerprint(self) -> u64 {
        let enc = |r: Option<(usize, usize)>| match r {
            None => 0u64,
            Some((a, b)) => 1 | (a as u64) << 1 | (b as u64) << 32,
        };
        enc(self.rt_tasks) ^ enc(self.security_tasks).rotate_left(17)
    }
}

/// What task sets a sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Synthetic task sets with the Section IV-B parameters (plus overrides),
    /// one fresh set per `(cores, utilization, trial)` address.
    Synthetic(SyntheticOverrides),
    /// The fixed UAV control system with the Table I security tasks,
    /// real-time tasks spread worst-fit across all cores.
    CaseStudyUav,
}

impl Workload {
    /// The real-time partitioning policy of the UAV case study: worst-fit
    /// (load balancing) with exact response-time admission, so the real-time
    /// tasks are spread across all cores as the paper assumes for HYDRA.
    /// This is the single source of truth — the engine applies it to every
    /// [`Workload::CaseStudyUav`] problem, and the `hydra-bench` Figure 1
    /// driver re-exports it.
    #[must_use]
    pub fn uav_partition_config() -> rt_partition::PartitionConfig {
        rt_partition::PartitionConfig::new(
            rt_partition::Heuristic::WorstFit,
            rt_partition::AdmissionTest::ResponseTime,
        )
    }
}

/// The utilization axis of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum UtilizationGrid {
    /// The paper's 39-point sweep: `0.025·M, 0.05·M, …, 0.975·M`.
    PaperSweep,
    /// An evenly spaced grid of `steps` points over `(0, 0.975·M]`,
    /// normalised per core count (each value is multiplied by `M`).
    NormalizedSteps(usize),
    /// Explicit per-core-normalised fractions (each multiplied by `M`).
    Fractions(Vec<f64>),
    /// Explicit absolute total utilizations, used as-is for every core count.
    Absolute(Vec<f64>),
    /// No utilization axis (fixed workloads such as the UAV case study).
    NotApplicable,
}

impl UtilizationGrid {
    /// Expands the axis for a platform with `cores` cores. Returns `None`
    /// entries never — an inapplicable axis expands to a single `None`-like
    /// sentinel handled by the grid expander.
    #[must_use]
    pub fn points(&self, cores: usize) -> Vec<f64> {
        match self {
            UtilizationGrid::PaperSweep => {
                (1..=39).map(|i| 0.025 * i as f64 * cores as f64).collect()
            }
            UtilizationGrid::NormalizedSteps(steps) => {
                let steps = (*steps).max(1);
                (1..=steps)
                    .map(|i| 0.975 * i as f64 / steps as f64 * cores as f64)
                    .collect()
            }
            UtilizationGrid::Fractions(fractions) => {
                fractions.iter().map(|f| f * cores as f64).collect()
            }
            UtilizationGrid::Absolute(values) => values.clone(),
            UtilizationGrid::NotApplicable => Vec::new(),
        }
    }
}

/// What the engine measures at each scenario point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evaluation {
    /// Run the allocator and record schedulability plus tightness metrics.
    Allocate,
    /// Allocate, simulate the resulting schedule, inject attacks and record
    /// detection-latency statistics (the Figure 1 pipeline).
    Detection {
        /// Simulated observation window (full `Time` resolution; sub-second
        /// horizons are honoured, not truncated).
        horizon: rt_core::Time,
        /// Number of injected attacks per scenario.
        attacks: usize,
    },
}

/// How the axes combine into scenario points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expansion {
    /// The full cartesian product of all axes.
    Cartesian,
    /// A deterministic random subset of the cartesian product with at most
    /// this many points (seeded from the spec's base seed).
    Sampled(usize),
}

/// Tuning knobs of the frontier-seeking exploration mode (see
/// [`ExploreMode::Frontier`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierConfig {
    /// Refinement points spent per slice *after* the bisection has located
    /// the acceptance cliff: half bracket the cliff outward on the reference
    /// grid, half are low-discrepancy samples over the unprobed remainder of
    /// the utilization axis.
    pub refine_budget: usize,
}

impl Default for FrontierConfig {
    fn default() -> Self {
        FrontierConfig { refine_budget: 8 }
    }
}

/// Which utilization-axis points of the reference grid a sweep evaluates.
///
/// The reference grid — [`ScenarioSpec::utilizations`] expanded per core
/// count — always defines the *addressable* points; the explore mode decides
/// which of them are worth evaluating. [`ExploreMode::Frontier`] replaces
/// the exhaustive enumeration with a deterministic cliff search: per
/// `(cores, allocator, policy)` slice it bisects the utilization axis for
/// the acceptance-ratio cliff and spends [`FrontierConfig::refine_budget`]
/// extra points around it. The schedule derives only from the spec
/// fingerprint plus already-committed round results, so adaptive runs stay
/// byte-identical across thread counts and shard/resume boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// Evaluate every reference-grid point (the classic cartesian sweep).
    Exhaustive,
    /// Binary-search each slice's acceptance cliff, then refine around it.
    Frontier(FrontierConfig),
}

/// A complete, declarative description of one design-space sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Sweep name; used for output file stems.
    pub name: String,
    /// Workload source.
    pub workload: Workload,
    /// Measurement pipeline.
    pub evaluation: Evaluation,
    /// Core counts to explore.
    pub cores: Vec<usize>,
    /// Utilization axis.
    pub utilizations: UtilizationGrid,
    /// Allocation schemes to compare.
    pub allocators: Vec<AllocatorKind>,
    /// Period policies to compare (post-allocation period handling). Policy
    /// variants of one point share the allocator *and* the seed address, so
    /// the comparison is paired.
    pub period_policies: Vec<PeriodPolicy>,
    /// Independent task sets per `(cores, utilization)` point.
    pub trials: usize,
    /// Base seed; every scenario derives its own independent sub-seed.
    pub base_seed: u64,
    /// Cartesian or sampled expansion.
    pub expansion: Expansion,
    /// Exploration strategy over the utilization axis: exhaustive grid
    /// enumeration or the frontier-seeking cliff search. Part of the sweep
    /// fingerprint, so checkpoints from one mode never resume the other.
    pub explore: ExploreMode,
}

impl ScenarioSpec {
    /// A synthetic allocate-only sweep with the paper's defaults; the usual
    /// starting point, customised by mutating fields.
    #[must_use]
    pub fn synthetic(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            workload: Workload::Synthetic(SyntheticOverrides::default()),
            evaluation: Evaluation::Allocate,
            cores: vec![2, 4, 8],
            utilizations: UtilizationGrid::PaperSweep,
            allocators: vec![AllocatorKind::Hydra, AllocatorKind::SingleCore],
            period_policies: vec![PeriodPolicy::Fixed],
            trials: 25,
            base_seed: 2018,
            expansion: Expansion::Cartesian,
            explore: ExploreMode::Exhaustive,
        }
    }

    /// The UAV case-study detection sweep (the Figure 1 pipeline).
    #[must_use]
    pub fn uav_detection(name: impl Into<String>, horizon_secs: u64, attacks: usize) -> Self {
        ScenarioSpec {
            name: name.into(),
            workload: Workload::CaseStudyUav,
            evaluation: Evaluation::Detection {
                horizon: rt_core::Time::from_secs(horizon_secs),
                attacks,
            },
            cores: vec![2, 4, 8],
            utilizations: UtilizationGrid::NotApplicable,
            allocators: vec![AllocatorKind::Hydra, AllocatorKind::SingleCore],
            period_policies: vec![PeriodPolicy::Fixed],
            trials: 1,
            base_seed: 2018,
            expansion: Expansion::Cartesian,
            explore: ExploreMode::Exhaustive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_parse() {
        for kind in AllocatorKind::ALL {
            assert_eq!(AllocatorKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(
            AllocatorKind::parse("single_core"),
            Some(AllocatorKind::SingleCore)
        );
        assert_eq!(
            AllocatorKind::parse("SINGLE-CORE"),
            Some(AllocatorKind::SingleCore)
        );
        assert_eq!(AllocatorKind::parse("bogus"), None);
    }

    #[test]
    fn policy_labels_round_trip_through_parse() {
        for policy in PeriodPolicy::ALL {
            assert_eq!(PeriodPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(PeriodPolicy::parse("ADAPT"), Some(PeriodPolicy::Adapt));
        assert_eq!(PeriodPolicy::parse("greedy"), Some(PeriodPolicy::Adapt));
        assert_eq!(PeriodPolicy::parse("bogus"), None);
    }

    #[test]
    fn specs_default_to_the_fixed_policy() {
        assert_eq!(
            ScenarioSpec::synthetic("s").period_policies,
            vec![PeriodPolicy::Fixed]
        );
        assert_eq!(
            ScenarioSpec::uav_detection("u", 60, 10).period_policies,
            vec![PeriodPolicy::Fixed]
        );
    }

    #[test]
    fn paper_sweep_matches_the_39_points() {
        let points = UtilizationGrid::PaperSweep.points(4);
        assert_eq!(points.len(), 39);
        assert!((points[0] - 0.1).abs() < 1e-9);
        assert!((points[38] - 3.9).abs() < 1e-9);
    }

    #[test]
    fn normalized_steps_scale_with_cores() {
        let p2 = UtilizationGrid::NormalizedSteps(10).points(2);
        let p8 = UtilizationGrid::NormalizedSteps(10).points(8);
        assert_eq!(p2.len(), 10);
        assert!((p8[9] / p2[9] - 4.0).abs() < 1e-9);
        assert!((p2[9] - 0.975 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn overrides_apply_on_top_of_paper_defaults() {
        let overrides = SyntheticOverrides {
            security_tasks: Some((2, 6)),
            rt_tasks: None,
        };
        let config = overrides.config_for(2);
        assert_eq!(config.security_tasks, (2, 6));
        assert_eq!(config.rt_tasks, (6, 20));
        assert_ne!(
            SyntheticOverrides::default().fingerprint(),
            overrides.fingerprint()
        );
    }

    #[test]
    fn builders_produce_named_allocators() {
        let workload = Workload::Synthetic(SyntheticOverrides::default());
        for kind in AllocatorKind::ALL {
            let allocator = kind.build(4, &workload);
            assert!(!allocator.name().is_empty());
        }
        // The UAV workload wires the Table I precedence graph in.
        let uav = AllocatorKind::Precedence.build(6, &Workload::CaseStudyUav);
        assert!(!uav.name().is_empty());
    }
}
