//! The persistent, content-addressed memo store.
//!
//! [`MemoStore`] globalizes the three per-run memo families of
//! [`crate::MemoCache`] — generated problems, Eq. (1) feasibility verdicts
//! and allocator runs — into an on-disk key/value store shared by every run
//! that opens the same directory: the `dse` CLI, the `dse-serve` server, and
//! any embedder of [`crate::api::SweepSession`]. A second identical (or
//! overlapping) sweep pays only for the points nobody has evaluated before.
//!
//! # Layout
//!
//! ```text
//! <root>/STORE                   version header ("dse-memo-store v1")
//! <root>/problem/ab/<hash16>     one entry per content-addressed key
//! <root>/feasibility/cd/<hash16>
//! <root>/allocation/01/<hash16>
//! ```
//!
//! (Stores written by earlier revisions may additionally carry a
//! `partition/` family; it belongs to the retired partition memo and is
//! simply never read — delete it to reclaim space.)
//!
//! Every entry file is plain text: a magic/version line, the full rendered
//! key (echoed so hash collisions and foreign files are detected, not
//! trusted), the family payload, and a trailing FNV-1a checksum over all
//! preceding bytes. Values round-trip **bit-exactly** — `f64`s travel as
//! their IEEE bit patterns and [`Time`]s as raw ticks — which is what makes
//! a warm-store sweep byte-identical to a cold one.
//!
//! # Durability and corruption tolerance
//!
//! Writes follow the checkpoint-v2 discipline: serialize to a uniquely named
//! temporary file in the final directory, `sync_all`, then atomically rename
//! over the final path. Readers therefore never observe a torn entry under
//! POSIX rename semantics; if bytes rot anyway (partial copy, disk fault,
//! manual edit), the checksum or key echo fails and the entry is treated as
//! a **miss** — a corrupt store can cost time, never a wrong answer. The
//! store never evicts; any fanout subdirectory (or the whole root) may be
//! deleted at any time to reclaim space, again costing only recomputation.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use hydra_core::{
    Allocation, AllocationError, AllocationProblem, ExecutionMode, SecurityPlacement, SecurityTask,
    SecurityTaskId, SecurityTaskSet,
};
use rt_core::{RtTask, TaskId, TaskSet, Time};
use rt_partition::{AdmissionTest, CoreId, Heuristic, Partition, PartitionConfig, TaskOrdering};

use crate::memo::{AllocationKey, ProblemKey};

/// The store-level version header (first line of `<root>/STORE`).
const STORE_MAGIC: &str = "dse-memo-store v1";
/// The per-entry version header (first line of every entry file).
const ENTRY_MAGIC: &str = "dse-memo-entry v1";

/// FNV-1a over a byte string — the same structural hash family the memo
/// keys already use, applied to rendered key lines (content addressing) and
/// entry bytes (the corruption checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A persistent, content-addressed, corruption-tolerant store for the three
/// memo families. See the module docs for the layout and durability story.
///
/// All methods take `&self`; a single store (typically behind an `Arc`) is
/// safely shared by concurrent readers and writers — atomicity comes from
/// the tmp-file + rename discipline, not from locks.
#[derive(Debug)]
pub struct MemoStore {
    root: PathBuf,
    fsync: bool,
    /// Distinguishes concurrent writers' temporary files within one process
    /// (the process id distinguishes across processes).
    tmp_seq: AtomicU64,
}

impl MemoStore {
    /// Opens (creating if absent) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory cannot be created, or when an
    /// existing version header does not match — the message names the path
    /// and prints **both** the expected and the found header.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let header = root.join("STORE");
        match std::fs::read_to_string(&header) {
            Ok(found) => {
                let found = found.lines().next().unwrap_or("").to_owned();
                if found != STORE_MAGIC {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "{}: version header mismatch: expected `{STORE_MAGIC}`, found \
                             `{found}` — this directory belongs to an incompatible store \
                             version; point --store elsewhere or delete it",
                            header.display()
                        ),
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                std::fs::write(&header, format!("{STORE_MAGIC}\n"))?;
            }
            Err(e) => return Err(e),
        }
        Ok(MemoStore {
            root,
            fsync: true,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// Disables (or re-enables) the per-entry `fsync` before rename.
    /// Durability drops to "whatever the OS flushed", but atomicity — and
    /// therefore corruption tolerance — is unaffected. Intended for tests
    /// and throwaway caches.
    #[must_use]
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    // ---- per-family accessors -------------------------------------------

    /// Looks up a generated problem. `None` is a miss (absent, corrupt, or
    /// a key-echo mismatch).
    #[must_use]
    pub fn get_problem(&self, key: &ProblemKey) -> Option<AllocationProblem> {
        let payload = self.read_entry("problem", &problem_key_line(key))?;
        decode_problem(&payload)
    }

    /// Persists a generated problem (best effort — see [`MemoStore::put`]
    /// semantics on errors).
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error; the entry is either fully present or
    /// absent, never torn.
    pub fn put_problem(&self, key: &ProblemKey, value: &AllocationProblem) -> io::Result<()> {
        self.write_entry("problem", &problem_key_line(key), &encode_problem(value))
    }

    /// Looks up an Eq. (1) feasibility verdict for `(taskset_hash, cores)`.
    #[must_use]
    pub fn get_feasibility(&self, taskset_hash: u64, cores: usize) -> Option<bool> {
        let payload = self.read_entry("feasibility", &feasibility_key_line(taskset_hash, cores))?;
        match payload.trim() {
            "verdict true" => Some(true),
            "verdict false" => Some(false),
            _ => None,
        }
    }

    /// Persists an Eq. (1) feasibility verdict.
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error.
    pub fn put_feasibility(
        &self,
        taskset_hash: u64,
        cores: usize,
        verdict: bool,
    ) -> io::Result<()> {
        self.write_entry(
            "feasibility",
            &feasibility_key_line(taskset_hash, cores),
            &format!("verdict {verdict}\n"),
        )
    }

    /// Looks up an allocator run (rejections are stored too).
    #[must_use]
    pub fn get_allocation(
        &self,
        key: &AllocationKey,
    ) -> Option<Result<Allocation, AllocationError>> {
        let payload = self.read_entry("allocation", &allocation_key_line(key))?;
        decode_allocation(&payload)
    }

    /// Persists an allocator run. Error variants unknown to the codec are
    /// silently skipped (they will be recomputed — never guessed).
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error.
    pub fn put_allocation(
        &self,
        key: &AllocationKey,
        value: &Result<Allocation, AllocationError>,
    ) -> io::Result<()> {
        let Some(payload) = encode_allocation(value) else {
            return Ok(());
        };
        self.write_entry("allocation", &allocation_key_line(key), &payload)
    }

    // ---- entry plumbing --------------------------------------------------

    /// The final path of the entry addressed by `key_line` within `family`.
    fn entry_path(&self, family: &str, key_line: &str) -> PathBuf {
        let hash = fnv1a(key_line.as_bytes());
        let fanout = format!("{:02x}", (hash >> 56) as u8);
        self.root
            .join(family)
            .join(fanout)
            .join(format!("{hash:016x}"))
    }

    /// Reads and validates one entry; `None` on any miss, version mismatch,
    /// key-echo mismatch or checksum failure. Returns the payload text.
    fn read_entry(&self, family: &str, key_line: &str) -> Option<String> {
        let text = std::fs::read_to_string(self.entry_path(family, key_line)).ok()?;
        // `sum <hex16>\n` is the fixed-width trailer; everything before it
        // is covered by the checksum.
        let trailer_at = text.len().checked_sub(21)?;
        let (body, trailer) = text.split_at(trailer_at);
        let sum = trailer
            .strip_prefix("sum ")?
            .strip_suffix('\n')
            .and_then(|h| u64::from_str_radix(h, 16).ok())?;
        if sum != fnv1a(body.as_bytes()) {
            return None;
        }
        let rest = body.strip_prefix(ENTRY_MAGIC)?.strip_prefix('\n')?;
        let rest = rest.strip_prefix("key ")?;
        let (echoed, payload) = rest.split_once('\n')?;
        if echoed != key_line {
            return None; // hash collision or foreign file: a miss, not a lie
        }
        Some(payload.to_owned())
    }

    /// Serializes and durably writes one entry (tmp + fsync + rename).
    fn write_entry(&self, family: &str, key_line: &str, payload: &str) -> io::Result<()> {
        let path = self.entry_path(family, key_line);
        let dir = path
            .parent()
            .expect("entry paths always have a fanout parent");
        std::fs::create_dir_all(dir)?;
        let mut body = format!("{ENTRY_MAGIC}\nkey {key_line}\n");
        body.push_str(payload);
        if !body.ends_with('\n') {
            body.push('\n');
        }
        let sum = fnv1a(body.as_bytes());
        let _ = writeln!(body, "sum {sum:016x}");
        // relaxed-ok: the sequence number only disambiguates tmp-file names
        // between in-process writers; no data handoff rides on it.
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(
            "{}.{}.{seq}.tmp",
            path.file_name()
                .expect("entry paths always have a file name")
                .to_string_lossy(),
            std::process::id()
        ));
        let result = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            io::Write::write_all(&mut file, body.as_bytes())?;
            if self.fsync {
                file.sync_all()?;
            }
            drop(file);
            std::fs::rename(&tmp, &path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }
}

// ---- key rendering -------------------------------------------------------

fn problem_key_line(key: &ProblemKey) -> String {
    format!(
        "problem cores={} util={:016x} seed={:016x} stream={:016x} cfg={:016x}",
        key.cores, key.utilization_bits, key.base_seed, key.stream, key.config_fingerprint
    )
}

fn feasibility_key_line(taskset_hash: u64, cores: usize) -> String {
    format!("feasibility taskset={taskset_hash:016x} cores={cores}")
}

fn allocation_key_line(key: &AllocationKey) -> String {
    format!(
        "allocation cores={} util={:016x} seed={:016x} stream={:016x} cfg={:016x} scheme={}",
        key.problem.cores,
        key.problem.utilization_bits,
        key.problem.base_seed,
        key.problem.stream,
        key.problem.config_fingerprint,
        key.allocator.label(),
    )
}

// ---- enum labels (exhaustive matches: a new variant is a compile error,
// ---- not a silently misfiled entry) --------------------------------------

fn heuristic_label(h: Heuristic) -> &'static str {
    match h {
        Heuristic::FirstFit => "firstfit",
        Heuristic::BestFit => "bestfit",
        Heuristic::WorstFit => "worstfit",
        Heuristic::NextFit => "nextfit",
    }
}

fn heuristic_parse(s: &str) -> Option<Heuristic> {
    Some(match s {
        "firstfit" => Heuristic::FirstFit,
        "bestfit" => Heuristic::BestFit,
        "worstfit" => Heuristic::WorstFit,
        "nextfit" => Heuristic::NextFit,
        _ => return None,
    })
}

fn admission_label(a: AdmissionTest) -> &'static str {
    match a {
        AdmissionTest::ResponseTime => "rta",
        AdmissionTest::LiuLayland => "liulayland",
        AdmissionTest::Hyperbolic => "hyperbolic",
        AdmissionTest::UtilizationOnly => "utilization",
    }
}

fn ordering_label(o: TaskOrdering) -> &'static str {
    match o {
        TaskOrdering::Declaration => "declaration",
        TaskOrdering::DecreasingUtilization => "decreasing-util",
        TaskOrdering::IncreasingPeriod => "increasing-period",
    }
}

// ---- problem codec -------------------------------------------------------

/// Optional names travel hex-encoded so arbitrary bytes (spaces, newlines)
/// round-trip exactly; `-` encodes "no name".
fn name_hex(name: Option<&str>) -> String {
    match name {
        None => "-".to_owned(),
        Some(n) => {
            let mut out = String::with_capacity(2 * n.len().max(1));
            for b in n.bytes() {
                let _ = write!(out, "{b:02x}");
            }
            if out.is_empty() {
                out.push_str("--"); // empty-but-present name
            }
            out
        }
    }
}

fn name_unhex(field: &str) -> Option<Option<String>> {
    if field == "-" {
        return Some(None);
    }
    if field == "--" {
        return Some(Some(String::new()));
    }
    if !field.len().is_multiple_of(2) {
        return None;
    }
    let mut bytes = Vec::with_capacity(field.len() / 2);
    for i in (0..field.len()).step_by(2) {
        bytes.push(u8::from_str_radix(field.get(i..i + 2)?, 16).ok()?);
    }
    Some(Some(String::from_utf8(bytes).ok()?))
}

fn encode_problem(problem: &AllocationProblem) -> String {
    let mut out = String::new();
    let cfg = problem.partition_config;
    let _ = writeln!(out, "cores {}", problem.cores);
    let _ = writeln!(
        out,
        "config {} {} {}",
        heuristic_label(cfg.heuristic),
        admission_label(cfg.admission),
        ordering_label(cfg.ordering)
    );
    let _ = writeln!(out, "rt {}", problem.rt_tasks.len());
    for task in problem.rt_tasks.tasks() {
        let _ = writeln!(
            out,
            "r {} {} {} {}",
            task.wcet().as_ticks(),
            task.period().as_ticks(),
            task.deadline().as_ticks(),
            name_hex(task.name()),
        );
    }
    let _ = writeln!(out, "sec {}", problem.security_tasks.len());
    for task in problem.security_tasks.tasks() {
        let mode = match task.execution_mode() {
            ExecutionMode::Preemptive => "p",
            ExecutionMode::NonPreemptive => "n",
        };
        let _ = writeln!(
            out,
            "s {} {} {} {:016x} {} {}",
            task.wcet().as_ticks(),
            task.desired_period().as_ticks(),
            task.max_period().as_ticks(),
            task.weight().to_bits(),
            mode,
            name_hex(task.name()),
        );
    }
    out
}

fn decode_problem(payload: &str) -> Option<AllocationProblem> {
    let mut lines = payload.lines();
    let cores: usize = lines.next()?.strip_prefix("cores ")?.parse().ok()?;
    if cores == 0 {
        return None;
    }
    let mut config = lines.next()?.strip_prefix("config ")?.split(' ');
    let heuristic = heuristic_parse(config.next()?)?;
    let admission = match config.next()? {
        "rta" => AdmissionTest::ResponseTime,
        "liulayland" => AdmissionTest::LiuLayland,
        "hyperbolic" => AdmissionTest::Hyperbolic,
        "utilization" => AdmissionTest::UtilizationOnly,
        _ => return None,
    };
    let ordering = match config.next()? {
        "declaration" => TaskOrdering::Declaration,
        "decreasing-util" => TaskOrdering::DecreasingUtilization,
        "increasing-period" => TaskOrdering::IncreasingPeriod,
        _ => return None,
    };
    let n_rt: usize = lines.next()?.strip_prefix("rt ")?.parse().ok()?;
    let mut rt_tasks = Vec::with_capacity(n_rt);
    for _ in 0..n_rt {
        let mut fields = lines.next()?.strip_prefix("r ")?.split(' ');
        let wcet = Time::from_ticks(fields.next()?.parse().ok()?);
        let period = Time::from_ticks(fields.next()?.parse().ok()?);
        let deadline = Time::from_ticks(fields.next()?.parse().ok()?);
        let name = name_unhex(fields.next()?)?;
        let mut task = RtTask::new(wcet, period, deadline).ok()?;
        if let Some(name) = name {
            task = task.with_name(name);
        }
        rt_tasks.push(task);
    }
    let n_sec: usize = lines.next()?.strip_prefix("sec ")?.parse().ok()?;
    let mut sec_tasks = Vec::with_capacity(n_sec);
    for _ in 0..n_sec {
        let mut fields = lines.next()?.strip_prefix("s ")?.split(' ');
        let wcet = Time::from_ticks(fields.next()?.parse().ok()?);
        let desired = Time::from_ticks(fields.next()?.parse().ok()?);
        let max = Time::from_ticks(fields.next()?.parse().ok()?);
        let weight = f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?);
        let mode = match fields.next()? {
            "p" => ExecutionMode::Preemptive,
            "n" => ExecutionMode::NonPreemptive,
            _ => return None,
        };
        let name = name_unhex(fields.next()?)?;
        let mut task = SecurityTask::new(wcet, desired, max)
            .ok()?
            .with_weight(weight)
            .ok()?
            .with_execution_mode(mode);
        if let Some(name) = name {
            task = task.with_name(name);
        }
        sec_tasks.push(task);
    }
    if lines.next().is_some() {
        return None; // trailing garbage: treat as corrupt
    }
    Some(
        AllocationProblem::new(
            TaskSet::new(rt_tasks),
            SecurityTaskSet::new(sec_tasks),
            cores,
        )
        .with_partition_config(PartitionConfig::new(heuristic, admission).with_ordering(ordering)),
    )
}

// ---- assignment codec (shared by the allocation payload) -----------------

fn assignment_field(partition: &Partition) -> String {
    let mut out = String::new();
    for task in 0..partition.task_count() {
        if task > 0 {
            out.push(' ');
        }
        match partition.core_of(TaskId(task)) {
            Some(core) => {
                let _ = write!(out, "{}", core.0);
            }
            None => out.push('-'),
        }
    }
    out
}

fn parse_assignment(field: &str, cores: usize) -> Option<Vec<Option<CoreId>>> {
    if field.is_empty() {
        return Some(Vec::new());
    }
    field
        .split(' ')
        .map(|f| {
            if f == "-" {
                Some(None)
            } else {
                let core: usize = f.parse().ok()?;
                (core < cores).then_some(Some(CoreId(core)))
            }
        })
        .collect()
}

// ---- allocation codec ----------------------------------------------------

/// `None` when the value carries an error variant the codec does not know
/// (`AllocationError` is non-exhaustive): the run is then not persisted.
fn encode_allocation(value: &Result<Allocation, AllocationError>) -> Option<String> {
    match value {
        Ok(allocation) => {
            let partition = allocation.rt_partition();
            let mut out = format!(
                "ok {} cores\na {}\nplacements {}\n",
                partition.cores(),
                assignment_field(partition),
                allocation.len()
            );
            for (_, placement) in allocation.iter() {
                let _ = writeln!(
                    out,
                    "p {} {} {:016x}",
                    placement.core.0,
                    placement.period.as_ticks(),
                    placement.tightness.to_bits()
                );
            }
            Some(out)
        }
        Err(AllocationError::RtPartitionFailed { task, cores }) => {
            Some(format!("err rt-partition-failed {} {cores}\n", task.0))
        }
        Err(AllocationError::SecurityUnschedulable { task }) => Some(format!(
            "err security-unschedulable {}\n",
            task.map_or_else(|| "-".to_owned(), |id| id.0.to_string())
        )),
        Err(AllocationError::InsufficientCores {
            available,
            required,
        }) => Some(format!("err insufficient-cores {available} {required}\n")),
        Err(AllocationError::ProblemTooLarge { assignments, limit }) => {
            Some(format!("err problem-too-large {assignments} {limit}\n"))
        }
        Err(_) => None,
    }
}

fn decode_allocation(payload: &str) -> Option<Result<Allocation, AllocationError>> {
    let mut lines = payload.lines();
    let first = lines.next()?;
    if let Some(rest) = first.strip_prefix("err ") {
        let (kind, args) = rest.split_once(' ').unwrap_or((rest, ""));
        let mut args = args.split(' ');
        let error = match kind {
            "rt-partition-failed" => AllocationError::RtPartitionFailed {
                task: TaskId(args.next()?.parse().ok()?),
                cores: args.next()?.parse().ok()?,
            },
            "security-unschedulable" => AllocationError::SecurityUnschedulable {
                task: match args.next()? {
                    "-" => None,
                    id => Some(SecurityTaskId(id.parse().ok()?)),
                },
            },
            "insufficient-cores" => AllocationError::InsufficientCores {
                available: args.next()?.parse().ok()?,
                required: args.next()?.parse().ok()?,
            },
            "problem-too-large" => AllocationError::ProblemTooLarge {
                assignments: args.next()?.parse().ok()?,
                limit: args.next()?.parse().ok()?,
            },
            _ => return None,
        };
        return Some(Err(error));
    }
    let cores: usize = first
        .strip_prefix("ok ")?
        .strip_suffix(" cores")?
        .parse()
        .ok()?;
    if cores == 0 {
        return None;
    }
    let assignment = parse_assignment(lines.next()?.strip_prefix("a ")?, cores)?;
    let partition = Partition::from_assignment(assignment, cores);
    let n: usize = lines.next()?.strip_prefix("placements ")?.parse().ok()?;
    let mut placements = Vec::with_capacity(n);
    for _ in 0..n {
        let mut fields = lines.next()?.strip_prefix("p ")?.split(' ');
        let core: usize = fields.next()?.parse().ok()?;
        if core >= cores {
            return None;
        }
        placements.push(SecurityPlacement {
            core: CoreId(core),
            period: Time::from_ticks(fields.next()?.parse().ok()?),
            tightness: f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?),
        });
    }
    if lines.next().is_some() {
        return None;
    }
    Some(Ok(Allocation::new(partition, placements)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::{casestudy, catalog};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rt-dse-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn problem_key() -> ProblemKey {
        ProblemKey {
            cores: 2,
            utilization_bits: 0.55f64.to_bits(),
            base_seed: 2018,
            stream: 7,
            config_fingerprint: 42,
        }
    }

    fn uav_problem() -> AllocationProblem {
        AllocationProblem::new(casestudy::uav_rt_tasks(), catalog::table1_tasks(), 2)
    }

    #[test]
    fn problems_round_trip_bit_exactly() {
        let dir = tmp_dir("problem");
        let store = MemoStore::open(&dir).unwrap().with_fsync(false);
        let key = problem_key();
        assert!(store.get_problem(&key).is_none());
        let problem = uav_problem();
        store.put_problem(&key, &problem).unwrap();
        let restored = store.get_problem(&key).expect("entry just written");
        assert_eq!(restored.cores, problem.cores);
        assert_eq!(restored.partition_config, problem.partition_config);
        assert_eq!(restored.rt_tasks.len(), problem.rt_tasks.len());
        for (a, b) in restored.rt_tasks.tasks().zip(problem.rt_tasks.tasks()) {
            assert_eq!(a, b);
        }
        assert_eq!(restored.security_tasks.len(), problem.security_tasks.len());
        for (a, b) in restored
            .security_tasks
            .tasks()
            .zip(problem.security_tasks.tasks())
        {
            assert_eq!(a, b);
        }
        // Bit-exactness of the derived floats, not just approximate equality.
        assert_eq!(
            restored.total_utilization().to_bits(),
            problem.total_utilization().to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn feasibility_and_allocation_round_trip() {
        let dir = tmp_dir("families");
        let store = MemoStore::open(&dir).unwrap().with_fsync(false);
        assert!(store.get_feasibility(9, 2).is_none());
        store.put_feasibility(9, 2, true).unwrap();
        store.put_feasibility(9, 4, false).unwrap();
        assert_eq!(store.get_feasibility(9, 2), Some(true));
        assert_eq!(store.get_feasibility(9, 4), Some(false));

        let partition = Partition::from_assignment(vec![Some(CoreId(0)), None, Some(CoreId(2))], 3);
        let akey = AllocationKey {
            problem: problem_key(),
            allocator: crate::spec::AllocatorKind::Hydra,
        };
        let allocation = Allocation::new(
            partition,
            vec![SecurityPlacement {
                core: CoreId(1),
                period: Time::from_millis(250),
                tightness: 0.875,
            }],
        );
        store.put_allocation(&akey, &Ok(allocation)).unwrap();
        let restored = store.get_allocation(&akey).unwrap().unwrap();
        assert_eq!(restored.len(), 1);
        let (id, placement) = restored.iter().next().unwrap();
        assert_eq!(id, SecurityTaskId(0));
        assert_eq!(placement.core, CoreId(1));
        assert_eq!(placement.period, Time::from_millis(250));
        assert_eq!(placement.tightness.to_bits(), 0.875f64.to_bits());
        let bkey = AllocationKey {
            allocator: crate::spec::AllocatorKind::SingleCore,
            ..akey
        };
        store
            .put_allocation(
                &bkey,
                &Err(AllocationError::ProblemTooLarge {
                    assignments: u128::from(u64::MAX) + 7,
                    limit: 1 << 20,
                }),
            )
            .unwrap();
        assert_eq!(
            store.get_allocation(&bkey),
            Some(Err(AllocationError::ProblemTooLarge {
                assignments: u128::from(u64::MAX) + 7,
                limit: 1 << 20,
            }))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses_never_wrong_answers() {
        let dir = tmp_dir("corrupt");
        let store = MemoStore::open(&dir).unwrap().with_fsync(false);
        store.put_feasibility(1, 2, true).unwrap();
        let path = store.entry_path("feasibility", &feasibility_key_line(1, 2));
        // Flip one payload byte: checksum fails, entry is a miss.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get_feasibility(1, 2), None);
        // Truncated mid-write (no trailer at all): also a miss.
        store.put_feasibility(1, 2, true).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(store.get_feasibility(1, 2), None);
        // An empty file (crashed writer that never renamed would not leave
        // one, but a manual touch might): a miss.
        std::fs::write(&path, b"").unwrap();
        assert_eq!(store.get_feasibility(1, 2), None);
        // A valid rewrite heals the slot.
        store.put_feasibility(1, 2, false).unwrap();
        assert_eq!(store.get_feasibility(1, 2), Some(false));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_echo_rejects_hash_collisions() {
        let dir = tmp_dir("echo");
        let store = MemoStore::open(&dir).unwrap().with_fsync(false);
        store.put_feasibility(3, 2, true).unwrap();
        let path = store.entry_path("feasibility", &feasibility_key_line(3, 2));
        // Copy the (valid) entry onto another key's address: the echoed key
        // no longer matches the requested one, so the read is a miss even
        // though magic and checksum are pristine.
        let other = store.entry_path("feasibility", &feasibility_key_line(4, 2));
        std::fs::create_dir_all(other.parent().unwrap()).unwrap();
        std::fs::copy(&path, &other).unwrap();
        assert_eq!(store.get_feasibility(4, 2), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_version_mismatch_is_a_miss() {
        let dir = tmp_dir("entry-version");
        let store = MemoStore::open(&dir).unwrap().with_fsync(false);
        store.put_feasibility(5, 2, true).unwrap();
        let path = store.entry_path("feasibility", &feasibility_key_line(5, 2));
        let text = std::fs::read_to_string(&path).unwrap();
        let bumped = text.replace("dse-memo-entry v1", "dse-memo-entry v9");
        // Recompute a valid checksum so only the version line differs.
        let body_end = bumped.len() - 21;
        let mut body = bumped[..body_end].to_owned();
        let sum = fnv1a(body.as_bytes());
        let _ = writeln!(body, "sum {sum:016x}");
        std::fs::write(&path, body).unwrap();
        assert_eq!(store.get_feasibility(5, 2), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_version_mismatch_is_rejected_with_both_headers() {
        let dir = tmp_dir("store-version");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("STORE"), "dse-memo-store v99\n").unwrap();
        let err = MemoStore::open(&dir).expect_err("incompatible header must be rejected");
        let message = err.to_string();
        assert!(message.contains("dse-memo-store v1"), "{message}");
        assert!(message.contains("dse-memo-store v99"), "{message}");
        assert!(message.contains("STORE"), "{message}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_a_store_preserves_entries() {
        let dir = tmp_dir("reopen");
        {
            let store = MemoStore::open(&dir).unwrap();
            store.put_feasibility(11, 2, true).unwrap();
        }
        let store = MemoStore::open(&dir).unwrap();
        assert_eq!(store.get_feasibility(11, 2), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn names_round_trip_through_hex() {
        assert_eq!(name_unhex(&name_hex(None)), Some(None));
        assert_eq!(
            name_unhex(&name_hex(Some("check executables"))),
            Some(Some("check executables".to_owned()))
        );
        assert_eq!(name_unhex(&name_hex(Some(""))), Some(Some(String::new())));
        assert_eq!(
            name_unhex(&name_hex(Some("uni\ncode π"))),
            Some(Some("uni\ncode π".to_owned()))
        );
        assert_eq!(name_unhex("zz"), None);
    }
}
