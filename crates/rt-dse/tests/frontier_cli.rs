//! End-to-end determinism contract of `dse sweep --explore frontier`,
//! exercised through the real binary: the JSONL/CSV streams *and* the
//! `{stem}_frontier.csv` Pareto artifact must be byte-identical across
//! worker-thread counts, across a kill (`--stop-after`) + `--resume`
//! cycle, and when a run is split into slice shards and the shard files
//! are concatenated.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// 20-point utilization grid over (0, 1]: dense enough that the
/// singlecore slice has an interior acceptance cliff for the bisection to
/// bracket, small enough that each binary invocation stays sub-second.
fn utils_arg() -> String {
    (1..=20)
        .map(|i| format!("{:.2}", f64::from(i) * 0.05))
        .collect::<Vec<_>>()
        .join(",")
}

fn dse(args: &[&str]) -> std::process::Output {
    let output = Command::new(env!("CARGO_BIN_EXE_dse"))
        .args(args)
        .output()
        .expect("spawn the dse binary");
    assert!(
        output.status.success(),
        "dse {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

/// Run one frontier sweep into `out`, returning after success. `extra`
/// appends per-test flags (threads, shard, stop-after, resume).
fn frontier_sweep(out: &Path, extra: &[&str]) {
    let utils = utils_arg();
    let out_str = out.to_str().expect("utf-8 temp path");
    let mut args = vec![
        "sweep",
        "--cores",
        "2",
        "--utils",
        &utils,
        "--allocators",
        "hydra,singlecore",
        "--trials",
        "2",
        "--seed",
        "2018",
        "--explore",
        "frontier",
        "--refine-budget",
        "4",
        "--name",
        "t",
        "--out",
        out_str,
        "--quiet",
    ];
    args.extend_from_slice(extra);
    dse(&args);
}

/// A fresh per-test output directory under the system temp dir.
fn temp_out(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dse-frontier-cli-{}-{test}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale temp dir");
    }
    dir
}

fn read(dir: &Path, file: &str) -> Vec<u8> {
    fs::read(dir.join(file)).unwrap_or_else(|e| panic!("read {file}: {e}"))
}

const OUTPUTS: [&str; 4] = ["t.jsonl", "t.csv", "t_summary.csv", "t_frontier.csv"];

#[test]
fn outputs_are_byte_identical_across_thread_counts() {
    let reference = temp_out("threads-1");
    frontier_sweep(&reference, &["--threads", "1"]);
    for threads in ["2", "4"] {
        let out = temp_out(&format!("threads-{threads}"));
        frontier_sweep(&out, &["--threads", threads]);
        for file in OUTPUTS {
            assert_eq!(
                read(&reference, file),
                read(&out, file),
                "{file} differs between --threads 1 and --threads {threads}"
            );
        }
    }
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_run() {
    let reference = temp_out("resume-reference");
    frontier_sweep(&reference, &["--threads", "2"]);

    // Stop mid-plan (7 is deliberately not a multiple of the trial group,
    // so the forced checkpoint lands mid-point), then resume to the end.
    let out = temp_out("resume");
    frontier_sweep(&out, &["--threads", "2", "--stop-after", "7"]);
    assert!(
        out.join("t.ckpt").exists(),
        "a stopped run must leave its checkpoint behind"
    );
    frontier_sweep(&out, &["--threads", "2", "--resume"]);
    assert!(
        !out.join("t.ckpt").exists(),
        "a completed resume must remove the checkpoint"
    );
    for file in OUTPUTS {
        assert_eq!(
            read(&reference, file),
            read(&out, file),
            "{file} differs between the uninterrupted and the resumed run"
        );
    }
}

#[test]
fn slice_shards_concatenate_to_the_unsharded_artifacts() {
    let reference = temp_out("shard-reference");
    frontier_sweep(&reference, &["--threads", "2"]);

    let out = temp_out("shard");
    frontier_sweep(&out, &["--threads", "2", "--shard", "1/2"]);
    frontier_sweep(&out, &["--threads", "2", "--shard", "2/2"]);
    // The summary is a whole-run aggregate, so only the record streams and
    // the frontier artifact follow the concatenation contract.
    for suffix in [".jsonl", ".csv", "_frontier.csv"] {
        let mut joined = read(&out, &format!("t_shard1of2{suffix}"));
        joined.extend(read(&out, &format!("t_shard2of2{suffix}")));
        assert_eq!(
            read(&reference, &format!("t{suffix}")),
            joined,
            "concatenated shard files for {suffix} differ from the unsharded run"
        );
    }
}
